"""Hop-depth ablation: how much do deeper alternate paths add?

The paper restricts itself to one-hop alternates where computation is
expensive (bandwidth, medians) and uses the full shortest-path search
elsewhere.  This module computes, for each k, the best alternate using at
most k constituent host-to-host edges, so the marginal value of depth can
be measured directly.

The k-hop search is exact: for each source the suffix distances are
computed by min-plus dynamic programming over the weight matrix with the
source's column blocked (an optimal alternate never revisits its source),
and the direct edge is excluded by minimizing over first hops distinct
from the destination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.altpath import _edge_weight_transform
from repro.core.graph import Metric, MetricGraph, Pair


class HopDepthError(RuntimeError):
    """Raised on invalid hop-depth queries."""


def k_hop_alternate_values(
    graph: MetricGraph, max_hops: int
) -> dict[Pair, float]:
    """Best alternate value per measured pair using ≤ ``max_hops`` edges.

    Values are in composed metric units (ms for RTT; loss probability for
    LOSS).  Pairs with no ≤k-hop alternate are omitted.

    Raises:
        HopDepthError: if ``max_hops`` < 1.
    """
    if max_hops < 1:
        raise HopDepthError(f"max_hops must be >= 1, got {max_hops}")
    transform = _edge_weight_transform(graph.metric)
    weights = graph.weight_matrix(transform)
    hosts = graph.hosts
    n = len(hosts)
    out: dict[Pair, float] = {}
    for i in range(n):
        # Suffix DP over the matrix with column i blocked: S[m, j] is the
        # best <= (max_hops - 1)-edge path m -> j that never enters i.
        blocked = weights.copy()
        blocked[:, i] = np.inf
        suffix = np.full((n, n), np.inf)
        np.fill_diagonal(suffix, 0.0)
        for _ in range(max_hops - 1):
            # suffix' = min(suffix, min-plus(blocked, suffix))
            candidate = (blocked[:, :, None] + suffix[None, :, :]).min(axis=1)
            suffix = np.minimum(suffix, candidate)
        # alternate(i, j) = min over first hop m != j of W[i,m] + S[m,j].
        first = weights[i][:, None] + suffix  # shape (m, j)
        for j in range(n):
            if j == i or not graph.has_edge((hosts[i], hosts[j])):
                continue
            column = first[:, j].copy()
            column[j] = np.inf  # first hop must not be the destination
            column[i] = np.inf
            best = float(column.min())
            if not np.isfinite(best):
                continue
            if graph.metric is Metric.LOSS:
                out[(hosts[i], hosts[j])] = 1.0 - float(np.exp(-best))
            else:
                out[(hosts[i], hosts[j])] = best
    return out


@dataclass(frozen=True, slots=True)
class DepthSweepRow:
    """Improvement statistics for one hop bound."""

    max_hops: int
    n_pairs: int
    fraction_improved: float
    mean_improvement: float


def depth_sweep(
    graph: MetricGraph, depths: tuple[int, ...] = (1, 2, 3)
) -> list[DepthSweepRow]:
    """Fraction-improved as a function of the alternate hop bound.

    Raises:
        HopDepthError: on an empty depth list.
    """
    if not depths:
        raise HopDepthError("need at least one depth")
    rows: list[DepthSweepRow] = []
    for k in sorted(set(depths)):
        alternates = k_hop_alternate_values(graph, k)
        improvements = []
        for pair, alt in alternates.items():
            default = graph.edge(pair).value
            improvements.append(default - alt)
        arr = np.array(improvements)
        rows.append(
            DepthSweepRow(
                max_hops=k,
                n_pairs=int(arr.size),
                fraction_improved=float(np.mean(arr > 0)) if arr.size else 0.0,
                mean_improvement=float(arr.mean()) if arr.size else 0.0,
            )
        )
    return rows

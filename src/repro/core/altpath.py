"""Best-alternate-path search over measurement graphs.

"For each pair of hosts, A and B, we remove the edge connecting them and
perform a shortest-path computation between A and B using the remaining
edges.  The result is the best alternate path between A and B using other
Internet paths as constituent hops" (§4.1).

Loss rates compose multiplicatively (``1 - ∏(1 - p_i)``); taking
``-log(1 - p)`` as the additive edge weight makes shortest-path search
valid for loss, after which the composed loss is recomputed exactly.

The batch search runs one Dijkstra per source on the full graph; the
direct edge can only appear as the *entire* shortest path (a simple path
from A to B cannot use edge (A,B) mid-path), so the exclusion only forces
a re-run for destinations whose shortest path IS the direct edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _dijkstra

from repro.core.graph import GraphError, Metric, MetricGraph, Pair
from repro.obs import runtime as obs

#: Guard so zero-weight loss edges survive sparse-matrix storage (scipy
#: treats exact zeros as missing entries).
_EPSILON = 1e-12

#: Memory ceiling for the one-hop search's (n, n, n) candidate broadcast;
#: larger graphs fall back to the O(n^2)-memory per-intermediate loop.
#: 64 MiB covers ~200 hosts — far above any Table 1 dataset.
_ONE_HOP_BROADCAST_CAP_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class AlternatePath:
    """The best alternate path found for one ordered pair.

    Attributes:
        src: Source host.
        dst: Destination host.
        hops: Directed edges (ordered pairs) composing the path.
        value: Composed metric value (sum for RTT/propagation; the
            independence combination for loss).
    """

    src: str
    dst: str
    hops: tuple[Pair, ...]
    value: float

    @property
    def via(self) -> tuple[str, ...]:
        """Intermediate hosts, in traversal order."""
        return tuple(h for h, _ in self.hops[1:])

    @property
    def n_hops(self) -> int:
        """Number of constituent host-to-host edges."""
        return len(self.hops)


def loss_weight(p: float) -> float:
    """Additive shortest-path weight for a loss rate."""
    if p >= 1.0:
        return math.inf
    return -math.log1p(-p) + _EPSILON


def _edge_weight_transform(metric: Metric):
    if metric is Metric.LOSS:
        return loss_weight
    if metric is Metric.BANDWIDTH:
        raise GraphError(
            "bandwidth alternates are one-hop Mathis compositions; "
            "use repro.core.bandwidth"
        )
    return None


def _composed_value(graph: MetricGraph, hops: tuple[Pair, ...]) -> float:
    values = [graph.edge(h).value for h in hops]
    if graph.metric is Metric.LOSS:
        survive = 1.0
        for p in values:
            survive *= 1.0 - p
        return 1.0 - survive
    return float(sum(values))


def _reconstruct(
    hosts: list[str], predecessors: np.ndarray, src_idx: int, dst_idx: int
) -> tuple[Pair, ...]:
    """Walk a scipy predecessor row from dst back to src."""
    chain = [dst_idx]
    node = dst_idx
    while node != src_idx:
        node = int(predecessors[node])
        if node < 0:
            raise GraphError("broken predecessor chain")
        chain.append(node)
    chain.reverse()
    return tuple(
        (hosts[a], hosts[b]) for a, b in zip(chain, chain[1:])
    )


class AlternatePathFinder:
    """Computes best alternate paths for every measured pair of a graph."""

    def __init__(self, graph: MetricGraph) -> None:
        self.graph = graph
        self._weights = graph.weight_matrix(_edge_weight_transform(graph.metric))
        # scipy sparse graphs drop explicit zeros; shift by epsilon instead.
        self._weights = np.where(
            np.isfinite(self._weights), self._weights + _EPSILON, np.inf
        )
        self._base: csr_matrix | None = None

    def _csr(self) -> csr_matrix:
        """The full graph as CSR, built from the dense weights once."""
        if self._base is None:
            mat = self._weights
            finite = np.isfinite(mat)
            rows, cols = np.nonzero(finite)
            base = csr_matrix(
                (mat[rows, cols], (rows, cols)), shape=mat.shape
            )
            base.sort_indices()
            self._base = base
        return self._base

    def _csr_excluding(self, src_idx: int, dst_idx: int) -> csr_matrix:
        """The base CSR with one directed edge removed.

        Only the base matrix's data vector is copied (O(E)); the sparsity
        structure is shared, and the excluded entry's weight is patched to
        +inf, which Dijkstra treats as absent.  This keeps the direct-edge
        re-run path from paying an O(V^2) dense copy + CSR rebuild per
        pair.
        """
        base = self._csr()
        start, end = base.indptr[src_idx], base.indptr[src_idx + 1]
        row_cols = base.indices[start:end]
        pos = int(np.searchsorted(row_cols, dst_idx))
        if pos == len(row_cols) or row_cols[pos] != dst_idx:
            return base  # edge not stored; nothing to exclude
        data = base.data.copy()
        data[start + pos] = np.inf
        return csr_matrix(
            (data, base.indices, base.indptr), shape=base.shape
        )

    def best(self, pair: Pair) -> AlternatePath | None:
        """Best alternate path for one ordered pair, or None if none exists."""
        return self.best_all(pairs=[pair]).get(pair)

    def best_all(
        self, pairs: list[Pair] | None = None
    ) -> dict[Pair, AlternatePath]:
        """Best alternate paths for ``pairs`` (default: every measured pair).

        Pairs with no alternate route (disconnected after removing the
        direct edge) are omitted from the result.
        """
        with obs.span("core.altpath.best_all") as sp:
            out = self._best_all(pairs)
            sp.set("found", len(out))
        return out

    def _best_all(
        self, pairs: list[Pair] | None = None
    ) -> dict[Pair, AlternatePath]:
        graph = self.graph
        hosts = graph.hosts
        wanted = pairs if pairs is not None else sorted(graph.edges)
        by_src: dict[int, list[int]] = {}
        for src, dst in wanted:
            by_src.setdefault(graph.host_index(src), []).append(
                graph.host_index(dst)
            )
        out: dict[Pair, AlternatePath] = {}
        obs.count("core.altpath.pairs", len(wanted))
        base = self._csr()
        for src_idx, dst_idxs in sorted(by_src.items()):
            dist, pred = _dijkstra(
                base,
                directed=True,
                indices=src_idx,
                return_predecessors=True,
            )
            for dst_idx in dst_idxs:
                pair = (hosts[src_idx], hosts[dst_idx])
                if not np.isfinite(dist[dst_idx]):
                    continue
                if pred[dst_idx] == src_idx:
                    # The unconstrained shortest path is the direct edge;
                    # re-run with that single edge excluded.
                    obs.count("core.altpath.reruns")
                    alt = self._rerun(src_idx, dst_idx)
                    if alt is not None:
                        out[pair] = alt
                    continue
                hops = _reconstruct(hosts, pred, src_idx, dst_idx)
                out[pair] = AlternatePath(
                    src=pair[0],
                    dst=pair[1],
                    hops=hops,
                    value=_composed_value(graph, hops),
                )
        return out

    def _rerun(self, src_idx: int, dst_idx: int) -> AlternatePath | None:
        graph = self.graph
        hosts = graph.hosts
        mat = self._csr_excluding(src_idx, dst_idx)
        dist, pred = _dijkstra(
            mat, directed=True, indices=src_idx, return_predecessors=True
        )
        if not np.isfinite(dist[dst_idx]):
            return None
        hops = _reconstruct(hosts, pred, src_idx, dst_idx)
        return AlternatePath(
            src=hosts[src_idx],
            dst=hosts[dst_idx],
            hops=hops,
            value=_composed_value(graph, hops),
        )


def best_one_hop_alternates(
    graph: MetricGraph, pairs: list[Pair] | None = None
) -> dict[Pair, AlternatePath]:
    """Best single-intermediate alternate for each pair.

    Used where the paper restricts itself to one-hop alternates "to keep
    the computational costs reasonable" (Figure 6) or "to be
    computationally tractable" (bandwidth, §5 — though bandwidth
    composition itself lives in :mod:`repro.core.bandwidth`).
    """
    transform = _edge_weight_transform(graph.metric)
    weights = graph.weight_matrix(transform)
    hosts = graph.hosts
    n = len(hosts)
    wanted = pairs if pairs is not None else sorted(graph.edges)
    if n > 0 and n ** 3 * 8 <= _ONE_HOP_BROADCAST_CAP_BYTES:
        # One 3-D broadcast: cand[i, j, k] = w[i, k] + w[k, j].  argmin
        # returns the first k attaining the minimum — the same tie-break
        # as the chunked loop below (a later equal candidate never
        # displaces an earlier one).
        cand = weights[:, None, :] + weights.T[None, :, :]
        best_mid = np.argmin(cand, axis=2)
        best_val = np.take_along_axis(cand, best_mid[:, :, None], axis=2)[:, :, 0]
        best_mid = np.where(np.isfinite(best_val), best_mid, -1)
    else:
        # Chunked fallback: one intermediate at a time, O(n^2) memory.
        best_val = np.full((n, n), np.inf)
        best_mid = np.full((n, n), -1, dtype=int)
        for k in range(n):
            # Candidate: src -> k -> dst for all (src, dst) at once.
            cand = weights[:, k][:, None] + weights[k, :][None, :]
            improved = cand < best_val
            best_val[improved] = cand[improved]
            best_mid[improved] = k
    out: dict[Pair, AlternatePath] = {}
    for src, dst in wanted:
        i, j = graph.host_index(src), graph.host_index(dst)
        k = int(best_mid[i, j])
        if k < 0 or not np.isfinite(best_val[i, j]):
            continue
        hops = ((src, hosts[k]), (hosts[k], dst))
        out[(src, dst)] = AlternatePath(
            src=src,
            dst=dst,
            hops=hops,
            value=_composed_value(graph, hops),
        )
    return out

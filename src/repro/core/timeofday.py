"""Time-of-day robustness analysis (§6.3, Figures 9 and 10).

"We have divided our data into weekday and weekend, and further divided
weekday data into six hour time periods."  The bins are in PST, the
paper's control-host timezone.  Each bin's records are re-aggregated into
a fresh graph and re-analyzed, which is also why the paper warns that the
split "reduces the number of samples per path".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.analysis import AnalysisResult, analyze
from repro.core.graph import Metric
from repro.datasets.dataset import Dataset
from repro.netsim.clock import pst_hour, pst_is_weekend


@dataclass(frozen=True, slots=True)
class TimeBin:
    """One time-of-day bin.

    Attributes:
        label: Display label, paper style ("0000-0600", "weekend", ...).
        predicate: Timestamp filter for membership.
    """

    label: str
    predicate: Callable[[float], bool]


def paper_time_bins() -> list[TimeBin]:
    """The five bins of Figures 9/10: weekend plus four weekday quarters."""

    def weekday_window(lo: float, hi: float) -> Callable[[float], bool]:
        def pred(t: float) -> bool:
            if pst_is_weekend(t):
                return False
            return lo <= pst_hour(t) < hi

        return pred

    return [
        TimeBin("weekend", pst_is_weekend),
        TimeBin("0000-0600", weekday_window(0.0, 6.0)),
        TimeBin("0600-1200", weekday_window(6.0, 12.0)),
        TimeBin("1200-1800", weekday_window(12.0, 18.0)),
        TimeBin("1800-2400", weekday_window(18.0, 24.0)),
    ]


def analyze_by_time_of_day(
    dataset: Dataset,
    metric: Metric,
    *,
    min_samples: int = 5,
    bins: list[TimeBin] | None = None,
) -> dict[str, AnalysisResult]:
    """Re-run the alternate-path analysis within each time bin.

    The default ``min_samples`` is lower than the headline analysis' 30
    because splitting five ways slashes per-pair sample counts — the
    paper notes the resulting granularity effect on Figure 10.

    Returns:
        Results keyed by bin label; bins with no analyzable pairs are
        still present (with empty comparison lists).
    """
    out: dict[str, AnalysisResult] = {}
    for tb in bins or paper_time_bins():
        subset = dataset.restricted_to_times(tb.predicate, name_suffix=f" [{tb.label}]")
        out[tb.label] = analyze(subset, metric, min_samples=min_samples)
    return out


def peak_vs_offpeak_gap(
    results: dict[str, AnalysisResult],
    *,
    peak: str = "0600-1200",
    offpeak: str = "weekend",
) -> float:
    """Difference in fraction-improved between the peak and off-peak bins.

    The paper's §6.3 observation is that this gap is positive: "alternate
    paths seem to do better during times known to have heavier load."
    """
    if peak not in results or offpeak not in results:
        raise KeyError(f"bins {peak!r}/{offpeak!r} missing from results")
    return results[peak].fraction_improved() - results[offpeak].fraction_improved()

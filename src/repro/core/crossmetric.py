"""Cross-metric quality of alternate paths.

The paper selects and judges alternates one metric at a time.  A real
alternate-path system (Detour, RON) must pick *one* relay per flow, so a
natural question the paper leaves open is: **does the RTT-best alternate
also improve loss (and vice versa)?**  This module evaluates each metric's
best alternates under the other metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import analyze
from repro.core.graph import Metric, MetricGraph, Pair, build_graph
from repro.core.stats import compose_loss
from repro.datasets.dataset import Dataset


class CrossMetricError(RuntimeError):
    """Raised on unsupported cross-metric combinations."""


@dataclass(frozen=True, slots=True)
class CrossMetricPoint:
    """One pair's alternate judged under both metrics.

    Attributes:
        src: Source host.
        dst: Destination host.
        selected_by: The metric the alternate was chosen to optimize.
        primary_improvement: Improvement under the selection metric.
        secondary_improvement: Improvement of the *same* alternate under
            the other metric.
    """

    src: str
    dst: str
    selected_by: Metric
    primary_improvement: float
    secondary_improvement: float

    @property
    def wins_both(self) -> bool:
        """Whether the alternate improves both metrics simultaneously."""
        return self.primary_improvement > 0 and self.secondary_improvement > 0


def _composed_value(graph: MetricGraph, legs: list[Pair]) -> float | None:
    values = []
    for leg in legs:
        if not graph.has_edge(leg):
            return None
        values.append(graph.edge(leg).value)
    if graph.metric is Metric.LOSS:
        return compose_loss(values)
    return float(sum(values))


def cross_metric_analysis(
    dataset: Dataset,
    select_by: Metric,
    judge_by: Metric,
    *,
    min_samples: int = 30,
) -> list[CrossMetricPoint]:
    """Evaluate ``select_by``-best alternates under ``judge_by``.

    Args:
        dataset: A traceroute dataset.
        select_by: Metric used to pick each pair's best alternate
            (RTT or LOSS).
        judge_by: Metric the chosen alternate is re-evaluated under.

    Raises:
        CrossMetricError: if the metrics are equal or unsupported.
    """
    supported = (Metric.RTT, Metric.LOSS, Metric.PROP_DELAY)
    if select_by not in supported or judge_by not in supported:
        raise CrossMetricError("cross-metric analysis supports RTT/LOSS/PROP_DELAY")
    if select_by is judge_by:
        raise CrossMetricError("select_by and judge_by must differ")
    selection = analyze(dataset, select_by, min_samples=min_samples)
    judge_graph = build_graph(dataset, judge_by, min_samples=min_samples)
    points: list[CrossMetricPoint] = []
    for comp in selection.comparisons:
        pair: Pair = (comp.src, comp.dst)
        if not judge_graph.has_edge(pair):
            continue
        legs = list(zip((comp.src, *comp.via), (*comp.via, comp.dst)))
        alt_value = _composed_value(judge_graph, legs)
        if alt_value is None:
            continue
        default_value = judge_graph.edge(pair).value
        points.append(
            CrossMetricPoint(
                src=comp.src,
                dst=comp.dst,
                selected_by=select_by,
                primary_improvement=comp.improvement,
                secondary_improvement=default_value - alt_value,
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class CrossMetricSummary:
    """Aggregate cross-metric statistics."""

    n: int
    primary_improved: float
    secondary_improved: float
    both_improved: float
    secondary_improved_given_primary: float


def summarize_cross_metric(points: list[CrossMetricPoint]) -> CrossMetricSummary:
    """Fractions of pairs improved under each metric and jointly.

    Raises:
        CrossMetricError: on empty input.
    """
    if not points:
        raise CrossMetricError("no cross-metric points")
    primary = np.array([p.primary_improvement > 0 for p in points])
    secondary = np.array([p.secondary_improvement > 0 for p in points])
    both = primary & secondary
    given = float(both.sum() / primary.sum()) if primary.any() else 0.0
    return CrossMetricSummary(
        n=len(points),
        primary_improved=float(primary.mean()),
        secondary_improved=float(secondary.mean()),
        both_improved=float(both.mean()),
        secondary_improved_given_primary=given,
    )

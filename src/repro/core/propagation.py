"""Congestion vs. propagation delay decomposition (§7.2, Figures 15/16).

Mean round-trip latency splits into **propagation delay** (all fixed
costs, estimated as the 10th percentile of a path's RTT samples) and
**queuing delay** (the congestion-dependent remainder).  Two questions:

* Figure 15 — how much inefficiency remains when alternates are chosen
  and judged by propagation delay alone?
* Figure 16 — for alternates chosen by *mean RTT*, how much of each
  pair's improvement is propagation vs. queuing?  Each pair lands in one
  of six qualitative groups formed by the axes and the line y = x.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.analysis import AnalysisResult, analyze
from repro.core.graph import Metric, Pair, build_graph
from repro.core.stats import CDFSeries, make_cdf
from repro.datasets.dataset import Dataset


class DelayGroup(enum.Enum):
    """The six qualitative groups of Figure 16.

    With x = Δtotal (mean-RTT improvement) and y = Δprop (propagation
    improvement), groups 1–3 lie in the default-superior half (x < 0) and
    4–6 in the alternate-superior half (x > 0):

    * ``1`` — x<0, y<0, y>x: default better in both components.
    * ``2`` — x<0, y<x: propagation difference exceeds total (queuing
      actually favors the alternate).
    * ``3`` — x<0, y>0: default wins on queuing despite worse propagation.
    * ``4`` — x>0, y>0, y<x: alternate better in both components.
    * ``5`` — x>0, y>x: propagation gain exceeds total (queuing favors
      the default).
    * ``6`` — x>0, y<0: alternate goes *out of its way* — longer
      propagation, much less queuing (avoiding congestion).
    """

    G1 = 1
    G2 = 2
    G3 = 3
    G4 = 4
    G5 = 5
    G6 = 6


@dataclass(frozen=True, slots=True)
class DelayDecomposition:
    """One pair's (Δtotal, Δprop) point for Figure 16.

    Attributes:
        src: Source host.
        dst: Destination host.
        total_improvement: Default minus alternate mean RTT (ms).
        prop_improvement: Default minus alternate propagation delay (ms),
            for the *same* alternate path (selected by mean RTT).
        queueing_improvement: The remainder (total − prop).
    """

    src: str
    dst: str
    total_improvement: float
    prop_improvement: float

    @property
    def queueing_improvement(self) -> float:
        """Improvement attributable to queuing delay."""
        return self.total_improvement - self.prop_improvement

    @property
    def group(self) -> DelayGroup:
        """The Figure 16 group this point falls in."""
        x, y = self.total_improvement, self.prop_improvement
        if x <= 0:
            if y > 0:
                return DelayGroup.G3
            return DelayGroup.G2 if y < x else DelayGroup.G1
        if y < 0:
            return DelayGroup.G6
        return DelayGroup.G5 if y > x else DelayGroup.G4


def analyze_propagation(
    dataset: Dataset, *, min_samples: int = 30
) -> AnalysisResult:
    """Figure 15's main curve: alternates chosen *and judged* by
    propagation delay (10th-percentile RTT)."""
    return analyze(dataset, Metric.PROP_DELAY, min_samples=min_samples)


def propagation_cdfs(
    dataset: Dataset, *, min_samples: int = 30
) -> tuple[CDFSeries, CDFSeries]:
    """Both Figure 15 curves: propagation-delay and mean-RTT improvements."""
    prop = analyze_propagation(dataset, min_samples=min_samples)
    rtt = analyze(dataset, Metric.RTT, min_samples=min_samples)
    return (
        prop.improvement_cdf(label="propagation delay"),
        rtt.improvement_cdf(label="mean round-trip"),
    )


def decompose_improvements(
    dataset: Dataset, *, min_samples: int = 30
) -> list[DelayDecomposition]:
    """Figure 16's scatter: decompose each mean-RTT improvement.

    Alternates are selected by mean RTT; each pair's improvement is then
    split into the propagation component (difference of 10th-percentile
    estimates along the same paths) and the queuing remainder.
    """
    rtt_result = analyze(dataset, Metric.RTT, min_samples=min_samples)
    prop_graph = build_graph(dataset, Metric.PROP_DELAY, min_samples=min_samples)
    points: list[DelayDecomposition] = []
    for comp in rtt_result.comparisons:
        pair: Pair = (comp.src, comp.dst)
        if not prop_graph.has_edge(pair):
            continue
        hop_hosts = [comp.src, *comp.via, comp.dst]
        legs = list(zip(hop_hosts, hop_hosts[1:]))
        if not all(prop_graph.has_edge(leg) for leg in legs):
            continue
        default_prop = prop_graph.edge(pair).value
        alt_prop = sum(prop_graph.edge(leg).value for leg in legs)
        points.append(
            DelayDecomposition(
                src=comp.src,
                dst=comp.dst,
                total_improvement=comp.improvement,
                prop_improvement=default_prop - alt_prop,
            )
        )
    return points


def group_counts(points: list[DelayDecomposition]) -> dict[DelayGroup, int]:
    """Population of each Figure 16 group.

    The paper's reading: "there are very few paths in group 3 [...] while
    group 6 is much more populated, indicating that many superior
    alternate paths are in fact going out of their way to avoid
    congestion."
    """
    counts = {g: 0 for g in DelayGroup}
    for p in points:
        counts[p.group] += 1
    return counts


def propagation_share(points: list[DelayDecomposition]) -> float:
    """Among improved pairs, the mean share of improvement that is
    propagation (clipped to [0, 1] per pair)."""
    shares = [
        min(max(p.prop_improvement / p.total_improvement, 0.0), 1.0)
        for p in points
        if p.total_improvement > 0
    ]
    return float(np.mean(shares)) if shares else 0.0


def prop_improvement_cdf(
    points: list[DelayDecomposition], label: str = "propagation component"
) -> CDFSeries:
    """CDF of the propagation components of the Figure 16 points."""
    return make_cdf([p.prop_improvement for p in points], label)

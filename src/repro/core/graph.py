"""The measurement graph: hosts as vertices, measured paths as edges.

"We identify alternate paths by constructing a weighted graph in which
each host is represented by a vertex and each path is represented by a
corresponding edge.  [...] the weight of the edge is set according to the
long term time average of the measurements taken along that path" (§4.1).

A :class:`MetricGraph` is specific to one metric; its edges carry both the
scalar weight used for shortest-path composition and the full sample
statistics needed for confidence intervals (and, optionally, the raw
samples needed for convolution medians).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.stats import SampleStats, StatsError
from repro.datasets.dataset import Dataset

Pair = tuple[str, str]

#: Percentile of the RTT samples used to estimate propagation delay.
#: "We chose to take the tenth percentile rather than the actual minimum
#: observation to protect against noise" (§7.2).
PROPAGATION_PERCENTILE = 10.0


class Metric(enum.Enum):
    """Path-quality metrics the paper evaluates."""

    RTT = "rtt"                     # mean round-trip time (ms)
    LOSS = "loss"                   # mean loss rate (fraction)
    PROP_DELAY = "prop-delay"       # estimated propagation delay (ms)
    BANDWIDTH = "bandwidth"         # TCP throughput (kB/s)

    @property
    def higher_is_better(self) -> bool:
        """Whether larger values are superior (bandwidth only)."""
        return self is Metric.BANDWIDTH


class GraphError(RuntimeError):
    """Raised on invalid graph construction or queries."""


@dataclass(frozen=True, slots=True)
class EdgeData:
    """Measurements aggregated on one directed host-to-host edge.

    Attributes:
        value: The edge's weight under its graph's metric (mean RTT, mean
            loss rate, 10th-percentile RTT, or mean bandwidth).
        stats: Sample statistics of the metric's samples.
        samples: Raw samples, kept only when the graph was built with
            ``keep_samples=True`` (needed for convolution medians).
        aux: Metric-specific extras; bandwidth edges carry ``rtt_mean``
            and ``loss_mean`` so synthetic bandwidths can be composed via
            the Mathis model.
    """

    value: float
    stats: SampleStats
    samples: np.ndarray | None = None
    aux: dict[str, float] = field(default_factory=dict)


class MetricGraph:
    """A directed measurement graph for one metric."""

    def __init__(self, metric: Metric, hosts: list[str]) -> None:
        if len(set(hosts)) != len(hosts):
            raise GraphError("duplicate host names")
        self.metric = metric
        self.hosts = list(hosts)
        self._host_index = {h: i for i, h in enumerate(self.hosts)}
        self.edges: dict[Pair, EdgeData] = {}

    # -- construction --------------------------------------------------------

    def add_edge(self, pair: Pair, data: EdgeData) -> None:
        """Insert a directed edge.

        Raises:
            GraphError: for unknown hosts, self-loops, or duplicates.
        """
        src, dst = pair
        if src == dst:
            raise GraphError("self-loop edges are not allowed")
        if src not in self._host_index or dst not in self._host_index:
            raise GraphError(f"edge {pair} references unknown hosts")
        if pair in self.edges:
            raise GraphError(f"duplicate edge {pair}")
        self.edges[pair] = data

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.edges)

    def host_index(self, host: str) -> int:
        """Dense index of a host.

        Raises:
            GraphError: for unknown hosts.
        """
        try:
            return self._host_index[host]
        except KeyError:
            raise GraphError(f"unknown host {host!r}") from None

    def has_edge(self, pair: Pair) -> bool:
        """Whether the ordered pair was measured (post-filter)."""
        return pair in self.edges

    def edge(self, pair: Pair) -> EdgeData:
        """Edge data for an ordered pair.

        Raises:
            GraphError: if the edge is absent.
        """
        try:
            return self.edges[pair]
        except KeyError:
            raise GraphError(f"no edge for pair {pair}") from None

    def without_hosts(self, names: set[str] | list[str]) -> "MetricGraph":
        """A copy of the graph with some hosts (and their edges) removed."""
        drop = set(names)
        sub = MetricGraph(self.metric, [h for h in self.hosts if h not in drop])
        for pair, data in self.edges.items():
            if pair[0] not in drop and pair[1] not in drop:
                sub.add_edge(pair, data)
        return sub

    def weight_matrix(self, transform=None) -> np.ndarray:
        """Dense V×V weight matrix; missing edges (and the diagonal) are inf.

        Args:
            transform: Optional callable applied to each edge's value
                (e.g. loss-rate to additive ``-log(1-p)`` weights).
        """
        n = len(self.hosts)
        mat = np.full((n, n), np.inf)
        for (src, dst), data in self.edges.items():
            value = data.value if transform is None else transform(data.value)
            mat[self._host_index[src], self._host_index[dst]] = value
        return mat


# ---------------------------------------------------------------------------
# Graph builders from datasets.
# ---------------------------------------------------------------------------

def build_graph(
    dataset: Dataset,
    metric: Metric,
    *,
    min_samples: int = 30,
    keep_samples: bool = False,
) -> MetricGraph:
    """Aggregate a dataset into a :class:`MetricGraph`.

    Edges are created for ordered pairs with at least ``min_samples``
    measurement records ("we removed paths for which there were fewer
    than 30 measurements", §4.2).

    Args:
        dataset: Source measurements.
        metric: Which metric to aggregate.
        min_samples: Minimum records per pair.
        keep_samples: Retain raw samples on each edge (costs memory;
            required for convolution medians and percentile recomputation).

    Raises:
        GraphError: when the metric is unavailable for this dataset kind
            (bandwidth needs a transfer dataset).
    """
    if metric is Metric.BANDWIDTH and not dataset.is_bandwidth:
        raise GraphError("bandwidth graphs require an npd (transfer) dataset")
    graph = MetricGraph(metric, list(dataset.hosts))
    for pair in dataset.pairs():
        if dataset.n_measurements_for(pair) < min_samples:
            continue
        data = _edge_from_dataset(dataset, pair, metric, keep_samples)
        if data is not None:
            graph.add_edge(pair, data)
    return graph


def _edge_from_dataset(
    dataset: Dataset, pair: Pair, metric: Metric, keep_samples: bool
) -> EdgeData | None:
    if metric is Metric.RTT:
        samples = dataset.rtt_samples(pair)
        if samples.size == 0:
            return None
        stats = SampleStats.from_samples(samples)
        return EdgeData(
            value=stats.mean,
            stats=stats,
            samples=samples if keep_samples else None,
        )
    if metric is Metric.LOSS:
        samples = dataset.loss_samples(pair)
        if samples.size == 0:
            return None
        stats = SampleStats.from_samples(samples)
        return EdgeData(
            value=stats.mean,
            stats=stats,
            samples=samples if keep_samples else None,
        )
    if metric is Metric.PROP_DELAY:
        samples = dataset.rtt_samples(pair)
        if samples.size == 0:
            return None
        stats = SampleStats.from_samples(samples)
        return EdgeData(
            value=float(np.percentile(samples, PROPAGATION_PERCENTILE)),
            stats=stats,
            samples=samples if keep_samples else None,
        )
    if metric is Metric.BANDWIDTH:
        bw = dataset.bandwidth_samples(pair)
        if bw.size == 0:
            return None
        stats = SampleStats.from_samples(bw)
        rtts = dataset.rtt_samples(pair)
        losses = dataset.loss_samples(pair)
        return EdgeData(
            value=stats.mean,
            stats=stats,
            samples=bw if keep_samples else None,
            aux={
                "rtt_mean": float(rtts.mean()),
                "loss_mean": float(losses.mean()),
            },
        )
    raise StatsError(f"unhandled metric {metric}")  # pragma: no cover

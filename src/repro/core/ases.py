"""AS-popularity analysis (§7.1, Figure 14).

"For each AS that appeared in any trace in the dataset, we compute the
number of default paths in which that AS appears and the number of best
alternate paths in which it appears."  A best alternate path's AS set is
the union of its constituent default paths' AS paths.  If no AS is far
off the diagonal of the (direct count, alternate count) scatter, the
availability of alternate paths "is not being unduly inflated by a small
number of either good or poor ASes".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.analysis import AnalysisResult
from repro.datasets.dataset import Dataset


class ASAnalysisError(RuntimeError):
    """Raised when AS paths are unavailable for a dataset."""


@dataclass(frozen=True, slots=True)
class ASPoint:
    """One autonomous system's point on the Figure 14 scatter.

    Attributes:
        asn: The autonomous system number.
        direct: Number of default paths whose AS path contains it.
        alternate: Number of best alternate paths containing it.
    """

    asn: int
    direct: int
    alternate: int


def as_popularity(
    dataset: Dataset, result: AnalysisResult
) -> list[ASPoint]:
    """Count each AS's appearances in default vs. best-alternate paths.

    Args:
        dataset: The dataset (its ``path_info`` supplies AS paths).
        result: An alternate-path analysis over the same dataset.

    Raises:
        ASAnalysisError: when the dataset carries no AS path information.
    """
    if not dataset.path_info:
        raise ASAnalysisError(
            f"{dataset.meta.name} has no recorded AS paths (path_info empty)"
        )
    direct: Counter[int] = Counter()
    alternate: Counter[int] = Counter()
    analyzed_pairs = {(c.src, c.dst) for c in result.comparisons}
    for pair in analyzed_pairs:
        info = dataset.path_info.get(pair)
        if info is not None:
            for asn in set(info.as_path):
                direct[asn] += 1
    for comp in result.comparisons:
        hop_hosts = [comp.src, *comp.via, comp.dst]
        seen: set[int] = set()
        for leg in zip(hop_hosts, hop_hosts[1:]):
            info = dataset.path_info.get(leg)
            if info is not None:
                seen.update(info.as_path)
        for asn in seen:
            alternate[asn] += 1
    asns = sorted(set(direct) | set(alternate))
    return [
        ASPoint(asn=a, direct=direct.get(a, 0), alternate=alternate.get(a, 0))
        for a in asns
    ]


def popularity_correlation(points: list[ASPoint]) -> float:
    """Pearson correlation between log(1+direct) and log(1+alternate).

    A high correlation is the quantitative form of Figure 14's visual
    argument that no AS class dominates either path population.
    """
    if len(points) < 3:
        raise ASAnalysisError("need at least three ASes to correlate")
    x = np.log1p([p.direct for p in points])
    y = np.log1p([p.alternate for p in points])
    if np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def outlier_ases(
    points: list[ASPoint], *, factor: float = 4.0, min_count: int = 10
) -> list[ASPoint]:
    """ASes much more common in one population than the other.

    An AS is an outlier when max(direct, alternate) exceeds ``min_count``
    and the two counts differ by more than ``factor`` multiplicatively.
    The paper's conclusion corresponds to this list being short.
    """
    out = []
    for p in points:
        hi = max(p.direct, p.alternate)
        lo = min(p.direct, p.alternate)
        if hi >= min_count and hi > factor * max(lo, 1):
            out.append(p)
    return out

"""The paper's core computation: default vs. best-alternate comparisons.

:func:`analyze` runs the full §4.1 methodology for one dataset and one
metric: aggregate measurements into a graph, find the best alternate path
per measured pair, and produce per-pair comparisons with confidence
information.  Everything in Sections 5–7 of the paper is a view over the
resulting :class:`AnalysisResult`.

Sign conventions (matching the paper's figures): ``improvement`` is
oriented so **positive means the alternate path is superior** —
``default − alternate`` for RTT, loss, and propagation delay;
``alternate − default`` for bandwidth.  ``ratio`` is oriented so values
**above 1 mean the alternate is superior** (Figures 2 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.altpath import AlternatePath, AlternatePathFinder, best_one_hop_alternates
from repro.core.bandwidth import (
    BandwidthAlternate,
    LossComposition,
    best_bandwidth_alternates,
)
from repro.core.graph import Metric, MetricGraph, Pair, build_graph
from repro.core.stats import (
    CDFSeries,
    Comparison,
    DiffEstimate,
    diff_of_loss_rates,
    diff_of_means,
    make_cdf,
)
from repro.datasets.dataset import Dataset


class AnalysisError(RuntimeError):
    """Raised on invalid analysis configuration."""


@dataclass(frozen=True, slots=True)
class PairComparison:
    """Default path vs. best alternate for one ordered host pair.

    Attributes:
        src: Source host.
        dst: Destination host.
        default_value: Metric value of the default (measured) path.
        alt_value: Composed metric value of the best alternate.
        via: Intermediate hosts of the best alternate.
        estimate: Difference estimate with uncertainty (None when the
            metric has no meaningful per-sample variance, e.g. the
            propagation-delay percentile and composed bandwidth).
    """

    src: str
    dst: str
    metric: Metric
    default_value: float
    alt_value: float
    via: tuple[str, ...]
    estimate: DiffEstimate | None = None

    @property
    def improvement(self) -> float:
        """Positive iff the alternate is superior (paper orientation)."""
        if self.metric.higher_is_better:
            return self.alt_value - self.default_value
        return self.default_value - self.alt_value

    @property
    def ratio(self) -> float:
        """Above 1 iff the alternate is superior (Figures 2 and 5)."""
        if self.metric.higher_is_better:
            if self.default_value == 0:
                return np.inf
            return self.alt_value / self.default_value
        if self.alt_value == 0:
            return np.inf
        return self.default_value / self.alt_value

    def classify(self, confidence: float = 0.95) -> Comparison:
        """t-test verdict (Tables 2/3); ZERO for loss pairs with no signal.

        Raises:
            AnalysisError: when no estimate is attached.
        """
        if self.estimate is None:
            raise AnalysisError("this comparison carries no variance estimate")
        if (
            self.metric is Metric.LOSS
            and self.default_value == 0.0
            and self.alt_value == 0.0
        ):
            return Comparison.ZERO
        return self.estimate.classify(confidence)


@dataclass
class AnalysisResult:
    """All pair comparisons for one (dataset, metric) analysis."""

    dataset_name: str
    metric: Metric
    comparisons: list[PairComparison]
    graph: MetricGraph

    def __post_init__(self) -> None:
        self.comparisons.sort(key=lambda c: (c.src, c.dst))

    def __len__(self) -> int:
        return len(self.comparisons)

    def improvements(self) -> np.ndarray:
        """Per-pair improvements, paper orientation."""
        return np.array([c.improvement for c in self.comparisons])

    def ratios(self) -> np.ndarray:
        """Per-pair ratios, paper orientation (inf-free pairs only)."""
        vals = np.array([c.ratio for c in self.comparisons])
        return vals[np.isfinite(vals)]

    def improvement_cdf(self, label: str | None = None) -> CDFSeries:
        """CDF of improvements (Figures 1, 3, 15 and friends)."""
        return make_cdf(self.improvements(), label or self.dataset_name)

    def ratio_cdf(self, label: str | None = None) -> CDFSeries:
        """CDF of ratios (Figures 2 and 5)."""
        return make_cdf(self.ratios(), label or self.dataset_name)

    def fraction_improved(self) -> float:
        """Fraction of pairs whose best alternate is strictly superior."""
        if not self.comparisons:
            return 0.0
        return float(np.mean(self.improvements() > 0))

    def fraction_improved_by(self, threshold: float) -> float:
        """Fraction of pairs improved by more than ``threshold``."""
        if not self.comparisons:
            return 0.0
        return float(np.mean(self.improvements() > threshold))

    def classification_counts(
        self, confidence: float = 0.95
    ) -> dict[Comparison, int]:
        """Counts of better/indeterminate/worse (/zero) pairs (Tables 2/3)."""
        counts = {c: 0 for c in Comparison}
        for comp in self.comparisons:
            counts[comp.classify(confidence)] += 1
        return counts

    def classification_percentages(
        self, confidence: float = 0.95
    ) -> dict[Comparison, float]:
        """Classification shares in percent, as the paper's tables report."""
        counts = self.classification_counts(confidence)
        total = sum(counts.values())
        if total == 0:
            return {c: 0.0 for c in Comparison}
        return {c: 100.0 * v / total for c, v in counts.items()}


def _alt_components(graph: MetricGraph, alt: AlternatePath):
    return [graph.edge(h).stats for h in alt.hops]


def analyze(
    dataset: Dataset,
    metric: Metric,
    *,
    min_samples: int = 30,
    one_hop_only: bool = False,
    pairs: list[Pair] | None = None,
) -> AnalysisResult:
    """Run the §4.1 methodology for one dataset and metric.

    Args:
        dataset: Measurements to analyze.
        metric: RTT, LOSS, or PROP_DELAY.  (Bandwidth has its own entry
            point, :func:`analyze_bandwidth`, because its composition is
            not a shortest-path problem.)
        min_samples: Minimum records per pair for an edge to exist.
        one_hop_only: Restrict alternates to a single intermediate host.
        pairs: Restrict output to these ordered pairs.

    Returns:
        An :class:`AnalysisResult` with one comparison per measured pair
        for which an alternate exists.

    Raises:
        AnalysisError: if called with :data:`Metric.BANDWIDTH`.
    """
    if metric is Metric.BANDWIDTH:
        raise AnalysisError("use analyze_bandwidth for the bandwidth metric")
    graph = build_graph(dataset, metric, min_samples=min_samples)
    return analyze_graph(
        graph, dataset_name=dataset.meta.name, one_hop_only=one_hop_only, pairs=pairs
    )


def analyze_graph(
    graph: MetricGraph,
    *,
    dataset_name: str = "",
    one_hop_only: bool = False,
    pairs: list[Pair] | None = None,
) -> AnalysisResult:
    """Like :func:`analyze`, but over an already-built graph.

    This is the entry point used by the robustness studies, which rebuild
    graphs from data subsets (time-of-day, per-episode, host-removal).
    """
    if one_hop_only:
        alternates: dict[Pair, AlternatePath] = best_one_hop_alternates(graph, pairs)
    else:
        alternates = AlternatePathFinder(graph).best_all(pairs)
    comparisons: list[PairComparison] = []
    wanted: Iterable[Pair] = pairs if pairs is not None else sorted(graph.edges)
    for pair in wanted:
        if not graph.has_edge(pair):
            continue
        alt = alternates.get(pair)
        if alt is None:
            continue
        default = graph.edge(pair)
        components = _alt_components(graph, alt)
        if graph.metric is Metric.LOSS:
            estimate = diff_of_loss_rates(default.stats, components)
        elif graph.metric is Metric.RTT:
            estimate = diff_of_means(default.stats, components)
        else:
            estimate = None  # percentile-based metrics carry no simple SE
        comparisons.append(
            PairComparison(
                src=pair[0],
                dst=pair[1],
                metric=graph.metric,
                default_value=default.value,
                alt_value=alt.value,
                via=alt.via,
                estimate=estimate,
            )
        )
    return AnalysisResult(
        dataset_name=dataset_name,
        metric=graph.metric,
        comparisons=comparisons,
        graph=graph,
    )


def analyze_bandwidth(
    dataset: Dataset,
    composition: LossComposition,
    *,
    min_samples: int = 1,
    pairs: list[Pair] | None = None,
) -> AnalysisResult:
    """Bandwidth analysis (Figures 4/5): one-hop Mathis composition.

    The paper does not apply the 30-measurement floor to N2, so
    ``min_samples`` defaults to 1 here.
    """
    graph = build_graph(dataset, Metric.BANDWIDTH, min_samples=min_samples)
    alternates = best_bandwidth_alternates(graph, composition, pairs)
    comparisons: list[PairComparison] = []
    wanted: Iterable[Pair] = pairs if pairs is not None else sorted(graph.edges)
    for pair in wanted:
        if not graph.has_edge(pair):
            continue
        alt: BandwidthAlternate | None = alternates.get(pair)
        if alt is None:
            continue
        default = graph.edge(pair)
        comparisons.append(
            PairComparison(
                src=pair[0],
                dst=pair[1],
                metric=Metric.BANDWIDTH,
                default_value=default.value,
                alt_value=alt.bandwidth_kbps,
                via=(alt.via,),
                estimate=None,
            )
        )
    return AnalysisResult(
        dataset_name=f"{dataset.meta.name} {composition.value}",
        metric=Metric.BANDWIDTH,
        comparisons=comparisons,
        graph=graph,
    )

"""Synthetic alternate-path bandwidth (Figures 4 and 5).

"We construct alternate path bandwidth measurements by combining the
round-trip times and loss rates observed along each default path [...] We
compute the resulting TCP bandwidth according to the TCP model of Mathis
et al.  We combine round-trip times via addition.  However it is less
clear how to compose loss rates [...] Therefore, we present the results
using two different methods" (§5):

* **optimistic** — the maximum of the constituent loss rates (the sending
  TCP causes the loss, so the lossiest hop is the bottleneck);
* **pessimistic** — the independence combination ``1 - ∏(1 - p_i)`` (all
  losses are background).

"To be computationally tractable, we only consider alternate paths of
length one hop."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.graph import GraphError, Metric, MetricGraph, Pair
from repro.measurement.tcp import mathis_bandwidth_kbps

#: Loss floor applied before the Mathis formula: a measured loss rate of
#: exactly zero would imply infinite bandwidth.
LOSS_FLOOR = 1e-4


class LossComposition(enum.Enum):
    """How constituent loss rates combine on a synthetic path."""

    OPTIMISTIC = "optimistic"     # max of the components
    PESSIMISTIC = "pessimistic"   # independence: 1 - prod(1 - p)
    #: Sum of the components — not in the paper; used by the loss-composition
    #: ablation benchmark as an upper-bound sanity check.
    SUM = "sum"

    def combine(self, p1: float, p2: float) -> float:
        """Compose two loss rates."""
        if self is LossComposition.OPTIMISTIC:
            return max(p1, p2)
        if self is LossComposition.PESSIMISTIC:
            return 1.0 - (1.0 - p1) * (1.0 - p2)
        return min(p1 + p2, 1.0)


@dataclass(frozen=True, slots=True)
class BandwidthAlternate:
    """Best one-hop synthetic bandwidth for one ordered pair.

    Attributes:
        src: Source host.
        dst: Destination host.
        via: The single intermediate host.
        bandwidth_kbps: Composed Mathis bandwidth of the synthetic path.
        rtt_ms: Composed RTT (sum of the two hops).
        loss_rate: Composed loss under the chosen composition.
    """

    src: str
    dst: str
    via: str
    bandwidth_kbps: float
    rtt_ms: float
    loss_rate: float


def compose_bandwidth(
    rtt1_ms: float,
    loss1: float,
    rtt2_ms: float,
    loss2: float,
    composition: LossComposition,
) -> tuple[float, float, float]:
    """Mathis bandwidth of a two-hop synthetic path.

    Returns:
        (bandwidth_kbps, composed_rtt_ms, composed_loss).
    """
    rtt = rtt1_ms + rtt2_ms
    loss = max(composition.combine(loss1, loss2), LOSS_FLOOR)
    return mathis_bandwidth_kbps(rtt, loss), rtt, loss


def best_bandwidth_alternates(
    graph: MetricGraph,
    composition: LossComposition,
    pairs: list[Pair] | None = None,
) -> dict[Pair, BandwidthAlternate]:
    """Best one-hop bandwidth alternates for every measured pair.

    Args:
        graph: A :data:`Metric.BANDWIDTH` graph whose edges carry
            ``rtt_mean`` and ``loss_mean`` aux values.
        composition: Loss-combination mode.
        pairs: Restrict to these pairs (default: all measured pairs).

    Raises:
        GraphError: if ``graph`` is not a bandwidth graph.
    """
    if graph.metric is not Metric.BANDWIDTH:
        raise GraphError("best_bandwidth_alternates requires a bandwidth graph")
    hosts = graph.hosts
    n = len(hosts)
    rtt = np.full((n, n), np.inf)
    loss = np.full((n, n), np.inf)
    for (src, dst), data in graph.edges.items():
        i, j = graph.host_index(src), graph.host_index(dst)
        rtt[i, j] = data.aux["rtt_mean"]
        loss[i, j] = data.aux["loss_mean"]
    wanted = pairs if pairs is not None else sorted(graph.edges)
    out: dict[Pair, BandwidthAlternate] = {}
    for src, dst in wanted:
        i, j = graph.host_index(src), graph.host_index(dst)
        best: BandwidthAlternate | None = None
        for k in range(n):
            if k == i or k == j:
                continue
            if not (np.isfinite(rtt[i, k]) and np.isfinite(rtt[k, j])):
                continue
            bw, crtt, closs = compose_bandwidth(
                rtt[i, k], loss[i, k], rtt[k, j], loss[k, j], composition
            )
            if best is None or bw > best.bandwidth_kbps:
                best = BandwidthAlternate(
                    src=src,
                    dst=dst,
                    via=hosts[k],
                    bandwidth_kbps=bw,
                    rtt_ms=crtt,
                    loss_rate=closs,
                )
        if best is not None:
            out[(src, dst)] = best
    return out

"""The paper's core contribution: alternate-path quality analysis.

Typical usage::

    from repro.datasets import build_uw3
    from repro.core import Metric, analyze

    uw3, _ = build_uw3()
    result = analyze(uw3, Metric.RTT)
    print(result.fraction_improved())      # ~0.3-0.55 per the paper
    cdf = result.improvement_cdf()         # Figure 1's UW3 curve
"""

from repro.core.altpath import (
    AlternatePath,
    AlternatePathFinder,
    best_one_hop_alternates,
    loss_weight,
)
from repro.core.analysis import (
    AnalysisError,
    AnalysisResult,
    PairComparison,
    analyze,
    analyze_bandwidth,
    analyze_graph,
)
from repro.core.ases import (
    ASAnalysisError,
    ASPoint,
    as_popularity,
    outlier_ases,
    popularity_correlation,
)
from repro.core.bandwidth import (
    BandwidthAlternate,
    LossComposition,
    best_bandwidth_alternates,
    compose_bandwidth,
)
from repro.core.episodes import EpisodeAnalysis, EpisodeError, analyze_episodes
from repro.core.graph import (
    EdgeData,
    GraphError,
    Metric,
    MetricGraph,
    PROPAGATION_PERCENTILE,
    build_graph,
)
from repro.core.hosts import (
    RemovalStep,
    contribution_cdf,
    greedy_host_removal,
    improvement_contributions,
    removal_cdfs,
    tail_heaviness,
)
from repro.core.hopdepth import (
    DepthSweepRow,
    HopDepthError,
    depth_sweep,
    k_hop_alternate_values,
)
from repro.core.medians import (
    MeanMedianComparison,
    MedianAnalysisError,
    compare_mean_vs_median,
    max_cdf_discrepancy,
    mean_median_cdfs,
)
from repro.core.propagation import (
    DelayDecomposition,
    DelayGroup,
    analyze_propagation,
    decompose_improvements,
    group_counts,
    prop_improvement_cdf,
    propagation_cdfs,
    propagation_share,
)
from repro.core.stats import (
    CDFSeries,
    Comparison,
    DelayDistribution,
    DiffEstimate,
    SampleStats,
    StatsError,
    compose_loss,
    diff_of_loss_rates,
    diff_of_means,
    make_cdf,
    median_of_composed,
    welch_satterthwaite,
)
from repro.core.bootstrap import (
    AgreementReport,
    BootstrapError,
    BootstrapInterval,
    bootstrap_improvements,
    compare_with_analytic,
)
from repro.core.crossmetric import (
    CrossMetricError,
    CrossMetricPoint,
    CrossMetricSummary,
    cross_metric_analysis,
    summarize_cross_metric,
)
from repro.core.triangulation import (
    PredictionQuality,
    TrianglePoint,
    TriangulationError,
    prediction_quality,
    triangulate,
    triangulate_dataset,
    violation_rate,
)
from repro.core.timeofday import (
    TimeBin,
    analyze_by_time_of_day,
    paper_time_bins,
    peak_vs_offpeak_gap,
)

__all__ = [
    "ASAnalysisError",
    "ASPoint",
    "AgreementReport",
    "AlternatePath",
    "AlternatePathFinder",
    "AnalysisError",
    "AnalysisResult",
    "BandwidthAlternate",
    "BootstrapError",
    "BootstrapInterval",
    "CDFSeries",
    "Comparison",
    "CrossMetricError",
    "CrossMetricPoint",
    "CrossMetricSummary",
    "DelayDecomposition",
    "DelayDistribution",
    "DelayGroup",
    "DepthSweepRow",
    "DiffEstimate",
    "EdgeData",
    "EpisodeAnalysis",
    "EpisodeError",
    "GraphError",
    "HopDepthError",
    "LossComposition",
    "MeanMedianComparison",
    "MedianAnalysisError",
    "Metric",
    "MetricGraph",
    "PROPAGATION_PERCENTILE",
    "PairComparison",
    "PredictionQuality",
    "RemovalStep",
    "SampleStats",
    "StatsError",
    "TimeBin",
    "TrianglePoint",
    "TriangulationError",
    "analyze",
    "analyze_bandwidth",
    "analyze_by_time_of_day",
    "analyze_episodes",
    "analyze_graph",
    "analyze_propagation",
    "as_popularity",
    "best_bandwidth_alternates",
    "best_one_hop_alternates",
    "bootstrap_improvements",
    "build_graph",
    "compare_mean_vs_median",
    "compare_with_analytic",
    "compose_bandwidth",
    "compose_loss",
    "contribution_cdf",
    "cross_metric_analysis",
    "decompose_improvements",
    "depth_sweep",
    "diff_of_loss_rates",
    "diff_of_means",
    "greedy_host_removal",
    "group_counts",
    "improvement_contributions",
    "k_hop_alternate_values",
    "loss_weight",
    "make_cdf",
    "max_cdf_discrepancy",
    "mean_median_cdfs",
    "median_of_composed",
    "outlier_ases",
    "paper_time_bins",
    "peak_vs_offpeak_gap",
    "popularity_correlation",
    "prediction_quality",
    "prop_improvement_cdf",
    "propagation_cdfs",
    "propagation_share",
    "removal_cdfs",
    "summarize_cross_metric",
    "tail_heaviness",
    "triangulate",
    "triangulate_dataset",
    "violation_rate",
    "welch_satterthwaite",
]

"""Host-distance triangulation (the Francis et al. validation, paper §2).

Francis et al. (IDMaps, INFOCOM '99) estimate the minimum propagation
delay between two hosts from pair-wise measurements through shared
landmarks: the triangle inequality gives an upper bound
``min_k d(A,k) + d(k,B)`` and a lower bound ``max_k |d(A,k) − d(k,B)|``.
The paper notes its tool suite can "independently generate their graphs";
this module does exactly that over a propagation-delay measurement graph.

The connection to the paper's headline is direct: a pair whose *upper
bound* undercuts its measured direct delay is a triangle-inequality
violation — a one-hop alternate with a shorter propagation path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import Metric, MetricGraph, build_graph
from repro.datasets.dataset import Dataset


class TriangulationError(RuntimeError):
    """Raised when triangulation preconditions fail."""


@dataclass(frozen=True, slots=True)
class TrianglePoint:
    """One host pair's triangulated distance estimate.

    Attributes:
        src: Source host.
        dst: Destination host.
        actual_ms: Measured propagation delay of the direct path.
        upper_ms: Best triangle upper bound through any landmark.
        lower_ms: Best triangle lower bound through any landmark.
        landmark: The host realizing the upper bound.
    """

    src: str
    dst: str
    actual_ms: float
    upper_ms: float
    lower_ms: float
    landmark: str

    @property
    def violates_triangle_inequality(self) -> bool:
        """Whether a relayed route is shorter than the direct one."""
        return self.upper_ms < self.actual_ms

    @property
    def upper_relative_error(self) -> float:
        """Relative error of the upper bound as a distance predictor."""
        if self.actual_ms <= 0:
            return float("inf")
        return (self.upper_ms - self.actual_ms) / self.actual_ms


def triangulate(graph: MetricGraph) -> list[TrianglePoint]:
    """Triangle bounds for every measured pair of a propagation graph.

    Pairs with no common landmark are skipped.

    Raises:
        TriangulationError: for non-propagation-delay graphs.
    """
    if graph.metric is not Metric.PROP_DELAY:
        raise TriangulationError("triangulation expects a PROP_DELAY graph")
    hosts = graph.hosts
    weights = graph.weight_matrix()
    n = len(hosts)
    points: list[TrianglePoint] = []
    for (src, dst), data in sorted(graph.edges.items()):
        i, j = graph.host_index(src), graph.host_index(dst)
        best_upper = np.inf
        best_lower = 0.0
        best_mid = None
        for k in range(n):
            if k in (i, j):
                continue
            a, b = weights[i, k], weights[k, j]
            if not (np.isfinite(a) and np.isfinite(b)):
                continue
            upper = a + b
            if upper < best_upper:
                best_upper, best_mid = upper, k
            best_lower = max(best_lower, abs(a - b))
        if best_mid is None:
            continue
        points.append(
            TrianglePoint(
                src=src,
                dst=dst,
                actual_ms=data.value,
                upper_ms=float(best_upper),
                lower_ms=float(best_lower),
                landmark=hosts[best_mid],
            )
        )
    return points


def triangulate_dataset(
    dataset: Dataset, *, min_samples: int = 30
) -> list[TrianglePoint]:
    """Convenience wrapper: build the propagation graph and triangulate."""
    graph = build_graph(dataset, Metric.PROP_DELAY, min_samples=min_samples)
    return triangulate(graph)


def violation_rate(points: list[TrianglePoint]) -> float:
    """Fraction of pairs whose triangle upper bound beats the direct path.

    In a metric space this would be zero; on the Internet it is the
    paper's one-hop propagation-delay improvement fraction.
    """
    if not points:
        raise TriangulationError("no triangulated points")
    return float(np.mean([p.violates_triangle_inequality for p in points]))


@dataclass(frozen=True, slots=True)
class PredictionQuality:
    """Aggregate accuracy of triangulated distance estimates."""

    n: int
    median_relative_error: float
    within_factor_two: float
    bracketing_rate: float


def prediction_quality(points: list[TrianglePoint]) -> PredictionQuality:
    """How well the triangle upper bound predicts measured distance.

    ``bracketing_rate`` is the fraction of pairs where the measured value
    falls inside [lower, upper] — the Francis et al. success criterion.
    """
    if not points:
        raise TriangulationError("no triangulated points")
    errors = np.array([abs(p.upper_relative_error) for p in points])
    within2 = np.mean(
        [0.5 <= p.upper_ms / p.actual_ms <= 2.0 for p in points if p.actual_ms > 0]
    )
    bracketing = np.mean(
        [p.lower_ms <= p.actual_ms <= p.upper_ms for p in points]
    )
    return PredictionQuality(
        n=len(points),
        median_relative_error=float(np.median(errors)),
        within_factor_two=float(within2),
        bracketing_rate=float(bracketing),
    )

"""Bootstrap validation of the analytic confidence intervals.

The paper's Tables 2/3 rest on t-based confidence intervals whose
variance term assumes independent samples and sums of means (§4.1).
This module provides a nonparametric check: resample each constituent
path's samples with replacement, recompute the composed improvement, and
take percentile intervals.  Agreement between the bootstrap and analytic
intervals supports the paper's (and our) use of the cheaper analytic
form; where they disagree, the bootstrap is the more defensible of the
two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import AnalysisResult
from repro.core.graph import Metric, Pair
from repro.core.stats import compose_loss
from repro.datasets.dataset import Dataset


class BootstrapError(RuntimeError):
    """Raised on invalid bootstrap configuration."""


@dataclass(frozen=True, slots=True)
class BootstrapInterval:
    """Bootstrap percentile interval for one pair's improvement.

    Attributes:
        src: Source host.
        dst: Destination host.
        point: The observed improvement (default − composed alternate).
        lo: Lower percentile bound.
        hi: Upper percentile bound.
    """

    src: str
    dst: str
    point: float
    lo: float
    hi: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi


def _resample_mean(samples: np.ndarray, rng: np.random.Generator) -> float:
    idx = rng.integers(0, samples.size, size=samples.size)
    return float(samples[idx].mean())


def bootstrap_improvements(
    dataset: Dataset,
    result: AnalysisResult,
    *,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
    max_pairs: int | None = None,
) -> list[BootstrapInterval]:
    """Bootstrap the improvement of each comparison in ``result``.

    The alternate path's composition (RTT sum / loss independence) is
    recomputed per resample from the raw samples, so the interval
    reflects the full nonlinearity of the statistic.

    Args:
        dataset: The dataset the analysis was computed from.
        result: An RTT or LOSS analysis over that dataset.
        n_resamples: Bootstrap replicates per pair.
        confidence: Central interval mass.
        seed: RNG seed.
        max_pairs: Optionally cap the number of pairs (cost control).

    Raises:
        BootstrapError: on unsupported metrics or bad parameters.
    """
    if result.metric not in (Metric.RTT, Metric.LOSS):
        raise BootstrapError("bootstrap supports the RTT and LOSS metrics")
    if n_resamples < 10:
        raise BootstrapError("n_resamples must be at least 10")
    if not 0.0 < confidence < 1.0:
        raise BootstrapError("confidence must be in (0, 1)")
    rng = np.random.default_rng((seed, 0xB0075))
    sampler = (
        dataset.rtt_samples if result.metric is Metric.RTT else dataset.loss_samples
    )
    alpha = (1.0 - confidence) / 2.0
    out: list[BootstrapInterval] = []
    comparisons = result.comparisons
    if max_pairs is not None:
        comparisons = comparisons[:max_pairs]
    for comp in comparisons:
        pair: Pair = (comp.src, comp.dst)
        legs = list(zip((comp.src, *comp.via), (*comp.via, comp.dst)))
        default_samples = sampler(pair)
        leg_samples = [sampler(leg) for leg in legs]
        if default_samples.size == 0 or any(s.size == 0 for s in leg_samples):
            continue
        replicates = np.empty(n_resamples)
        for b in range(n_resamples):
            default_mean = _resample_mean(default_samples, rng)
            leg_means = [_resample_mean(s, rng) for s in leg_samples]
            if result.metric is Metric.RTT:
                alt = sum(leg_means)
            else:
                alt = compose_loss([min(max(m, 0.0), 1.0) for m in leg_means])
            replicates[b] = default_mean - alt
        lo, hi = np.quantile(replicates, [alpha, 1.0 - alpha])
        out.append(
            BootstrapInterval(
                src=comp.src,
                dst=comp.dst,
                point=comp.improvement,
                lo=float(lo),
                hi=float(hi),
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class AgreementReport:
    """How well bootstrap and analytic intervals agree."""

    n: int
    sign_agreement: float
    point_coverage: float
    median_width_ratio: float


def compare_with_analytic(
    result: AnalysisResult,
    intervals: list[BootstrapInterval],
    *,
    confidence: float = 0.95,
) -> AgreementReport:
    """Compare bootstrap intervals against the analysis' analytic CIs.

    ``sign_agreement`` is the fraction of pairs where both methods give
    the same better/indeterminate/worse verdict; ``point_coverage`` the
    fraction of bootstrap intervals containing the point estimate;
    ``median_width_ratio`` the bootstrap width over the analytic width.

    Raises:
        BootstrapError: when nothing can be compared.
    """
    by_pair = {(c.src, c.dst): c for c in result.comparisons}
    agree = 0
    cover = 0
    ratios: list[float] = []
    n = 0
    for interval in intervals:
        comp = by_pair.get((interval.src, interval.dst))
        if comp is None or comp.estimate is None:
            continue
        n += 1
        a_lo, a_hi = comp.estimate.confidence_interval(confidence)

        def verdict(lo: float, hi: float) -> int:
            if lo > 0:
                return 1
            if hi < 0:
                return -1
            return 0

        if verdict(a_lo, a_hi) == verdict(interval.lo, interval.hi):
            agree += 1
        if interval.contains(interval.point):
            cover += 1
        analytic_width = a_hi - a_lo
        if analytic_width > 0:
            ratios.append((interval.hi - interval.lo) / analytic_width)
    if n == 0:
        raise BootstrapError("no comparable pairs")
    return AgreementReport(
        n=n,
        sign_agreement=agree / n,
        point_coverage=cover / n,
        median_width_ratio=float(np.median(ratios)) if ratios else float("nan"),
    )

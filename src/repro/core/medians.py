"""Mean-vs-median robustness check (§6.1, Figure 6).

"We combine medians by convolving the distributions of the round-trip
times in each path, and using the median of the resulting distribution."
Alternate paths are limited to one hop "to keep the computational costs
reasonable", for means and medians alike, so the two curves are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.altpath import best_one_hop_alternates
from repro.core.graph import EdgeData, Metric, MetricGraph, build_graph
from repro.core.stats import (
    CDFSeries,
    DelayDistribution,
    make_cdf,
    median_of_composed,
)
from repro.datasets.dataset import Dataset


class MedianAnalysisError(RuntimeError):
    """Raised when median analysis preconditions fail."""


@dataclass(frozen=True, slots=True)
class MeanMedianComparison:
    """One pair's improvement under both statistics.

    Attributes:
        src: Source host.
        dst: Destination host.
        mean_improvement: Default minus best one-hop alternate, means.
        median_improvement: Same, medians-by-convolution.  The best
            alternate is re-selected under the median statistic.
    """

    src: str
    dst: str
    mean_improvement: float
    median_improvement: float


def _median_graph(dataset: Dataset, min_samples: int, bin_width: float) -> MetricGraph:
    """A graph whose edge values are per-path median RTTs, with the raw
    sample distributions retained for convolution."""
    base = build_graph(dataset, Metric.RTT, min_samples=min_samples, keep_samples=True)
    graph = MetricGraph(Metric.RTT, base.hosts)
    for pair, data in base.edges.items():
        samples = data.samples
        if samples is None or samples.size == 0:
            continue
        graph.add_edge(
            pair,
            EdgeData(
                value=float(np.median(samples)),
                stats=data.stats,
                samples=samples,
            ),
        )
    return graph


def compare_mean_vs_median(
    dataset: Dataset,
    *,
    min_samples: int = 30,
    bin_width_ms: float = 1.0,
) -> list[MeanMedianComparison]:
    """Figure 6's data: one-hop improvements under means and medians.

    For the median curve, candidate alternates are ranked by the sum of
    hop medians (a cheap proxy), then the winner's *exact* composed median
    is computed by convolving its two hop distributions.

    Args:
        dataset: A traceroute dataset.
        min_samples: Minimum records per pair.
        bin_width_ms: Histogram bin width for the convolution.
    """
    mean_graph = build_graph(dataset, Metric.RTT, min_samples=min_samples)
    median_graph = _median_graph(dataset, min_samples, bin_width_ms)
    mean_alts = best_one_hop_alternates(mean_graph)
    median_alts = best_one_hop_alternates(median_graph)
    out: list[MeanMedianComparison] = []
    for pair in sorted(mean_graph.edges):
        if not median_graph.has_edge(pair):
            continue
        mean_alt = mean_alts.get(pair)
        median_alt = median_alts.get(pair)
        if mean_alt is None or median_alt is None:
            continue
        mean_improvement = mean_graph.edge(pair).value - mean_alt.value
        dists = []
        usable = True
        for leg in median_alt.hops:
            samples = median_graph.edge(leg).samples
            if samples is None or samples.size == 0:
                usable = False
                break
            dists.append(DelayDistribution.from_samples(samples, bin_width_ms))
        if not usable:
            continue
        composed_median = median_of_composed(dists)
        default_samples = median_graph.edge(pair).samples
        assert default_samples is not None
        default_median = float(np.median(default_samples))
        out.append(
            MeanMedianComparison(
                src=pair[0],
                dst=pair[1],
                mean_improvement=mean_improvement,
                median_improvement=default_median - composed_median,
            )
        )
    return out


def mean_median_cdfs(
    comparisons: list[MeanMedianComparison],
) -> tuple[CDFSeries, CDFSeries]:
    """Figure 6's two curves.

    Raises:
        MedianAnalysisError: if no comparisons were computable.
    """
    if not comparisons:
        raise MedianAnalysisError("no pairs with both mean and median data")
    means = make_cdf([c.mean_improvement for c in comparisons], "means")
    medians = make_cdf([c.median_improvement for c in comparisons], "medians")
    return means, medians


def max_cdf_discrepancy(comparisons: list[MeanMedianComparison]) -> float:
    """Kolmogorov–Smirnov-style max gap between the two curves.

    The paper's conclusion is that "the difference is negligible"; this
    statistic lets tests assert it.
    """
    if not comparisons:
        raise MedianAnalysisError("no comparisons supplied")
    means = np.sort([c.mean_improvement for c in comparisons])
    medians = np.sort([c.median_improvement for c in comparisons])
    grid = np.union1d(means, medians)
    cdf_mean = np.searchsorted(means, grid, side="right") / means.size
    cdf_median = np.searchsorted(medians, grid, side="right") / medians.size
    return float(np.max(np.abs(cdf_mean - cdf_median)))

"""Host-popularity evaluation (§7.1, Figures 12 and 13).

Two experiments test whether a handful of well-connected hosts explain
the prevalence of superior alternates:

* **greedy top-k removal** (Figure 12) — repeatedly remove the host whose
  removal shifts the improvement CDF farthest left; if ten removals barely
  move the curve, no small host set is responsible;
* **normalized improvement contribution** (Figure 13) — credit every host
  for each superior alternate path it appears in (not necessarily the
  very best), weighted by how much better that path is; a heavy tail
  would betray a few dominant hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import AnalysisResult, analyze_graph
from repro.core.graph import Metric, MetricGraph
from repro.core.stats import CDFSeries, make_cdf


@dataclass(frozen=True, slots=True)
class RemovalStep:
    """One step of the greedy host-removal experiment.

    Attributes:
        removed: The host removed at this step.
        mean_improvement: Mean improvement of the remaining dataset
            *after* the removal (the quantity greedily minimized).
        result: The post-removal analysis.
    """

    removed: str
    mean_improvement: float
    result: AnalysisResult


def _mean_improvement(result: AnalysisResult) -> float:
    imp = result.improvements()
    return float(imp.mean()) if imp.size else 0.0


def greedy_host_removal(
    graph: MetricGraph,
    k: int = 10,
    *,
    dataset_name: str = "",
) -> list[RemovalStep]:
    """Greedily remove the ``k`` hosts with the greatest CDF impact.

    "We use a simple greedy algorithm to select the hosts; at each step we
    remove the host whose removal shifts the CDF the farthest to the
    left."  The left-shift is measured by the post-removal mean
    improvement.

    Returns:
        One :class:`RemovalStep` per removal, in removal order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    steps: list[RemovalStep] = []
    current = graph
    for _ in range(min(k, max(len(current.hosts) - 3, 0))):
        best_host: str | None = None
        best_mean = np.inf
        best_result: AnalysisResult | None = None
        for host in current.hosts:
            candidate = current.without_hosts({host})
            result = analyze_graph(candidate, dataset_name=dataset_name)
            if not result.comparisons:
                continue
            mean = _mean_improvement(result)
            if mean < best_mean:
                best_host, best_mean, best_result = host, mean, result
        if best_host is None or best_result is None:
            break
        steps.append(
            RemovalStep(
                removed=best_host,
                mean_improvement=best_mean,
                result=best_result,
            )
        )
        current = current.without_hosts({best_host})
    return steps


def removal_cdfs(
    baseline: AnalysisResult, steps: list[RemovalStep]
) -> tuple[CDFSeries, CDFSeries]:
    """Figure 12's two curves: all hosts vs. after the top-k removal."""
    full = baseline.improvement_cdf(label="all hosts")
    if steps:
        pruned = steps[-1].result.improvement_cdf(label=f"without top {len(steps)}")
    else:
        pruned = full
    return full, pruned


def improvement_contributions(
    graph: MetricGraph, *, normalize_to: float = 100.0
) -> dict[str, float]:
    """Per-host normalized improvement contribution (Figure 13).

    For every ordered pair and every intermediate host whose one-hop
    alternate is superior to the default path, the host is credited with
    that improvement; each pair's best multi-hop alternate additionally
    credits its intermediate hosts.  Contributions are normalized so the
    mean over hosts equals ``normalize_to`` (the paper's x-axis reaches
    ~250 under mean-100 normalization).
    """
    hosts = graph.hosts
    contributions = {h: 0.0 for h in hosts}
    weights = graph.weight_matrix()
    index = {h: i for i, h in enumerate(hosts)}
    # Credit every superior one-hop alternate (not only the single best).
    for (src, dst), data in graph.edges.items():
        i, j = index[src], index[dst]
        default = data.value
        for k, mid in enumerate(hosts):
            if k in (i, j):
                continue
            w1, w2 = weights[i, k], weights[k, j]
            if not (np.isfinite(w1) and np.isfinite(w2)):
                continue
            if graph.metric is Metric.LOSS:
                composed = 1.0 - (1.0 - w1) * (1.0 - w2)
            else:
                composed = w1 + w2
            improvement = default - composed
            if improvement > 0:
                contributions[mid] += improvement
    # Credit the best (possibly multi-hop) alternate's intermediates too.
    result = analyze_graph(graph)
    for comp in result.comparisons:
        if comp.improvement > 0 and len(comp.via) > 1:
            for mid in comp.via:
                contributions[mid] += comp.improvement / len(comp.via)
    mean = np.mean(list(contributions.values()))
    if mean > 0:
        scale = normalize_to / mean
        contributions = {h: v * scale for h, v in contributions.items()}
    return contributions


def contribution_cdf(
    contributions: dict[str, float], label: str = "contribution"
) -> CDFSeries:
    """CDF over hosts of their normalized contributions (Figure 13)."""
    return make_cdf(list(contributions.values()), label)


def tail_heaviness(contributions: dict[str, float]) -> float:
    """Share of total contribution held by the top 10 % of hosts.

    A diagnostic for Figure 13's claim: the distribution "lacks the heavy
    tail that would indicate the existence of a few hosts with abnormally
    large contributions".
    """
    values = np.sort(np.array(list(contributions.values())))[::-1]
    if values.size == 0 or values.sum() == 0:
        return 0.0
    top = max(1, int(round(values.size * 0.1)))
    return float(values[:top].sum() / values.sum())

"""Simultaneous-episode analysis of UW4-A (§6.4, Figure 11).

UW4-A measures every ordered pair within a several-minute "episode"; the
analysis then finds the best alternate *within each episode*, so no
long-term averaging is involved.  Figure 11 plots three curves:

* **UW4-B** — the companion dataset analyzed the ordinary (long-term
  time average) way;
* **pair-averaged UW4-A** — per (pair, episode) improvement, averaged
  over episodes for each pair;
* **unaveraged UW4-A** — every (pair, episode) improvement as its own
  CDF point, exposing the huge short-timescale variability the paper
  describes.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.analysis import analyze_graph
from repro.core.graph import EdgeData, Metric, MetricGraph, Pair
from repro.core.stats import CDFSeries, SampleStats, make_cdf
from repro.datasets.dataset import Dataset


class EpisodeError(RuntimeError):
    """Raised when episode analysis preconditions fail."""


@dataclass
class EpisodeAnalysis:
    """Per-episode improvements for a simultaneous dataset.

    Attributes:
        diffs: Per ordered pair, the list of (episode, improvement)
            observations.
        episodes_analyzed: Number of episodes with at least one usable
            comparison.
    """

    diffs: dict[Pair, list[tuple[int, float]]]
    episodes_analyzed: int

    def pair_averaged(self) -> dict[Pair, float]:
        """Mean improvement per pair across episodes."""
        return {
            pair: float(np.mean([d for _, d in obs]))
            for pair, obs in self.diffs.items()
            if obs
        }

    def pair_averaged_cdf(self, label: str = "pair-averaged") -> CDFSeries:
        """Figure 11's "pair-averaged" curve."""
        values = list(self.pair_averaged().values())
        return make_cdf(values, label)

    def unaveraged_cdf(self, label: str = "unaveraged") -> CDFSeries:
        """Figure 11's "unaveraged" curve: one point per (pair, episode)."""
        values = [d for obs in self.diffs.values() for _, d in obs]
        return make_cdf(values, label)

    def best_alternate_variability(self) -> dict[Pair, float]:
        """Per-pair standard deviation of the episode improvements.

        Quantifies the paper's "huge amount of variability in the
        performance of the best alternate paths in UW4-A".
        """
        return {
            pair: float(np.std([d for _, d in obs]))
            for pair, obs in self.diffs.items()
            if len(obs) >= 2
        }


def _episode_graph(
    dataset: Dataset, episode: int, hosts: list[str]
) -> MetricGraph | None:
    """Build a one-episode RTT graph (each edge from one traceroute)."""
    graph = MetricGraph(Metric.RTT, hosts)
    n_edges = 0
    for rec in dataset.records_in_episode(episode):
        rtts = rec.successful_rtts
        if not rtts:
            continue
        pair = (rec.src, rec.dst)
        if graph.has_edge(pair):
            continue  # keep the first measurement if duplicated
        mean = float(np.mean(rtts))
        var = float(np.var(rtts, ddof=1)) if len(rtts) > 1 else 0.0
        graph.add_edge(
            pair,
            EdgeData(value=mean, stats=SampleStats(n=len(rtts), mean=mean, var=var)),
        )
        n_edges += 1
    return graph if n_edges else None


def analyze_episodes(dataset: Dataset, *, max_episodes: int | None = None) -> EpisodeAnalysis:
    """Compute within-episode best-alternate improvements for UW4-A.

    "In analyzing UW4-A, we compute the best alternate path using only
    measurements taken from the same episode; we then calculate the
    difference between the measurement of the default path and the best
    alternate path within the episode."

    Args:
        dataset: A dataset collected with episode scheduling.
        max_episodes: Optional cap for quick runs.

    Raises:
        EpisodeError: if the dataset has no episodes.
    """
    episode_ids = dataset.episodes()
    if not episode_ids:
        raise EpisodeError(f"{dataset.meta.name} has no episode-scheduled records")
    if max_episodes is not None:
        episode_ids = episode_ids[:max_episodes]
    diffs: dict[Pair, list[tuple[int, float]]] = defaultdict(list)
    analyzed = 0
    for ep in episode_ids:
        graph = _episode_graph(dataset, ep, dataset.hosts)
        if graph is None:
            continue
        result = analyze_graph(graph, dataset_name=f"{dataset.meta.name} ep{ep}")
        if not result.comparisons:
            continue
        analyzed += 1
        for comp in result.comparisons:
            if math.isfinite(comp.improvement):
                diffs[(comp.src, comp.dst)].append((ep, comp.improvement))
    return EpisodeAnalysis(diffs=dict(diffs), episodes_analyzed=analyzed)

"""Statistical machinery for path comparisons.

The paper (§4.1, §6) rests on a small statistical toolkit:

* **sample means** as the characteristic statistic of each path, chosen
  for the additive property "the sum of the means is equal to the mean of
  the sums";
* **95 % confidence intervals** on the difference between a default path's
  mean and a synthetic alternate's composed mean, computed as
  ``d̄ ± t[.975; ν] · s`` following Jain's formulation, with the variance
  of the composed mean summed across constituent edges (independence
  assumption) and degrees of freedom by Welch–Satterthwaite;
* **t-test classification** of each pair as better / worse /
  indeterminate (Tables 2 and 3);
* **medians by convolution** — the median of a composed path requires
  convolving the per-edge sample distributions and taking the median of
  the result (Figure 6).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps


class StatsError(ValueError):
    """Raised on invalid statistical inputs."""


@dataclass(frozen=True, slots=True)
class SampleStats:
    """Summary of one path's measurement samples.

    Attributes:
        n: Number of samples.
        mean: Sample mean.
        var: Unbiased sample variance (ddof=1); 0.0 when n < 2.
    """

    n: int
    mean: float
    var: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise StatsError(f"need at least one sample, got n={self.n}")
        if self.var < 0:
            raise StatsError(f"variance cannot be negative, got {self.var}")

    @classmethod
    def from_samples(cls, samples: np.ndarray | Sequence[float]) -> "SampleStats":
        """Build from raw samples.

        Raises:
            StatsError: if ``samples`` is empty.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise StatsError("cannot summarize zero samples")
        var = float(np.var(arr, ddof=1)) if arr.size > 1 else 0.0
        return cls(n=int(arr.size), mean=float(arr.mean()), var=var)

    @property
    def sem_sq(self) -> float:
        """Squared standard error of the mean, ``var / n``."""
        return self.var / self.n


class Comparison(enum.Enum):
    """t-test classification of a default-vs-alternate difference."""

    BETTER = "better"            # alternate significantly better
    WORSE = "worse"              # alternate significantly worse
    INDETERMINATE = "indeterminate"  # CI crosses zero
    ZERO = "zero"                # no measured signal on either path (loss)


@dataclass(frozen=True, slots=True)
class DiffEstimate:
    """A difference of means with its uncertainty.

    ``diff`` is oriented so positive means *the alternate is better*.

    Attributes:
        diff: Point estimate of the improvement.
        se: Standard error of ``diff``; 0 when no variance information.
        dof: Welch–Satterthwaite degrees of freedom (>= 1).
    """

    diff: float
    se: float
    dof: float

    def confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Two-sided CI on the improvement.

        With no variance information (se == 0) the interval collapses to
        the point estimate.
        """
        if not 0.0 < confidence < 1.0:
            raise StatsError(f"confidence must be in (0,1), got {confidence}")
        if self.se == 0.0:
            return (self.diff, self.diff)
        tq = float(sps.t.ppf(0.5 + confidence / 2.0, max(self.dof, 1.0)))
        return (self.diff - tq * self.se, self.diff + tq * self.se)

    def classify(self, confidence: float = 0.95) -> Comparison:
        """Table 2/3 classification at the given confidence level."""
        lo, hi = self.confidence_interval(confidence)
        if lo > 0.0:
            return Comparison.BETTER
        if hi < 0.0:
            return Comparison.WORSE
        if lo == hi == 0.0:
            return Comparison.ZERO
        return Comparison.INDETERMINATE


def welch_satterthwaite(components: Sequence[SampleStats]) -> float:
    """Welch–Satterthwaite effective degrees of freedom for a sum of
    independent sample means.

    Components with zero variance contribute nothing; if all are
    degenerate the dof defaults to the summed sample sizes minus count.
    """
    if not components:
        raise StatsError("need at least one component")
    num = 0.0
    den = 0.0
    for comp in components:
        v = comp.sem_sq
        num += v
        if v > 0 and comp.n > 1:
            den += (v * v) / (comp.n - 1)
    if den == 0.0:
        return float(max(sum(c.n for c in components) - len(components), 1))
    return max((num * num) / den, 1.0)


def diff_of_means(
    default: SampleStats, alternate_components: Sequence[SampleStats]
) -> DiffEstimate:
    """Estimate (default mean − sum of alternate component means).

    This is the paper's additive composition: an alternate path's mean is
    the sum of its constituent edges' means, its variance the sum of their
    squared standard errors (independence).

    Returns a :class:`DiffEstimate` oriented positive-is-better for
    smaller-is-better metrics (RTT, loss, propagation delay).
    """
    if not alternate_components:
        raise StatsError("alternate path needs at least one component")
    alt_mean = sum(c.mean for c in alternate_components)
    var = default.sem_sq + sum(c.sem_sq for c in alternate_components)
    dof = welch_satterthwaite([default, *alternate_components])
    return DiffEstimate(diff=default.mean - alt_mean, se=math.sqrt(var), dof=dof)


def diff_of_loss_rates(
    default: SampleStats, alternate_components: Sequence[SampleStats]
) -> DiffEstimate:
    """Estimate (default loss − composed alternate loss).

    The alternate's loss under the independence assumption is
    ``1 − ∏(1 − p_i)``; its standard error follows from the delta method,
    where ``∂/∂p_i [1 − ∏(1 − p_j)] = ∏_{j≠i}(1 − p_j)``.
    """
    if not alternate_components:
        raise StatsError("alternate path needs at least one component")
    survive = 1.0
    for comp in alternate_components:
        survive *= max(0.0, 1.0 - comp.mean)
    alt_loss = 1.0 - survive
    var = default.sem_sq
    for comp in alternate_components:
        one_minus = max(1.0 - comp.mean, 1e-12)
        grad = survive / one_minus  # product of the *other* factors
        var += (grad * grad) * comp.sem_sq
    dof = welch_satterthwaite([default, *alternate_components])
    return DiffEstimate(diff=default.mean - alt_loss, se=math.sqrt(var), dof=dof)


def compose_loss(means: Sequence[float]) -> float:
    """Loss of a composed path under per-hop independence."""
    survive = 1.0
    for p in means:
        if not 0.0 <= p <= 1.0:
            raise StatsError(f"loss rate out of range: {p}")
        survive *= 1.0 - p
    return 1.0 - survive


# ---------------------------------------------------------------------------
# Medians of composed paths, by convolution (Figure 6).
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class DelayDistribution:
    """A discretized empirical delay distribution.

    Probability mass at ``origin + k * bin_width`` for each index ``k``.
    """

    origin: float
    bin_width: float
    pmf: np.ndarray

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise StatsError(f"bin_width must be positive, got {self.bin_width}")
        total = float(self.pmf.sum())
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise StatsError(f"pmf must sum to 1, got {total}")

    @classmethod
    def from_samples(
        cls, samples: np.ndarray | Sequence[float], bin_width: float = 1.0
    ) -> "DelayDistribution":
        """Histogram raw samples into a normalized PMF."""
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise StatsError("cannot build a distribution from zero samples")
        origin = math.floor(float(arr.min()) / bin_width) * bin_width
        idx = np.floor((arr - origin) / bin_width).astype(int)
        pmf = np.bincount(idx).astype(float)
        pmf /= pmf.sum()
        return cls(origin=origin, bin_width=bin_width, pmf=pmf)

    def convolve(self, other: "DelayDistribution") -> "DelayDistribution":
        """Distribution of the sum of two independent delays.

        Raises:
            StatsError: on mismatched bin widths.
        """
        if not math.isclose(self.bin_width, other.bin_width):
            raise StatsError("bin widths must match for convolution")
        pmf = np.convolve(self.pmf, other.pmf)
        pmf /= pmf.sum()  # guard tiny float drift
        return DelayDistribution(
            origin=self.origin + other.origin,
            bin_width=self.bin_width,
            pmf=pmf,
        )

    def quantile(self, q: float) -> float:
        """The q-quantile of the distribution (0 < q < 1)."""
        if not 0.0 < q < 1.0:
            raise StatsError(f"q must be in (0,1), got {q}")
        cum = np.cumsum(self.pmf)
        k = int(np.searchsorted(cum, q))
        return self.origin + k * self.bin_width

    @property
    def median(self) -> float:
        """The distribution's median."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """The distribution's mean."""
        ks = np.arange(len(self.pmf))
        return float(self.origin + self.bin_width * (ks * self.pmf).sum())


def median_of_composed(
    distributions: Sequence[DelayDistribution],
) -> float:
    """Median of a sum of independent delays: convolve then take the median.

    This is the computation the paper calls "substantially more expensive"
    than summing means — the cost is in the repeated convolutions.
    """
    if not distributions:
        raise StatsError("need at least one distribution")
    acc = distributions[0]
    for dist in distributions[1:]:
        acc = acc.convolve(dist)
    return acc.median


# ---------------------------------------------------------------------------
# CDF utilities.
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CDFSeries:
    """An empirical CDF ready for plotting or tabulation.

    Attributes:
        x: Sorted values.
        y: Cumulative fraction at each value (in (0, 1]).
        label: Display label (dataset name etc.).
    """

    x: np.ndarray
    y: np.ndarray
    label: str = ""

    def fraction_above(self, threshold: float) -> float:
        """Fraction of the distribution strictly above ``threshold``."""
        return float(np.mean(self.x > threshold))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of the distribution strictly below ``threshold``."""
        return float(np.mean(self.x < threshold))

    def value_at_fraction(self, q: float) -> float:
        """The q-quantile of the underlying values."""
        if not 0.0 <= q <= 1.0:
            raise StatsError(f"q must be in [0,1], got {q}")
        return float(np.quantile(self.x, q))

    def trimmed(self, lo: float, hi: float) -> "CDFSeries":
        """Restrict the series to x in [lo, hi].

        The paper trims its graphs "to eliminate visual scaling artifacts
        resulting from very long tails", which is why some of its CDFs do
        not reach 100 %.  The y values are preserved (not renormalized).
        """
        mask = (self.x >= lo) & (self.x <= hi)
        return CDFSeries(x=self.x[mask], y=self.y[mask], label=self.label)


def make_cdf(values: Sequence[float] | np.ndarray, label: str = "") -> CDFSeries:
    """Build an empirical CDF from raw values.

    Raises:
        StatsError: if ``values`` is empty.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise StatsError("cannot build a CDF from zero values")
    y = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return CDFSeries(x=arr, y=y, label=label)

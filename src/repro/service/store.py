"""The per-pair path store: candidates, estimates, and health state.

For every served (src, dst) pair the store holds an ordered list of
*candidate paths* — the default BGP path first, then the one-hop detour
candidates discovered by :class:`~repro.core.altpath.AlternatePathFinder`
— and tracks, per candidate:

* **estimates** — EWMA RTT/loss composed from the candidate's overlay
  *legs* (an :class:`~repro.overlay.state.OverlayState` holds one EWMA
  per ordered leg, so probing the ``src -> relay`` leg once refreshes
  every candidate that traverses it);
* **health** — an up/down bit flipped by :meth:`PathStore.mark_path_down`
  and :meth:`PathStore.mark_path_up`, the reactive-failover hooks the
  :class:`~repro.service.detour.DetourService` drives from
  :class:`~repro.scenario.timeline.ScenarioTimeline` transitions;
* **facts** — router-level hop count and propagation RTT of the
  candidate's currently resolved legs (refreshed per topology segment).

Strategies never see the store directly; they receive immutable
:class:`CandidateView` snapshots of the usable candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.overlay.state import OverlayState

Pair = tuple[str, str]


@dataclass(frozen=True, slots=True)
class CandidatePath:
    """One selectable path for an ordered pair (structure only).

    Attributes:
        pair: The served (src, dst) pair.
        relay: The detour relay host, or None for the default BGP path.
    """

    pair: Pair
    relay: str | None

    @property
    def legs(self) -> tuple[Pair, ...]:
        """The ordered overlay legs the candidate traverses."""
        src, dst = self.pair
        if self.relay is None:
            return ((src, dst),)
        return ((src, self.relay), (self.relay, dst))

    @property
    def label(self) -> str:
        """Human-readable route label (``direct`` or ``via <relay>``)."""
        return "direct" if self.relay is None else f"via {self.relay}"


@dataclass(slots=True)
class _CandidateRecord:
    """Mutable per-candidate state (health + per-segment path facts)."""

    candidate: CandidatePath
    up: bool = True
    hop_count: int = 0
    prop_rtt_ms: float = math.nan


@dataclass(frozen=True, slots=True)
class CandidateView:
    """Immutable snapshot of one candidate handed to strategies.

    Attributes:
        pair: The served (src, dst) pair.
        relay: Detour relay host (None = default BGP path).
        index: Stable position in the pair's candidate list (0 = default).
        up: Health bit; views passed to strategies are usable candidates.
        hop_count: Router-level hops of the currently resolved path.
        prop_rtt_ms: Propagation-only RTT of the resolved path (ms).
        est_rtt_ms: EWMA RTT estimate composed over legs (NaN until every
            leg has a successful probe).
        est_loss: EWMA loss estimate composed over legs, in [0, 1].
    """

    pair: Pair
    relay: str | None
    index: int
    up: bool
    hop_count: int
    prop_rtt_ms: float
    est_rtt_ms: float
    est_loss: float

    @property
    def label(self) -> str:
        """Human-readable route label (``direct`` or ``via <relay>``)."""
        return "direct" if self.relay is None else f"via {self.relay}"


@dataclass(frozen=True, slots=True)
class HealthTransition:
    """One mark_path_down / mark_path_up state change (for diagnostics)."""

    t: float
    pair: Pair
    relay: str | None
    up: bool


class PathStore:
    """Candidate paths, EWMA estimates, and health for all served pairs."""

    def __init__(
        self,
        hosts: list[str],
        candidates: dict[Pair, tuple[CandidatePath, ...]],
        *,
        alpha: float = 0.3,
        clip_factor: float | None = 3.0,
    ) -> None:
        """
        Args:
            hosts: Every host that appears in any candidate (endpoints
                and relays).
            candidates: Per-pair ordered candidate lists; by convention
                the default BGP path (relay None) comes first.
            alpha: EWMA weight of the newest probe sample.
            clip_factor: Heavy-tail clip forwarded to the leg estimates
                (see :class:`~repro.overlay.state.OverlayState`).
        """
        self._legs = OverlayState(hosts, alpha=alpha, clip_factor=clip_factor)
        self._records: dict[Pair, list[_CandidateRecord]] = {}
        for pair, cands in candidates.items():
            if not cands:
                raise ValueError(f"pair {pair} has no candidate paths")
            self._records[pair] = [_CandidateRecord(candidate=c) for c in cands]
        self.transitions: list[HealthTransition] = []

    # -- structure -----------------------------------------------------------

    @property
    def pairs(self) -> list[Pair]:
        """Served pairs, in insertion (construction) order."""
        return list(self._records)

    def legs(self) -> list[Pair]:
        """Every distinct ordered leg any candidate traverses, sorted."""
        out: set[Pair] = set()
        for records in self._records.values():
            for rec in records:
                out.update(rec.candidate.legs)
        return sorted(out)

    def candidates(self, pair: Pair) -> tuple[CandidatePath, ...]:
        """The pair's candidate paths in stable store order.

        Raises:
            KeyError: if the pair is not served.
        """
        return tuple(rec.candidate for rec in self._records[pair])

    # -- estimates -----------------------------------------------------------

    def record_leg_probe(self, leg: Pair, rtt_ms: float) -> None:
        """Fold one probe of an overlay leg in (NaN = lost probe)."""
        self._legs.record_probe(leg, rtt_ms)

    def reset_leg(self, leg: Pair) -> None:
        """Drop a leg's estimate (used when its path changes or heals)."""
        self._legs.reset_pair(leg)

    def _compose(self, legs: tuple[Pair, ...]) -> tuple[float, float]:
        """(EWMA RTT sum, composed EWMA loss) over a candidate's legs."""
        rtt = 0.0
        survive = 1.0
        for leg in legs:
            est = self._legs.estimate(leg)
            if not est.usable:
                rtt = math.nan
            else:
                rtt += est.rtt_ms
            survive *= 1.0 - est.loss
        return rtt, 1.0 - survive

    # -- health --------------------------------------------------------------

    def _find(self, pair: Pair, relay: str | None) -> _CandidateRecord:
        for rec in self._records[pair]:
            if rec.candidate.relay == relay:
                return rec
        raise KeyError(f"pair {pair} has no candidate via {relay!r}")

    def mark_path_down(
        self, pair: Pair, relay: str | None, *, t: float = 0.0
    ) -> bool:
        """Mark one candidate unusable; True when the bit actually flipped.

        Raises:
            KeyError: for an unserved pair or unknown candidate.
        """
        rec = self._find(pair, relay)
        if not rec.up:
            return False
        rec.up = False
        self.transitions.append(
            HealthTransition(t=t, pair=pair, relay=relay, up=False)
        )
        return True

    def mark_path_up(
        self, pair: Pair, relay: str | None, *, t: float = 0.0
    ) -> bool:
        """Mark one candidate usable again; True when the bit flipped.

        Raises:
            KeyError: for an unserved pair or unknown candidate.
        """
        rec = self._find(pair, relay)
        if rec.up:
            return False
        rec.up = True
        self.transitions.append(
            HealthTransition(t=t, pair=pair, relay=relay, up=True)
        )
        return True

    def set_path_facts(
        self, pair: Pair, relay: str | None, *, hop_count: int, prop_rtt_ms: float
    ) -> None:
        """Refresh one candidate's resolved-path facts (per segment)."""
        rec = self._find(pair, relay)
        rec.hop_count = hop_count
        rec.prop_rtt_ms = prop_rtt_ms

    # -- views ---------------------------------------------------------------

    def _view(self, pair: Pair, index: int, rec: _CandidateRecord) -> CandidateView:
        est_rtt, est_loss = self._compose(rec.candidate.legs)
        return CandidateView(
            pair=pair,
            relay=rec.candidate.relay,
            index=index,
            up=rec.up,
            hop_count=rec.hop_count,
            prop_rtt_ms=rec.prop_rtt_ms,
            est_rtt_ms=est_rtt,
            est_loss=est_loss,
        )

    def snapshot(self, pair: Pair) -> list[CandidateView]:
        """Views of every candidate (up or down), in store order.

        Raises:
            KeyError: if the pair is not served.
        """
        return [
            self._view(pair, i, rec)
            for i, rec in enumerate(self._records[pair])
        ]

    def usable(self, pair: Pair) -> list[CandidateView]:
        """Views of the candidates a strategy may choose from.

        The up candidates, in store order.  When *every* candidate is
        down (the pair is cut off), the default path alone is returned:
        a client must hand its packets to someone, and the default BGP
        route is what the 1999 Internet would have tried.
        """
        views = [
            self._view(pair, i, rec)
            for i, rec in enumerate(self._records[pair])
            if rec.up
        ]
        if views:
            return views
        return [self._view(pair, 0, self._records[pair][0])]

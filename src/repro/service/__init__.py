"""Online Detour path-selection service (ROADMAP item 1).

An event-driven simulation where client pairs continuously request
paths through a :class:`DetourService`; pluggable
:class:`PathSelectionAlgorithm` strategies choose between the default
BGP path and one-hop detours, a :class:`PathStore` keeps their view
fresh via batched active probing, scenario timelines drive reactive
failover, and :func:`evaluate_strategies` scores every strategy against
the paper's oracle alternates.
"""

from repro.service.detour import (
    DetourService,
    RequestRecord,
    ServiceError,
    ServiceResult,
)
from repro.service.evaluate import (
    EvaluationReport,
    StrategyScore,
    evaluate_strategies,
    score_result,
)
from repro.service.store import (
    CandidatePath,
    CandidateView,
    HealthTransition,
    Pair,
    PathStore,
)
from repro.service.strategy import (
    LowestHopStrategy,
    LowestLatencyStrategy,
    PathSelectionAlgorithm,
    RandomStrategy,
    RoundRobinStrategy,
    StrategyError,
    create_strategy,
    register_strategy,
    strategy_names,
)

__all__ = [
    "CandidatePath",
    "CandidateView",
    "DetourService",
    "EvaluationReport",
    "HealthTransition",
    "LowestHopStrategy",
    "LowestLatencyStrategy",
    "Pair",
    "PathSelectionAlgorithm",
    "PathStore",
    "RandomStrategy",
    "RequestRecord",
    "RoundRobinStrategy",
    "ServiceError",
    "ServiceResult",
    "StrategyError",
    "StrategyScore",
    "create_strategy",
    "evaluate_strategies",
    "register_strategy",
    "score_result",
    "strategy_names",
]

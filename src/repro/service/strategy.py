"""The pluggable path-selection strategy API and its registry.

A :class:`PathSelectionAlgorithm` chooses, per client request, among the
candidate paths the :class:`~repro.service.store.PathStore` currently
considers usable for an ordered host pair: the default BGP path plus the
one-hop detour candidates discovered offline.  The axiomatic framing of
Scherrer et al. ("An Axiomatic Perspective on the Performance Effects of
End-Host Path Selection") motivates keeping the algorithm a first-class
interface rather than a hardcoded policy: strategies differ in which
path property they optimize (latency, hop count) and in how much load
they concentrate (greedy vs. randomized vs. rotating), and the
:mod:`repro.service.evaluate` harness scores them all against the same
oracle.

Registering a strategy makes it reachable from every surface at once —
``repro serve --strategy NAME``, ``ReproSession.serve(strategy=NAME)``,
and :func:`create_strategy`::

    @register_strategy
    class MyStrategy(PathSelectionAlgorithm):
        name = "my-strategy"

        def select(self, pair, candidates):
            return candidates[0]

Strategies may keep per-pair state (round-robin does) and may draw
randomness, but only from their own seed-derived generator, so two
services built with the same seed replay identical choices.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.service.store import CandidateView, Pair


class StrategyError(ValueError):
    """Raised for an unknown strategy name (CLI exit 2).

    The message always lists the registered names so callers can correct
    the spelling without consulting the docs.
    """


#: name -> strategy class; populated by :func:`register_strategy`.
_REGISTRY: dict[str, type["PathSelectionAlgorithm"]] = {}


def register_strategy(
    cls: type["PathSelectionAlgorithm"],
) -> type["PathSelectionAlgorithm"]:
    """Class decorator adding a strategy to the registry under ``cls.name``.

    Raises:
        StrategyError: when the class has no usable ``name`` or the name
            is already taken by a different class.
    """
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise StrategyError(
            f"strategy class {cls.__name__} must define a non-empty "
            "string `name` class attribute"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise StrategyError(
            f"strategy name {name!r} is already registered "
            f"by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """All registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_strategy(name: str, *, seed: int = 0) -> "PathSelectionAlgorithm":
    """Instantiate a registered strategy by name.

    Args:
        name: A name from :func:`strategy_names`.
        seed: Master seed the strategy derives its private RNG from.

    Raises:
        StrategyError: for an unknown name; the message lists the
            registered names.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(strategy_names())
        raise StrategyError(
            f"unknown path-selection strategy {name!r}; "
            f"registered strategies: {known}"
        )
    return cls(seed=seed)


class PathSelectionAlgorithm(ABC):
    """Chooses one candidate path per request.

    Subclasses set the class attribute ``name`` (the registry key) and
    implement :meth:`select`.  The base class provides a seed-derived
    generator at ``self.rng`` — the only randomness a strategy may use,
    so a service replay with the same seed reproduces every choice.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed
        # Stream tag folds in the strategy name so two strategies seeded
        # identically still draw independent streams.
        tag = sum(ord(c) for c in type(self).name) & 0xFFFF
        self.rng = np.random.default_rng((seed, 0x5E1EC7, tag))

    @abstractmethod
    def select(
        self, pair: "Pair", candidates: "Sequence[CandidateView]"
    ) -> "CandidateView":
        """Pick one of ``candidates`` for a request on ``pair``.

        Args:
            pair: The ordered (src, dst) host pair being served.
            candidates: Usable candidates, in stable store order (the
                default BGP path first, then detours); never empty.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"


@register_strategy
class LowestLatencyStrategy(PathSelectionAlgorithm):
    """Greedy: the candidate with the lowest estimated RTT.

    Candidates without a usable estimate yet rank after every estimated
    one; ties break toward the earlier candidate (the default path
    first), which damps oscillation between statistically identical
    routes.
    """

    name = "lowest-latency"

    def select(self, pair, candidates):
        best = candidates[0]
        best_rtt = best.est_rtt_ms
        for cand in candidates[1:]:
            rtt = cand.est_rtt_ms
            if math.isnan(rtt):
                continue
            if math.isnan(best_rtt) or rtt < best_rtt:
                best, best_rtt = cand, rtt
        return best


@register_strategy
class LowestHopStrategy(PathSelectionAlgorithm):
    """The candidate traversing the fewest router-level hops.

    A latency-blind structural policy — the paper's Figure 9 observes
    hop count is a poor predictor of round-trip time, and this strategy
    exists to quantify exactly that gap online.
    """

    name = "lowest-hop"

    def select(self, pair, candidates):
        best = candidates[0]
        for cand in candidates[1:]:
            if cand.hop_count < best.hop_count:
                best = cand
        return best


@register_strategy
class RandomStrategy(PathSelectionAlgorithm):
    """A uniformly random usable candidate (the no-information baseline)."""

    name = "random"

    def select(self, pair, candidates):
        return candidates[int(self.rng.integers(len(candidates)))]


@register_strategy
class RoundRobinStrategy(PathSelectionAlgorithm):
    """Rotates through the usable candidates, one per request per pair.

    The classic load-spreading policy: every candidate carries an equal
    share of the pair's requests regardless of its measured quality.
    """

    name = "round-robin"

    def __init__(self, *, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self._cursor: dict["Pair", int] = {}

    def select(self, pair, candidates):
        turn = self._cursor.get(pair, 0)
        self._cursor[pair] = turn + 1
        return candidates[turn % len(candidates)]

"""The online Detour service: an event-driven path-selection simulation.

This is the repo's answer to ROADMAP item 1 — the long-running overlay
service the 1999 paper's offline analysis was meant to motivate.  Many
(src, dst) client pairs continuously request paths from a
:class:`DetourService`; a pluggable
:class:`~repro.service.strategy.PathSelectionAlgorithm` chooses, per
request, between the default BGP path and the pair's one-hop detour
candidates; a :class:`~repro.service.store.PathStore` keeps the
strategy's view fresh through periodic active probing.

The simulation is event-driven on a deterministic virtual clock:

* **topology events** — :class:`~repro.scenario.timeline.ScenarioTimeline`
  transitions split the horizon into segments; at each boundary the
  service re-resolves every overlay leg and drives
  :meth:`~repro.service.store.PathStore.mark_path_down` /
  :meth:`~repro.service.store.PathStore.mark_path_up` reactive failover;
* **probe rounds** — every ``probe_interval_s`` the service probes all
  resolvable legs in one batched
  :meth:`~repro.netsim.conditions.BucketProbeMixin.probe_batch` call
  (probes are staggered inside the round, exercising the mixed-time
  kernel) and measures one npd-style transfer per resolvable candidate
  via :meth:`~repro.measurement.tcp.TCPTransferSimulator.measure_block`;
* **client requests** — Poisson arrivals per pair; each request asks the
  strategy for a path and realizes the *expected* RTT/loss of the choice
  from the current congestion bucket (no randomness is consumed, so
  request volume never perturbs the probe streams).

Every random stream derives from the master seed via distinct tuple
tags, so the same (plan, seed, strategy) replays byte-identically
regardless of request count, ``--routing-jobs``, or wall-clock speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.altpath import AlternatePathFinder
from repro.core.graph import EdgeData, Metric, MetricGraph
from repro.core.stats import SampleStats
from repro.measurement.tcp import TCPTransferSimulator
from repro.netsim.conditions import BUCKET_SECONDS, NetworkConditions, PathSampler
from repro.obs import clock
from repro.obs import runtime as obs
from repro.routing.forwarding import ForwardingError, PathResolver, RoundTripPath
from repro.scenario.plan import ScenarioPlan
from repro.scenario.timeline import ScenarioTimeline
from repro.service.store import CandidatePath, Pair, PathStore
from repro.service.strategy import PathSelectionAlgorithm, create_strategy
from repro.topology.generator import (
    TopologyConfig,
    build_topology,
    generate_topology,
    place_hosts,
)

#: Spacing between consecutive leg probes inside one probe round, in
#: seconds.  Non-zero so a round is a genuinely mixed-time batch (the
#: paper's measurement hosts never fired in lockstep either).
PROBE_STAGGER_S = 1.0

#: Event priorities at equal timestamps: topology transitions apply
#: before probes, probes before requests — a client asking at the exact
#: failover instant sees the post-failover store.
_PRIO_TOPOLOGY = 0
_PRIO_PROBE = 1
_PRIO_REQUEST = 2


class ServiceError(RuntimeError):
    """Raised for invalid service configuration (CLI exit 2)."""


@dataclass(frozen=True, slots=True)
class _CompositePath:
    """Duck-typed round-trip path over several overlay legs.

    Provides the two attributes :class:`~repro.netsim.conditions.PathSampler`
    and the TCP bottleneck scan actually read from a
    :class:`~repro.routing.forwarding.RoundTripPath`.
    """

    link_ids: tuple[int, ...]
    rtt_prop_ms: float


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One served client request.

    Attributes:
        t: Virtual time of the request, in seconds.
        pair: The requesting (src, dst) pair.
        relay: Relay of the chosen candidate (None = default BGP path).
        failed: True when every candidate was down and the request was
            served onto the dead default path.
        rtt_ms: Expected RTT of the chosen path in the request's
            congestion bucket (NaN when failed).
        loss: Expected loss probability of the chosen path (1.0 when
            failed).
        direct_rtt_ms: Expected RTT of the default BGP path (NaN when it
            is down).
        direct_loss: Expected loss of the default path (1.0 when down).
        oracle_rtt_ms: Best expected RTT over every currently resolvable
            candidate — the paper's oracle alternate (NaN when none).
        oracle_relay: Relay attaining the oracle RTT.
        bandwidth_kbps: Most recent measured transfer bandwidth of the
            chosen candidate (NaN before its first transfer).
    """

    t: float
    pair: Pair
    relay: str | None
    failed: bool
    rtt_ms: float
    loss: float
    direct_rtt_ms: float
    direct_loss: float
    oracle_rtt_ms: float
    oracle_relay: str | None
    bandwidth_kbps: float


@dataclass(frozen=True, slots=True)
class ServiceResult:
    """Everything one strategy's service run produced.

    The deterministic part (records, counters) is a pure function of
    (plan, seed, strategy); ``wall_s`` is reporting-only timing and never
    feeds any table or hash.
    """

    strategy: str
    seed: int
    horizon_s: float
    hosts: tuple[str, ...]
    pairs: tuple[Pair, ...]
    records: tuple[RequestRecord, ...]
    pairs_down_at_end: tuple[Pair, ...]
    probes_sent: int
    probes_lost: int
    transfers: int
    path_down_events: int
    path_up_events: int
    wall_s: float

    @property
    def queries_per_second(self) -> float:
        """Served requests per wall-clock second (reporting only)."""
        if self.wall_s <= 0.0:
            return 0.0
        return len(self.records) / self.wall_s


class DetourService:
    """One simulated deployment: environment, candidates, event schedule.

    Construction stands up the deterministic 1999-era environment
    (topology, hosts, timeline, conditions — in that order, as scenario
    ``new-transit`` events must materialize links before netsim sizes
    its arrays), discovers each served pair's detour candidates on the
    pristine topology, and fixes the request schedule.  :meth:`run`
    executes the event loop for one strategy; running several strategies
    on the same service replays the identical environment and schedule,
    which is what makes the evaluator's comparison fair.
    """

    def __init__(
        self,
        plan: ScenarioPlan | None = None,
        *,
        seed: int = 1999,
        n_hosts: int = 12,
        n_pairs: int = 6,
        duration_s: float = 4 * BUCKET_SECONDS,
        probe_interval_s: float = BUCKET_SECONDS,
        relays_per_pair: int = 2,
        mean_request_interval_s: float = 60.0,
        reconverge: str = "affected",
        scale: str | None = None,
    ) -> None:
        """
        Args:
            plan: Scenario replayed *through* the service (None or an
                empty plan = calm network).
            seed: Master seed; every stream below derives from it.
            n_hosts: Measurement host pool size.
            scale: Topology scale preset name (see
                :data:`repro.topology.scale.SCALE_PRESETS`); None keeps
                the default 1999-era paper topology.
            n_pairs: Number of (src, dst) client pairs to serve.
            duration_s: Minimum simulated horizon; extended to cover the
                scenario's last transition plus one trailing bucket.
            probe_interval_s: Seconds between active probe rounds.
            relays_per_pair: Detour relays discovered per pair (the
                candidate list is this plus the default path).
            mean_request_interval_s: Poisson mean between one pair's
                requests.
            reconverge: Timeline reconvergence mode (``"affected"`` or
                ``"full"``).

        Raises:
            ServiceError: for non-positive durations/intervals or a pair
                count the host pool cannot supply.
        """
        if duration_s <= 0.0:
            raise ServiceError(f"duration_s must be positive, got {duration_s}")
        if probe_interval_s <= 0.0:
            raise ServiceError(
                f"probe_interval_s must be positive, got {probe_interval_s}"
            )
        if relays_per_pair < 1:
            raise ServiceError(
                f"relays_per_pair must be >= 1, got {relays_per_pair}"
            )
        if mean_request_interval_s <= 0.0:
            raise ServiceError(
                f"mean_request_interval_s must be positive, "
                f"got {mean_request_interval_s}"
            )
        self.plan = plan if plan is not None else ScenarioPlan.parse("")
        self.seed = seed
        if scale is None:
            topo_cfg = TopologyConfig.for_era("1999", seed=seed)
            self.topo = generate_topology(topo_cfg)
            capacity_scale = topo_cfg.capacity_scale
        else:
            self.topo, capacity_scale = build_topology(scale, seed=seed)
        placed = place_hosts(
            self.topo,
            n_hosts,
            seed=seed + 7,
            north_america_only=scale is None or scale.startswith("paper-"),
            rate_limit_fraction=0.0,
            name_prefix="serve",
            capacity_scale=capacity_scale,
        )
        self.hosts = [h.name for h in placed]
        self.timeline = ScenarioTimeline(self.topo, self.plan, reconverge=reconverge)
        self.conditions = NetworkConditions(self.topo, seed=seed + 13)
        self.horizon_s = max(
            duration_s, self.timeline.last_transition_s + BUCKET_SECONDS
        )
        self.probe_interval_s = probe_interval_s
        self._mean_request_interval_s = mean_request_interval_s
        self._baseline = self._baseline_paths()
        self.pairs = self._choose_pairs(n_pairs)
        self.candidates = self._discover_candidates(relays_per_pair)
        self._requests = self._request_schedule()

    # -- construction helpers ------------------------------------------------

    def _baseline_paths(self) -> dict[Pair, RoundTripPath]:
        """Default round trips on the pristine topology, all ordered pairs."""
        resolver = PathResolver(self.topo)
        resolver.bgp.converge_all(
            sorted({self.topo.host(name).asn for name in self.hosts})
        )
        out: dict[Pair, RoundTripPath] = {}
        for a in self.hosts:
            for b in self.hosts:
                if a == b:
                    continue
                try:
                    out[(a, b)] = resolver.resolve_round_trip(a, b)
                except ForwardingError:
                    continue  # pristine disconnection: not a candidate leg
        return out

    def _choose_pairs(self, n_pairs: int) -> tuple[Pair, ...]:
        """A deterministic sample of resolvable ordered pairs to serve."""
        eligible = sorted(self._baseline)
        if n_pairs < 1 or n_pairs > len(eligible):
            raise ServiceError(
                f"n_pairs must be in [1, {len(eligible)}], got {n_pairs}"
            )
        rng = np.random.default_rng((self.seed, 0x9A185))
        chosen = rng.permutation(len(eligible))[:n_pairs]
        return tuple(eligible[i] for i in sorted(int(j) for j in chosen))

    def _discover_candidates(
        self, relays_per_pair: int
    ) -> dict[Pair, tuple[CandidatePath, ...]]:
        """Default path + one-hop detour relays per served pair.

        Candidates come from the paper's alternate-path machinery run on
        the pristine propagation-delay graph: the single best alternate
        from :class:`~repro.core.altpath.AlternatePathFinder` (when it is
        one-hop), topped up with the best remaining relays by composed
        two-leg weight.
        """
        graph = MetricGraph(Metric.RTT, self.hosts)
        for pair, rt in sorted(self._baseline.items()):
            graph.add_edge(
                pair,
                EdgeData(
                    value=rt.rtt_prop_ms,
                    stats=SampleStats.from_samples([rt.rtt_prop_ms]),
                ),
            )
        finder = AlternatePathFinder(graph)
        alts = finder.best_all(pairs=list(self.pairs))
        weights = graph.weight_matrix()
        out: dict[Pair, tuple[CandidatePath, ...]] = {}
        for pair in self.pairs:
            src, dst = pair
            i, j = graph.host_index(src), graph.host_index(dst)
            relays: list[str] = []
            alt = alts.get(pair)
            if alt is not None and len(alt.via) == 1:
                relays.append(alt.via[0])
            ranked = sorted(
                (
                    (float(weights[i, k] + weights[k, j]), host)
                    for k, host in enumerate(graph.hosts)
                    if k not in (i, j)
                    and math.isfinite(weights[i, k])
                    and math.isfinite(weights[k, j])
                ),
            )
            for _, host in ranked:
                if len(relays) >= relays_per_pair:
                    break
                if host not in relays:
                    relays.append(host)
            out[pair] = tuple(
                [CandidatePath(pair=pair, relay=None)]
                + [CandidatePath(pair=pair, relay=r) for r in relays]
            )
        return out

    def _request_schedule(self) -> list[tuple[float, int, Pair]]:
        """Poisson request arrivals per pair, merged and time-sorted."""
        events: list[tuple[float, int, Pair]] = []
        for idx, pair in enumerate(self.pairs):
            rng = np.random.default_rng((self.seed, 0x4E11ED, idx))
            t = float(rng.exponential(self._mean_request_interval_s))
            while t < self.horizon_s:
                events.append((t, idx, pair))
                t += float(rng.exponential(self._mean_request_interval_s))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    # -- the event loop ------------------------------------------------------

    def run(self, strategy: str | PathSelectionAlgorithm) -> ServiceResult:
        """Simulate the service under one strategy; deterministic.

        Args:
            strategy: A registered strategy name or a ready instance.

        Raises:
            StrategyError: for an unknown strategy name.
        """
        if isinstance(strategy, str):
            strategy = create_strategy(strategy, seed=self.seed)
        with obs.span("service.run") as sp:
            sp.set("strategy", strategy.name)
            sp.set("seed", self.seed)
            sp.set("pairs", len(self.pairs))
            result = self._run(strategy)
            sp.set("requests", len(result.records))
        return result

    def _run(self, strategy: PathSelectionAlgorithm) -> ServiceResult:
        wall_start = clock.now()
        store = PathStore(self.hosts, self.candidates)
        probe_rng = np.random.default_rng((self.seed, 0x980BE5))
        transfer_rng = np.random.default_rng((self.seed, 0x7C4A5F))
        legs = store.legs()
        leg_index = {leg: i for i, leg in enumerate(legs)}
        run = _RunState(
            service=self,
            store=store,
            strategy=strategy,
            legs=legs,
            leg_index=leg_index,
            probe_rng=probe_rng,
            transfer_rng=transfer_rng,
        )
        events = self._event_schedule()
        try:
            run.enter_segment(0.0)
            for t, prio, _seq, payload in events:
                if prio == _PRIO_TOPOLOGY:
                    run.enter_segment(t)
                elif prio == _PRIO_PROBE:
                    run.probe_round(t)
                else:
                    assert payload is not None
                    run.serve_request(t, payload)
        finally:
            self.timeline.reset()
        wall_s = clock.now() - wall_start
        down = sum(1 for tr in store.transitions if not tr.up)
        up = len(store.transitions) - down
        dead = tuple(
            pair
            for pair in store.pairs
            if not any(v.up for v in store.snapshot(pair))
        )
        return ServiceResult(
            strategy=strategy.name,
            seed=self.seed,
            horizon_s=self.horizon_s,
            hosts=tuple(self.hosts),
            pairs=self.pairs,
            records=tuple(run.records),
            pairs_down_at_end=dead,
            probes_sent=run.probes_sent,
            probes_lost=run.probes_lost,
            transfers=run.transfers,
            path_down_events=down,
            path_up_events=up,
            wall_s=wall_s,
        )

    def _event_schedule(
        self,
    ) -> list[tuple[float, int, int, Pair | None]]:
        """All events, time-ordered (topology < probe < request at ties)."""
        events: list[tuple[float, int, int, Pair | None]] = []
        for i, b in enumerate(sorted(self.timeline.boundaries())):
            if 0.0 < b < self.horizon_s:
                events.append((b, _PRIO_TOPOLOGY, i, None))
        t = 0.0
        k = 0
        while t < self.horizon_s:
            events.append((t, _PRIO_PROBE, k, None))
            k += 1
            t = k * self.probe_interval_s
        for j, (t, _idx, pair) in enumerate(self._requests):
            events.append((t, _PRIO_REQUEST, j, pair))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return events


class _RunState:
    """Mutable per-run state: current segment's resolved legs and sampler."""

    def __init__(
        self,
        *,
        service: DetourService,
        store: PathStore,
        strategy: PathSelectionAlgorithm,
        legs: list[Pair],
        leg_index: dict[Pair, int],
        probe_rng: np.random.Generator,
        transfer_rng: np.random.Generator,
    ) -> None:
        self.service = service
        self.store = store
        self.strategy = strategy
        self.legs = legs
        self.leg_index = leg_index
        self.probe_rng = probe_rng
        self.transfer_rng = transfer_rng
        self.records: list[RequestRecord] = []
        self.probes_sent = 0
        self.probes_lost = 0
        self.transfers = 0
        # Per-segment state, filled by enter_segment.
        self.resolved: dict[Pair, RoundTripPath] = {}
        self.sampler: PathSampler | None = None
        self.sampler_index: dict[Pair, int] = {}
        self.tcp: TCPTransferSimulator | None = None
        self.tcp_index: dict[tuple[Pair, str | None], int] = {}
        self.last_bw: dict[tuple[Pair, str | None], float] = {}
        self._prev_resolved: set[Pair] | None = None

    # -- topology transitions ------------------------------------------------

    def enter_segment(self, t: float) -> None:
        """Re-resolve every leg at a topology boundary and fail over."""
        svc = self.service
        with obs.span("service.segment") as sp:
            sp.set("t", t)
            svc.timeline.advance_to(t)
            resolver = PathResolver(svc.topo)
            resolver.bgp.converge_all(
                sorted({svc.topo.host(name).asn for name in svc.hosts})
            )
            resolved: dict[Pair, RoundTripPath] = {}
            for leg in self.legs:
                try:
                    resolved[leg] = resolver.resolve_round_trip(*leg)
                except ForwardingError:
                    continue
            sp.set("legs_up", len(resolved))
        if self._prev_resolved is not None:
            for leg in self.legs:
                if leg in resolved and leg not in self._prev_resolved:
                    # The leg healed: estimates taken on the pre-outage
                    # path must not steer selection on the new one.
                    self.store.reset_leg(leg)
        self._prev_resolved = set(resolved)
        self.resolved = resolved
        ordered = [leg for leg in self.legs if leg in resolved]
        self.sampler = PathSampler(
            svc.conditions, [resolved[leg] for leg in ordered]
        )
        self.sampler_index = {leg: i for i, leg in enumerate(ordered)}
        self._update_health(t)
        self._rebuild_tcp()

    def _update_health(self, t: float) -> None:
        """Drive mark_path_down / mark_path_up from the resolved legs."""
        for pair in self.store.pairs:
            for cand in self.store.candidates(pair):
                if all(leg in self.resolved for leg in cand.legs):
                    hops = sum(
                        self.resolved[leg].forward.hop_count for leg in cand.legs
                    )
                    prop = sum(
                        self.resolved[leg].rtt_prop_ms for leg in cand.legs
                    )
                    self.store.set_path_facts(
                        pair, cand.relay, hop_count=hops, prop_rtt_ms=prop
                    )
                    if self.store.mark_path_up(pair, cand.relay, t=t):
                        obs.count("service.path_up")
                else:
                    if self.store.mark_path_down(pair, cand.relay, t=t):
                        obs.count("service.path_down")

    def _rebuild_tcp(self) -> None:
        """Composite-path transfer simulator over resolvable candidates."""
        paths: list[_CompositePath] = []
        index: dict[tuple[Pair, str | None], int] = {}
        for pair in self.store.pairs:
            for cand in self.store.candidates(pair):
                if not all(leg in self.resolved for leg in cand.legs):
                    continue
                link_ids: tuple[int, ...] = ()
                prop = 0.0
                for leg in cand.legs:
                    rt = self.resolved[leg]
                    link_ids = link_ids + rt.link_ids
                    prop += rt.rtt_prop_ms
                index[(pair, cand.relay)] = len(paths)
                paths.append(
                    _CompositePath(link_ids=link_ids, rtt_prop_ms=prop)
                )
        self.tcp = TCPTransferSimulator(self.service.topo, paths) if paths else None
        self.tcp_index = index

    # -- probing -------------------------------------------------------------

    def probe_round(self, t: float) -> None:
        """One active-probing round: batched leg probes plus transfers."""
        assert self.sampler is not None
        ordered = [leg for leg in self.legs if leg in self.sampler_index]
        if not ordered:
            return
        with obs.span("service.probe_round") as sp:
            sp.set("t", t)
            sp.set("legs", len(ordered))
            ts = np.array(
                [t + i * PROBE_STAGGER_S for i in range(len(ordered))]
            )
            indices = np.array(
                [self.sampler_index[leg] for leg in ordered], dtype=np.int64
            )
            rtts = self.sampler.probe_batch(ts, self.probe_rng, indices)
            for leg, rtt in zip(ordered, rtts):
                self.store.record_leg_probe(leg, float(rtt))
            self.probes_sent += len(ordered)
            lost = int(np.count_nonzero(np.isnan(rtts)))
            self.probes_lost += lost
            obs.count("service.probes", len(ordered))
            if lost:
                obs.count("service.probes_lost", lost)
            self._transfer_round(t)

    def _transfer_round(self, t: float) -> None:
        """Measure one TCP transfer per resolvable candidate, batched."""
        if self.tcp is None or not self.tcp_index:
            return
        assert self.sampler is not None
        view = self.sampler.bucket_view(t)
        keys = sorted(
            self.tcp_index, key=lambda k: (k[0], k[1] is not None, k[1] or "")
        )
        prop = np.empty(len(keys))
        qsum = np.empty(len(keys))
        ploss = np.empty(len(keys))
        indices = np.empty(len(keys), dtype=np.int64)
        for row, (pair, relay) in enumerate(keys):
            legs = ((pair,) if relay is None
                    else ((pair[0], relay), (relay, pair[1])))
            li = [self.sampler_index[leg] for leg in legs]
            prop[row] = float(np.sum(view.prop[li]))
            qsum[row] = float(np.sum(view.qsum[li]))
            ploss[row] = 1.0 - float(np.prod(1.0 - view.ploss[li]))
            indices[row] = self.tcp_index[(pair, relay)]
        _rtt, _loss, bw = self.tcp.measure_block(
            prop, qsum, ploss, indices, self.transfer_rng
        )
        for row, key in enumerate(keys):
            self.last_bw[key] = float(bw[row])
        self.transfers += len(keys)
        obs.count("service.transfers", len(keys))

    # -- requests ------------------------------------------------------------

    def _expected(
        self, pair: Pair, relay: str | None, t: float
    ) -> tuple[float, float] | None:
        """Expected (rtt, loss) of one candidate now, or None if down."""
        assert self.sampler is not None
        legs = ((pair,) if relay is None
                else ((pair[0], relay), (relay, pair[1])))
        if any(leg not in self.sampler_index for leg in legs):
            return None
        view = self.sampler.bucket_view(t)
        li = [self.sampler_index[leg] for leg in legs]
        rtt = float(np.sum(view.prop[li]) + np.sum(view.qsum[li]))
        loss = 1.0 - float(np.prod(1.0 - view.ploss[li]))
        return rtt, loss

    def serve_request(self, t: float, pair: Pair) -> None:
        """Serve one client request: strategy choice, realized quality."""
        usable = self.store.usable(pair)
        choice = self.strategy.select(pair, usable)
        obs.count("service.requests")
        if choice.relay is not None:
            obs.count("service.deflections")
        realized = self._expected(pair, choice.relay, t)
        direct = self._expected(pair, None, t)
        oracle_rtt = math.nan
        oracle_relay: str | None = None
        for cand in self.store.candidates(pair):
            got = self._expected(pair, cand.relay, t)
            if got is None:
                continue
            if math.isnan(oracle_rtt) or got[0] < oracle_rtt:
                oracle_rtt, oracle_relay = got[0], cand.relay
        failed = realized is None
        if failed:
            obs.count("service.requests_failed")
        self.records.append(
            RequestRecord(
                t=t,
                pair=pair,
                relay=choice.relay,
                failed=failed,
                rtt_ms=math.nan if realized is None else realized[0],
                loss=1.0 if realized is None else realized[1],
                direct_rtt_ms=math.nan if direct is None else direct[0],
                direct_loss=1.0 if direct is None else direct[1],
                oracle_rtt_ms=oracle_rtt,
                oracle_relay=oracle_relay,
                bandwidth_kbps=self.last_bw.get(
                    (pair, choice.relay), math.nan
                ),
            )
        )

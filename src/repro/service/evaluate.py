"""Score path-selection strategies against the paper's oracle alternates.

The evaluator replays the *same* :class:`~repro.service.detour.DetourService`
environment — identical topology, scenario timeline, probe draws, and
request schedule — once per strategy, then condenses each run into a
:class:`StrategyScore` and renders the paper-style comparison table: how
much of the oracle detour gain (the offline best alternate the paper
computes post hoc) each online strategy actually recovered.

The table is a pure function of (plan, seed, strategies): CI replays it
byte-identically across runs and ``--routing-jobs`` settings.  Wall-clock
throughput (queries/sec) is reported separately and never enters the
table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs import runtime as obs
from repro.service.detour import DetourService, ServiceResult
from repro.service.strategy import strategy_names


@dataclass(frozen=True, slots=True)
class StrategyScore:
    """One strategy's condensed performance over a service run.

    Attributes:
        strategy: Strategy name.
        requests: Requests served.
        failed: Requests served while every candidate was down.
        deflection_rate: Fraction of requests routed via a detour relay.
        mean_rtt_ms: Mean expected RTT of the chosen paths.
        mean_direct_rtt_ms: Mean expected RTT of the default BGP paths
            (over the same requests).
        mean_oracle_rtt_ms: Mean expected RTT of the oracle choice.
        gain_capture: Realized RTT improvement over the default path as
            a fraction of the oracle's improvement, over requests where
            the oracle beats the default (NaN when it never does).
        mean_loss: Mean expected loss probability of the chosen paths.
        mean_direct_loss: Mean expected loss of the default paths.
        mean_bandwidth_kbps: Mean last-measured transfer bandwidth of
            the chosen candidates (NaN before any transfer completed).
        queries_per_second: Wall-clock service throughput — reporting
            only, excluded from the deterministic table.
    """

    strategy: str
    requests: int
    failed: int
    deflection_rate: float
    mean_rtt_ms: float
    mean_direct_rtt_ms: float
    mean_oracle_rtt_ms: float
    gain_capture: float
    mean_loss: float
    mean_direct_loss: float
    mean_bandwidth_kbps: float
    queries_per_second: float


def score_result(result: ServiceResult) -> StrategyScore:
    """Condense one service run into a :class:`StrategyScore`."""
    records = result.records
    n = len(records)
    served = [r for r in records if not r.failed]
    comparable = [
        r
        for r in served
        if not math.isnan(r.direct_rtt_ms) and not math.isnan(r.oracle_rtt_ms)
    ]
    oracle_gain = sum(
        r.direct_rtt_ms - r.oracle_rtt_ms
        for r in comparable
        if r.oracle_rtt_ms < r.direct_rtt_ms
    )
    realized_gain = sum(
        r.direct_rtt_ms - r.rtt_ms
        for r in comparable
        if r.oracle_rtt_ms < r.direct_rtt_ms
    )
    measured_bw = [
        r.bandwidth_kbps for r in served if not math.isnan(r.bandwidth_kbps)
    ]
    return StrategyScore(
        strategy=result.strategy,
        requests=n,
        failed=sum(1 for r in records if r.failed),
        deflection_rate=(
            sum(1 for r in records if r.relay is not None) / n if n else 0.0
        ),
        mean_rtt_ms=_mean([r.rtt_ms for r in served]),
        mean_direct_rtt_ms=_mean(
            [r.direct_rtt_ms for r in served if not math.isnan(r.direct_rtt_ms)]
        ),
        mean_oracle_rtt_ms=_mean(
            [r.oracle_rtt_ms for r in served if not math.isnan(r.oracle_rtt_ms)]
        ),
        gain_capture=(
            realized_gain / oracle_gain if oracle_gain > 0.0 else math.nan
        ),
        mean_loss=_mean([r.loss for r in served]),
        mean_direct_loss=_mean(
            [r.direct_loss for r in served if not math.isnan(r.direct_rtt_ms)]
        ),
        mean_bandwidth_kbps=_mean(measured_bw),
        queries_per_second=result.queries_per_second,
    )


def _mean(values: list[float]) -> float:
    if not values:
        return math.nan
    return sum(values) / len(values)


@dataclass(frozen=True, slots=True)
class EvaluationReport:
    """Strategy-vs-oracle comparison over one shared environment."""

    seed: int
    n_pairs: int
    horizon_s: float
    plan_spec: str
    scores: tuple[StrategyScore, ...]
    #: Pairs whose every candidate was still down when the horizon ended
    #: (environment-determined: identical across strategies).
    pairs_down_at_end: tuple[tuple[str, str], ...] = ()

    def render(self) -> str:
        """The deterministic comparison table (no wall-clock content)."""
        lines = [
            "Strategy-vs-oracle comparison",
            f"  seed: {self.seed}   pairs: {self.n_pairs}   "
            f"horizon: {self.horizon_s:g} s   "
            f"plan: {self.plan_spec or '(none)'}",
            "",
            "  strategy          reqs  fail  defl%   rtt ms   direct   oracle"
            "  capture%   loss%  dloss%     kB/s",
        ]
        for s in self.scores:
            lines.append(
                f"  {s.strategy:<16}"
                f"  {s.requests:4d}"
                f"  {s.failed:4d}"
                f"  {100.0 * s.deflection_rate:5.1f}"
                f"  {_fmt(s.mean_rtt_ms, 7, 1)}"
                f"  {_fmt(s.mean_direct_rtt_ms, 7, 1)}"
                f"  {_fmt(s.mean_oracle_rtt_ms, 7, 1)}"
                f"  {_fmt(100.0 * s.gain_capture, 8, 1)}"
                f"  {_fmt(100.0 * s.mean_loss, 6, 2)}"
                f"  {_fmt(100.0 * s.mean_direct_loss, 6, 2)}"
                f"  {_fmt(s.mean_bandwidth_kbps, 7, 1)}"
            )
        return "\n".join(lines)

    def timing_lines(self) -> list[str]:
        """Wall-clock throughput per strategy (reporting only)."""
        return [
            f"  {s.strategy:<16}  {s.queries_per_second:8.0f} queries/s"
            for s in self.scores
        ]


def _fmt(value: float, width: int, prec: int) -> str:
    if math.isnan(value):
        return "—".rjust(width)
    return f"{value:{width}.{prec}f}"


def evaluate_strategies(
    service: DetourService,
    strategies: tuple[str, ...] | list[str] | None = None,
) -> EvaluationReport:
    """Run every requested strategy over the shared service environment.

    Args:
        service: The environment + schedule to replay per strategy.
        strategies: Strategy names to score (default: all registered),
            evaluated in the given order.

    Raises:
        StrategyError: for an unknown strategy name.
    """
    names = list(strategies) if strategies is not None else list(strategy_names())
    scores: list[StrategyScore] = []
    dead: tuple[tuple[str, str], ...] = ()
    with obs.span("service.evaluate") as sp:
        sp.set("strategies", len(names))
        for name in names:
            result = service.run(name)
            dead = result.pairs_down_at_end
            scores.append(score_result(result))
    return EvaluationReport(
        seed=service.seed,
        n_pairs=len(service.pairs),
        horizon_s=service.horizon_s,
        plan_spec=service.plan.to_spec(),
        scores=tuple(scores),
        pairs_down_at_end=dead,
    )

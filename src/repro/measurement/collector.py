"""Campaign collector: executes measurement requests against the simulator.

The collector plays the role of the paper's centralized control host: it
takes a stream of scheduled :class:`~repro.measurement.schedulers.Request`
objects, drives probes through the network simulation, applies the
destination hosts' ICMP rate limiting, and occasionally fails to contact a
server (paper §4.2: "the control host was occasionally unable to contact
the server it selected").  Its outputs are raw records ready to be wrapped
into a :class:`~repro.datasets.dataset.Dataset`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.datasets.records import (
    CollectionStats,
    PROBES_PER_TRACEROUTE,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)
from repro.measurement.ratelimit import TokenBucket
from repro.measurement.schedulers import Request
from repro.measurement.tcp import TCPTransferSimulator
from repro.measurement.traceroute import INTER_PROBE_GAP_S
from repro.netsim.conditions import BUCKET_SECONDS, NetworkConditions, PathSampler
from repro.routing.dynamics import DynamicPathSampler, RouteFlapModel
from repro.routing.forwarding import PathResolver
from repro.topology.network import Topology


class CampaignError(RuntimeError):
    """Raised on collector misconfiguration."""


class Campaign:
    """Executes measurement campaigns between a fixed pool of hosts.

    Paths are resolved once up front (Internet paths are "generally
    dominated by a single route", Paxson 1996) and congestion state is
    taken per time bucket, so execution cost is a few scalar draws per
    probe.
    """

    def __init__(
        self,
        topo: Topology,
        conditions: NetworkConditions,
        host_names: list[str],
        *,
        resolver: PathResolver | None = None,
        seed: int = 0,
        control_failure_prob: float = 0.01,
        pair_blackout_prob: float = 0.0,
        flap_model: "RouteFlapModel | None" = None,
    ) -> None:
        """
        Args:
            topo: Topology with the campaign hosts already placed.
            conditions: Dynamic network state shared by all probes.
            host_names: The measurement host pool.
            resolver: Path resolver; a default policy resolver if None.
            seed: Seed for all collection randomness.
            control_failure_prob: Per-request probability that the control
                host fails to contact the server (transient failures).
            pair_blackout_prob: Per-ordered-pair probability that the pair
                is never successfully measured (persistently unreachable
                servers; this is what keeps Table 1's "percent of paths
                covered" below 100 for most datasets).
            flap_model: Optional route-flap process; when given, probes
                follow whichever of each pair's primary/secondary route
                is active at probe time.
        """
        if len(host_names) < 2:
            raise CampaignError("a campaign needs at least two hosts")
        if not 0.0 <= control_failure_prob < 1.0:
            raise CampaignError("control_failure_prob must be in [0, 1)")
        if not 0.0 <= pair_blackout_prob < 1.0:
            raise CampaignError("pair_blackout_prob must be in [0, 1)")
        self._topo = topo
        self._resolver = resolver or PathResolver(topo)
        self._hosts = list(host_names)
        self._rng = np.random.default_rng((seed, 0xC0117EC7))
        self._control_failure_prob = control_failure_prob
        pairs = [
            (a, b) for a in self._hosts for b in self._hosts if a != b
        ]
        self._pair_index = {pair: i for i, pair in enumerate(pairs)}
        blackout_rng = np.random.default_rng((seed, 0xB1ACC))
        self._blocked = {
            i for i in range(len(pairs))
            if blackout_rng.random() < pair_blackout_prob
        }
        # Converge every destination AS up front in one batch (honors
        # REPRO_ROUTING_JOBS) so per-pair resolution below hits warm
        # routing state instead of converging destinations one at a time.
        dest_asns = sorted({topo.host(name).asn for name in self._hosts})
        self._resolver.bgp.converge_all(dest_asns)
        self._round_trips = [
            self._resolver.resolve_round_trip(a, b) for a, b in pairs
        ]
        if flap_model is None:
            self._sampler = PathSampler(conditions, self._round_trips)
        else:
            secondaries = [
                self._resolver.resolve_round_trip_secondary(a, b)
                for a, b in pairs
            ]
            self._sampler = DynamicPathSampler(
                conditions, self._round_trips, secondaries, flap_model
            )
        self._tcp = TCPTransferSimulator(topo, self._round_trips)

    @property
    def hosts(self) -> list[str]:
        """The campaign's host pool."""
        return list(self._hosts)

    def path_info(self) -> dict[tuple[str, str], PathInfo]:
        """Static routing facts for every ordered pair in the pool."""
        out: dict[tuple[str, str], PathInfo] = {}
        for pair, idx in self._pair_index.items():
            rt = self._round_trips[idx]
            out[pair] = PathInfo(
                src=pair[0],
                dst=pair[1],
                as_path=rt.forward.as_path,
                hop_count=rt.forward.hop_count,
                prop_delay_ms=rt.rtt_prop_ms,
            )
        return out

    # -- execution -----------------------------------------------------------

    def _iter_with_views(self, requests: Iterable[Request]):
        """Yield (request, view) with per-bucket congestion state reuse."""
        ordered = sorted(requests, key=lambda r: r.t)
        current_bucket = None
        view = None
        for req in ordered:
            bucket = int(req.t // BUCKET_SECONDS)
            if bucket != current_bucket:
                current_bucket = bucket
                view = self._sampler.view((bucket + 0.5) * BUCKET_SECONDS)
            yield req, view

    def run_traceroutes(
        self, requests: Iterable[Request]
    ) -> tuple[list[TracerouteRecord], CollectionStats]:
        """Execute traceroute requests; returns records and statistics.

        Each request sends :data:`PROBES_PER_TRACEROUTE` probes one second
        apart.  Destination ICMP rate limiting is applied with per-host
        token buckets; a suppressed response is recorded as NaN exactly
        like a genuine loss — downstream tooling cannot tell them apart.
        """
        stats = CollectionStats()
        buckets = {
            h.name: TokenBucket(rate_per_min=h.icmp_rate_limit_per_min)
            for h in self._topo.hosts
            if h.name in self._pair_index_hosts()
        }
        records: list[TracerouteRecord] = []
        rng = self._rng
        for req, view in self._iter_with_views(requests):
            stats.requested += 1
            if rng.random() < self._control_failure_prob:
                stats.control_failures += 1
                continue
            idx = self._pair_index.get((req.src, req.dst))
            if idx is None:
                raise CampaignError(f"request for unknown pair {req.src}->{req.dst}")
            if idx in self._blocked:
                stats.control_failures += 1
                continue
            limiter = buckets.get(req.dst)
            samples: list[float] = []
            for k in range(PROBES_PER_TRACEROUTE):
                probe_t = req.t + k * INTER_PROBE_GAP_S
                rtt = view.probe_pair(idx, rng)
                if not np.isnan(rtt) and limiter is not None:
                    if not limiter.allow(probe_t):
                        stats.rate_limited_probes += 1
                        rtt = float("nan")
                samples.append(rtt)
            records.append(
                TracerouteRecord(
                    t=req.t,
                    src=req.src,
                    dst=req.dst,
                    rtt_samples=tuple(samples),
                    episode=req.episode,
                )
            )
            stats.completed += 1
        return records, stats

    def run_transfers(
        self, requests: Iterable[Request]
    ) -> tuple[list[TransferRecord], CollectionStats]:
        """Execute npd-style TCP transfer requests."""
        stats = CollectionStats()
        records: list[TransferRecord] = []
        rng = self._rng
        for req, view in self._iter_with_views(requests):
            stats.requested += 1
            if rng.random() < self._control_failure_prob:
                stats.control_failures += 1
                continue
            idx = self._pair_index.get((req.src, req.dst))
            if idx is None:
                raise CampaignError(f"request for unknown pair {req.src}->{req.dst}")
            if idx in self._blocked:
                stats.control_failures += 1
                continue
            result = self._tcp.measure(view, idx, rng)
            records.append(
                TransferRecord(
                    t=req.t,
                    src=req.src,
                    dst=req.dst,
                    rtt_ms=result.rtt_ms,
                    loss_rate=result.loss_rate,
                    bandwidth_kbps=result.bandwidth_kbps,
                )
            )
            stats.completed += 1
        return records, stats

    def _pair_index_hosts(self) -> set[str]:
        return set(self._hosts)

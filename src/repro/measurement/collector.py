"""Campaign collector: executes measurement requests against the simulator.

The collector plays the role of the paper's centralized control host: it
takes a stream of scheduled :class:`~repro.measurement.schedulers.Request`
objects, drives probes through the network simulation, applies the
destination hosts' ICMP rate limiting, and occasionally fails to contact a
server (paper §4.2: "the control host was occasionally unable to contact
the server it selected").  Its outputs are raw records ready to be wrapped
into a :class:`~repro.datasets.dataset.Dataset`.

Execution is batched: a whole campaign's randomness follows a fixed
draw-count protocol (one control-failure uniform per request, then a
fixed block of uniforms per executed request), so the vectorized
``run_traceroutes``/``run_transfers`` consume the identical generator
stream as the retained scalar reference implementations
(``run_traceroutes_scalar``/``run_transfers_scalar``) and produce
byte-identical records — see tests/measurement/test_batched_equivalence.py.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.measurement.ratelimit import TokenBucket
from repro.measurement.records import (
    CollectionStats,
    PROBES_PER_TRACEROUTE,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)
from repro.measurement.schedulers import Request
from repro.measurement.tcp import TCPTransferSimulator
from repro.measurement.traceroute import INTER_PROBE_GAP_S
from repro.netsim.conditions import NetworkConditions, PathSampler
from repro.netsim.dynamics import DynamicPathSampler
from repro.routing.dynamics import RouteFlapModel
from repro.routing.forwarding import ForwardingError, ForwardPath, PathResolver, RoundTripPath
from repro.topology.network import Topology


class CampaignError(RuntimeError):
    """Raised on collector misconfiguration."""


class Campaign:
    """Executes measurement campaigns between a fixed pool of hosts.

    Paths are resolved once up front (Internet paths are "generally
    dominated by a single route", Paxson 1996) and congestion state is
    taken per time bucket, so execution cost is a few vectorized draws
    per probe.
    """

    def __init__(
        self,
        topo: Topology,
        conditions: NetworkConditions,
        host_names: list[str],
        *,
        resolver: PathResolver | None = None,
        seed: int = 0,
        control_failure_prob: float = 0.01,
        pair_blackout_prob: float = 0.0,
        flap_model: "RouteFlapModel | None" = None,
        allow_unreachable: bool = False,
    ) -> None:
        """
        Args:
            topo: Topology with the campaign hosts already placed.
            conditions: Dynamic network state shared by all probes.
            host_names: The measurement host pool.
            resolver: Path resolver; a default policy resolver if None.
            seed: Seed for all collection randomness.
            control_failure_prob: Per-request probability that the control
                host fails to contact the server (transient failures).
            pair_blackout_prob: Per-ordered-pair probability that the pair
                is never successfully measured (persistently unreachable
                servers; this is what keeps Table 1's "percent of paths
                covered" below 100 for most datasets).
            flap_model: Optional route-flap process; when given, probes
                follow whichever of each pair's primary/secondary route
                is active at probe time.
            allow_unreachable: Tolerate pairs with no policy-compliant
                route instead of raising.  A scenario outage
                (:mod:`repro.scenario`) can legitimately partition the
                AS graph; requests toward such pairs record fully-lost
                traceroutes (or failed transfers) and are tallied in
                :attr:`CollectionStats.unreachable`.
        """
        if len(host_names) < 2:
            raise CampaignError("a campaign needs at least two hosts")
        if not 0.0 <= control_failure_prob < 1.0:
            raise CampaignError("control_failure_prob must be in [0, 1)")
        if not 0.0 <= pair_blackout_prob < 1.0:
            raise CampaignError("pair_blackout_prob must be in [0, 1)")
        self._topo = topo
        self._resolver = resolver or PathResolver(topo)
        self._hosts = list(host_names)
        self._rng = np.random.default_rng((seed, 0xC0117EC7))
        self._control_failure_prob = control_failure_prob
        pairs = [
            (a, b) for a in self._hosts for b in self._hosts if a != b
        ]
        self._pair_index = {pair: i for i, pair in enumerate(pairs)}
        blackout_rng = np.random.default_rng((seed, 0xB1ACC))
        self._blocked = {
            i for i in range(len(pairs))
            if blackout_rng.random() < pair_blackout_prob
        }
        # Converge every destination AS up front in one batch (honors
        # REPRO_ROUTING_JOBS) so per-pair resolution below hits warm
        # routing state instead of converging destinations one at a time.
        dest_asns = sorted({topo.host(name).asn for name in self._hosts})
        self._resolver.bgp.converge_all(dest_asns)
        self._unreachable: set[int] = set()
        round_trips: list[RoundTripPath] = []
        for i, (a, b) in enumerate(pairs):
            try:
                round_trips.append(self._resolver.resolve_round_trip(a, b))
            except ForwardingError:
                if not allow_unreachable:
                    raise
                self._unreachable.add(i)
                round_trips.append(self._placeholder_round_trip(a, b))
        self._round_trips = round_trips
        if flap_model is None:
            self._sampler = PathSampler(conditions, self._round_trips)
        else:
            secondaries = [
                self._round_trips[i]
                if i in self._unreachable
                else self._resolver.resolve_round_trip_secondary(a, b)
                for i, (a, b) in enumerate(pairs)
            ]
            self._sampler = DynamicPathSampler(
                conditions, self._round_trips, secondaries, flap_model
            )
        self._tcp = TCPTransferSimulator(topo, self._round_trips)
        self._rate_limits = {
            h.name: h.icmp_rate_limit_per_min
            for h in topo.hosts
            if h.name in set(self._hosts) and h.rate_limits_icmp
        }

    def _placeholder_round_trip(self, a: str, b: str) -> RoundTripPath:
        """Inert stand-in path for an unreachable pair.

        Keeps the samplers' index spaces aligned with the pair list; it is
        never probed (unreachable requests are answered with losses before
        any draw happens), so only structural validity matters — each
        direction walks the endpoint's own access link and stops.
        """
        topo = self._topo

        def stub(src: str, dst: str) -> ForwardPath:
            host = topo.host(src)
            return ForwardPath(
                src=src,
                dst=dst,
                routers=(host.access_router,),
                links=(host.access_link,),
                as_path=(host.asn,),
                prop_delay_ms=topo.links[host.access_link].prop_delay_ms,
            )

        return RoundTripPath(forward=stub(a, b), reverse=stub(b, a))

    @property
    def hosts(self) -> list[str]:
        """The campaign's host pool."""
        return list(self._hosts)

    @property
    def unreachable_pairs(self) -> list[tuple[str, str]]:
        """Ordered pairs with no policy-compliant route, sorted."""
        by_index = {i: pair for pair, i in self._pair_index.items()}
        return sorted(by_index[i] for i in self._unreachable)

    def path_info(self) -> dict[tuple[str, str], PathInfo]:
        """Static routing facts for every *reachable* ordered pair."""
        out: dict[tuple[str, str], PathInfo] = {}
        for pair, idx in self._pair_index.items():
            if idx in self._unreachable:
                continue
            rt = self._round_trips[idx]
            out[pair] = PathInfo(
                src=pair[0],
                dst=pair[1],
                as_path=rt.forward.as_path,
                hop_count=rt.forward.hop_count,
                prop_delay_ms=rt.rtt_prop_ms,
            )
        return out

    # -- execution -----------------------------------------------------------

    def _prepare(
        self, requests: Iterable[Request]
    ) -> tuple[list[Request], np.ndarray]:
        """Schedule-order the requests and resolve their pair indices."""
        ordered = sorted(requests, key=lambda r: r.t)
        idx = np.empty(len(ordered), dtype=np.int64)
        for j, req in enumerate(ordered):
            i = self._pair_index.get((req.src, req.dst))
            if i is None:
                raise CampaignError(
                    f"request for unknown pair {req.src}->{req.dst}"
                )
            idx[j] = i
        return ordered, idx

    def _control_outcomes(
        self, idx: np.ndarray, rng: np.random.Generator, stats: CollectionStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Roll control failures for all requests.

        One uniform per request, in schedule order, whether or not the
        pair is blacked out — failure classification checks the control
        roll first, then the blackout set, then route reachability,
        exactly like the scalar reference.

        Returns:
            ``(executed, unreachable)`` masks: requests that measure, and
            requests whose pair has no route (those consume no probe
            draws but are recorded as total losses by the traceroute
            path).
        """
        n = len(idx)
        stats.requested = n
        failed = rng.random(n) < self._control_failure_prob

        def pair_mask(members: set[int]) -> np.ndarray:
            if not members:
                return np.zeros(n, dtype=bool)
            return np.fromiter(
                (int(i) in members for i in idx), dtype=bool, count=n
            )

        blocked = pair_mask(self._blocked)
        unroutable = pair_mask(self._unreachable)
        executed = ~failed & ~blocked & ~unroutable
        unreachable = ~failed & ~blocked & unroutable
        stats.control_failures = int(failed.sum())
        stats.blacked_out = int((~failed & blocked).sum())
        stats.unreachable = int(unreachable.sum())
        stats.completed = int(executed.sum())
        return executed, unreachable

    def _apply_rate_limits(
        self, exec_requests: list[Request], samples: np.ndarray
    ) -> int:
        """Suppress probe responses at rate-limiting destinations.

        ``samples`` is the (n_requests, PROBES_PER_TRACEROUTE) RTT matrix,
        mutated in place (a suppressed response becomes NaN, just like a
        genuine loss).  Each destination's token bucket is fed its probe
        arrivals in global time order — requests overlap (probes go out
        one second apart while other requests start), so feeding buckets
        request-by-request would violate the bucket's nondecreasing-time
        contract and silently swallow refill time.  Lost probes never
        reach the destination and consume no token.

        Returns:
            Number of suppressed probes.
        """
        if not self._rate_limits:
            return 0
        arrivals: dict[str, list[tuple[float, int, int]]] = {}
        for j, req in enumerate(exec_requests):
            if req.dst not in self._rate_limits:
                continue
            for k in range(PROBES_PER_TRACEROUTE):
                arrivals.setdefault(req.dst, []).append(
                    (req.t + k * INTER_PROBE_GAP_S, j, k)
                )
        suppressed = 0
        for dst, probes in arrivals.items():
            bucket = TokenBucket(rate_per_min=self._rate_limits[dst])
            probes.sort(key=lambda p: p[0])
            for probe_t, j, k in probes:
                if np.isnan(samples[j, k]):
                    continue
                if not bucket.allow(probe_t):
                    samples[j, k] = np.nan
                    suppressed += 1
        return suppressed

    def _traceroute_records(
        self, exec_requests: list[Request], samples: np.ndarray
    ) -> list[TracerouteRecord]:
        return [
            TracerouteRecord(
                t=req.t,
                src=req.src,
                dst=req.dst,
                rtt_samples=tuple(float(x) for x in row),
                episode=req.episode,
            )
            for req, row in zip(exec_requests, samples)
        ]

    def run_traceroutes(
        self, requests: Iterable[Request]
    ) -> tuple[list[TracerouteRecord], CollectionStats]:
        """Execute traceroute requests; returns records and statistics.

        Each request sends :data:`PROBES_PER_TRACEROUTE` probes one second
        apart.  Destination ICMP rate limiting is applied with per-host
        token buckets; a suppressed response is recorded as NaN exactly
        like a genuine loss — downstream tooling cannot tell them apart.

        All probes of the batch are generated in one vectorized pass;
        byte-identical to :meth:`run_traceroutes_scalar`.  Requests whose
        pair is unreachable (scenario outages) consume no probe draws and
        are recorded with every probe lost.
        """
        stats = CollectionStats()
        rng = self._rng
        ordered, idx = self._prepare(requests)
        executed, unreachable = self._control_outcomes(idx, rng, stats)
        exec_pos = np.flatnonzero(executed)
        exec_requests = [ordered[j] for j in exec_pos]
        ts = np.repeat(
            np.array([req.t for req in exec_requests], dtype=np.float64),
            PROBES_PER_TRACEROUTE,
        )
        pidx = np.repeat(idx[exec_pos], PROBES_PER_TRACEROUTE)
        rtts = self._sampler.probe_batch(ts, rng, indices=pidx)
        samples = rtts.reshape(len(exec_requests), PROBES_PER_TRACEROUTE)
        stats.rate_limited_probes = self._apply_rate_limits(
            exec_requests, samples
        )
        if not stats.unreachable:
            return self._traceroute_records(exec_requests, samples), stats
        # Scatter measured rows among all-NaN unreachable rows so records
        # come out in schedule order, like the scalar reference.
        rec_pos = np.flatnonzero(executed | unreachable)
        all_samples = np.full(
            (len(ordered), PROBES_PER_TRACEROUTE), np.nan
        )
        all_samples[exec_pos] = samples
        rec_requests = [ordered[j] for j in rec_pos]
        return (
            self._traceroute_records(rec_requests, all_samples[rec_pos]),
            stats,
        )

    def run_traceroutes_scalar(
        self, requests: Iterable[Request]
    ) -> tuple[list[TracerouteRecord], CollectionStats]:
        """Per-probe reference implementation of :meth:`run_traceroutes`.

        Kept as the differential-test oracle: it draws the same protocol
        (one control uniform per request up front, then one fixed draw
        block per probe) one value at a time.
        """
        stats = CollectionStats()
        rng = self._rng
        ordered, idx = self._prepare(requests)
        stats.requested = len(ordered)
        control = [rng.random() for _ in ordered]
        exec_requests: list[Request] = []
        rows: list[list[float]] = []
        for req, i, roll in zip(ordered, idx, control):
            if roll < self._control_failure_prob:
                stats.control_failures += 1
                continue
            if int(i) in self._blocked:
                stats.blacked_out += 1
                continue
            if int(i) in self._unreachable:
                stats.unreachable += 1
                rows.append([float("nan")] * PROBES_PER_TRACEROUTE)
                exec_requests.append(req)
                continue
            view = self._sampler.bucket_view(req.t)
            rows.append(
                [view.probe_pair(int(i), rng) for _ in range(PROBES_PER_TRACEROUTE)]
            )
            exec_requests.append(req)
            stats.completed += 1
        samples = np.array(rows, dtype=np.float64).reshape(
            len(exec_requests), PROBES_PER_TRACEROUTE
        )
        stats.rate_limited_probes = self._apply_rate_limits(
            exec_requests, samples
        )
        return self._traceroute_records(exec_requests, samples), stats

    def run_transfers(
        self, requests: Iterable[Request]
    ) -> tuple[list[TransferRecord], CollectionStats]:
        """Execute npd-style TCP transfer requests.

        All transfers are measured in one vectorized pass; byte-identical
        to :meth:`run_transfers_scalar`.  Requests toward unreachable
        pairs fail outright: no record (a TCP connection that never
        establishes yields nothing to log), only a stats tally.
        """
        stats = CollectionStats()
        rng = self._rng
        ordered, idx = self._prepare(requests)
        executed, _unreachable = self._control_outcomes(idx, rng, stats)
        exec_pos = np.flatnonzero(executed)
        exec_requests = [ordered[j] for j in exec_pos]
        exec_idx = idx[exec_pos]
        ts = np.array([req.t for req in exec_requests], dtype=np.float64)
        prop, qsum, ploss = self._sampler.gather_bucket_state(ts, exec_idx)
        rtt, loss, bw = self._tcp.measure_block(prop, qsum, ploss, exec_idx, rng)
        records = [
            TransferRecord(
                t=req.t,
                src=req.src,
                dst=req.dst,
                rtt_ms=float(rtt[j]),
                loss_rate=float(loss[j]),
                bandwidth_kbps=float(bw[j]),
            )
            for j, req in enumerate(exec_requests)
        ]
        return records, stats

    def run_transfers_scalar(
        self, requests: Iterable[Request]
    ) -> tuple[list[TransferRecord], CollectionStats]:
        """Per-transfer reference implementation of :meth:`run_transfers`."""
        stats = CollectionStats()
        rng = self._rng
        ordered, idx = self._prepare(requests)
        stats.requested = len(ordered)
        control = [rng.random() for _ in ordered]
        records: list[TransferRecord] = []
        for req, i, roll in zip(ordered, idx, control):
            if roll < self._control_failure_prob:
                stats.control_failures += 1
                continue
            if int(i) in self._blocked:
                stats.blacked_out += 1
                continue
            if int(i) in self._unreachable:
                stats.unreachable += 1
                continue
            view = self._sampler.bucket_view(req.t)
            result = self._tcp.measure(view, int(i), rng)
            records.append(
                TransferRecord(
                    t=req.t,
                    src=req.src,
                    dst=req.dst,
                    rtt_ms=result.rtt_ms,
                    loss_rate=result.loss_rate,
                    bandwidth_kbps=result.bandwidth_kbps,
                )
            )
            stats.completed += 1
        return records, stats

"""Measurement tools: schedulers, traceroute, TCP transfers, collection."""

from repro.measurement.collector import Campaign, CampaignError
from repro.measurement.ping import DEFAULT_INTERVAL_S, PingResult, PingTool
from repro.measurement.ratelimit import (
    RateLimitVerdict,
    TokenBucket,
    detect_rate_limiters,
    flagged_hosts,
)
from repro.measurement.records import (
    PROBES_PER_TRACEROUTE,
    CollectionStats,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)
from repro.measurement.schedulers import (
    Request,
    SchedulerError,
    poisson_episodes,
    poisson_pairs,
    round_robin_pairs,
    uniform_per_server,
)
from repro.measurement.tcp import (
    DEFAULT_MSS_BYTES,
    MATHIS_C,
    TCPTransferSimulator,
    TransferResult,
    bottleneck_capacity_kbps,
    mathis_bandwidth_kbps,
    mathis_bandwidth_kbps_array,
)
from repro.measurement.traceroute import (
    TracerouteHop,
    TracerouteResult,
    TracerouteTool,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CollectionStats",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_MSS_BYTES",
    "MATHIS_C",
    "PROBES_PER_TRACEROUTE",
    "PathInfo",
    "PingResult",
    "PingTool",
    "RateLimitVerdict",
    "Request",
    "SchedulerError",
    "TCPTransferSimulator",
    "TokenBucket",
    "TracerouteHop",
    "TracerouteRecord",
    "TracerouteResult",
    "TracerouteTool",
    "TransferRecord",
    "TransferResult",
    "bottleneck_capacity_kbps",
    "detect_rate_limiters",
    "flagged_hosts",
    "mathis_bandwidth_kbps",
    "mathis_bandwidth_kbps_array",
    "poisson_episodes",
    "poisson_pairs",
    "round_robin_pairs",
    "uniform_per_server",
]

"""ICMP rate limiting: the behaviour and its empirical detection.

Some hosts limit the rate at which they answer ICMP (traceroute) probes.
To a measurement tool, a suppressed reply is indistinguishable from a
genuine packet loss, so "traceroute requests to rate limiting hosts would
observe a higher loss rate than warranted" (paper §4.2).  The paper
*empirically determined* which hosts rate-limit and corrected each dataset
differently; this module provides both the token-bucket behaviour used
during collection and the detector used afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    # Annotation-only: the detector duck-types its input (hosts,
    # pairs(), loss_samples), and a runtime import here would point
    # measurement upward at the datasets layer (ARCH002).
    from repro.datasets.dataset import Dataset


@dataclass(slots=True)
class TokenBucket:
    """Classic token bucket limiting ICMP responses at a host.

    Attributes:
        rate_per_min: Sustained response rate (tokens per minute).
        burst: Bucket capacity (maximum back-to-back responses).  The
            default of one token reproduces the paper's footnote: the
            first probe of a traceroute is answered, while "the second
            and third samples are more likely to be dropped because they
            follow the first sample".
    """

    rate_per_min: float
    burst: float = 1.0
    _tokens: float = field(default=-1.0, init=False)
    _last_t: float = field(default=0.0, init=False)

    def allow(self, t: float) -> bool:
        """Whether a probe arriving at time ``t`` gets a response.

        Calls must be made in nondecreasing time order.
        """
        if self.rate_per_min <= 0:
            return True
        if self._tokens < 0:
            self._tokens = self.burst
            self._last_t = t
        elapsed = max(0.0, t - self._last_t)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_min / 60.0)
        self._last_t = t
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True, slots=True)
class RateLimitVerdict:
    """Detector output for one host.

    Attributes:
        host: Host name.
        loss_toward: Median per-path loss rate of probes sent *to* the host.
        loss_from: Median per-path loss rate of probes sent *by* the host.
        flagged: Whether the host is judged an ICMP rate limiter.
    """

    host: str
    loss_toward: float
    loss_from: float
    flagged: bool


def detect_rate_limiters(
    dataset: Dataset,
    *,
    excess_threshold: float = 0.08,
    ratio_threshold: float = 3.0,
) -> list[RateLimitVerdict]:
    """Empirically flag ICMP rate-limiting hosts in a traceroute dataset.

    Rate limiting inflates loss on every path *toward* the limiter but not
    on paths it originates (its own probes elicit replies from the far
    end).  A host is flagged when its inbound loss exceeds its outbound
    loss by ``excess_threshold`` absolutely *and* ``ratio_threshold``
    multiplicatively — a genuine congested access link inflates both
    directions roughly equally (every probe crosses it twice), so the
    asymmetry isolates the ICMP artefact.

    Args:
        dataset: A traceroute dataset (pre-correction).
        excess_threshold: Minimum absolute inbound-over-outbound excess.
        ratio_threshold: Minimum inbound/outbound ratio.

    Returns:
        One verdict per host, sorted by host name.
    """
    inbound: dict[str, list[float]] = {h: [] for h in dataset.hosts}
    outbound: dict[str, list[float]] = {h: [] for h in dataset.hosts}
    for pair in dataset.pairs():
        losses = dataset.loss_samples(pair)
        if len(losses) == 0:
            continue
        rate = float(np.mean(losses))
        src, dst = pair
        if dst in inbound:
            inbound[dst].append(rate)
        if src in outbound:
            outbound[src].append(rate)
    verdicts = []
    for host in sorted(dataset.hosts):
        lin = float(np.median(inbound[host])) if inbound[host] else 0.0
        lout = float(np.median(outbound[host])) if outbound[host] else 0.0
        flagged = (
            lin - lout >= excess_threshold
            and lin >= ratio_threshold * max(lout, 1e-9)
        )
        verdicts.append(
            RateLimitVerdict(host=host, loss_toward=lin, loss_from=lout, flagged=flagged)
        )
    return verdicts


def flagged_hosts(verdicts: list[RateLimitVerdict]) -> list[str]:
    """Names of hosts flagged as rate limiters."""
    return [v.host for v in verdicts if v.flagged]

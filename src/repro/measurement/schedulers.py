"""Measurement request scheduling.

The paper's control host issued requests at random intervals, with the
law differing per dataset (§4.2):

* **UW1** — each traceroute server was polled on its own *uniform*
  schedule with a mean of 15 minutes, with a random target per request.
* **UW3 / UW4-B** — a random pair was selected on an *exponential*
  (Poisson) schedule, mean 9 s and 150 s respectively.  The exponential
  law gives PASTA-style protection against "anticipation" that the paper
  notes UW1 lacks.
* **UW4-A** — "episodes" on an exponential schedule (mean 1000 s); within
  an episode every ordered pair is measured simultaneously.
* **D2/N2 (npd)** — Poisson pair selection, like UW3.

Schedulers generate :class:`Request` streams; the collector executes them.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Request:
    """One measurement request issued by the control host.

    Attributes:
        t: Simulation time at which the request fires.
        src: Measuring host (traceroute origin / npd sender).
        dst: Target host.
        episode: Episode index for simultaneous scheduling; -1 otherwise.
    """

    t: float
    src: str
    dst: str
    episode: int = -1


class SchedulerError(ValueError):
    """Raised for invalid scheduler parameters."""


def _check(hosts: list[str], duration_s: float, mean_interval_s: float) -> None:
    if len(hosts) < 2:
        raise SchedulerError("need at least two hosts")
    if len(set(hosts)) != len(hosts):
        raise SchedulerError("host names must be unique")
    if duration_s <= 0:
        raise SchedulerError(f"duration must be positive, got {duration_s}")
    if mean_interval_s <= 0:
        raise SchedulerError(f"mean interval must be positive, got {mean_interval_s}")


def uniform_per_server(
    hosts: list[str],
    duration_s: float,
    mean_interval_s: float,
    *,
    seed: int = 0,
    targets: list[str] | None = None,
) -> Iterator[Request]:
    """UW1-style scheduling: per-server uniform intervals, random targets.

    Each host runs an independent clock whose inter-request gaps are drawn
    uniformly from (0, 2 * mean), so the mean matches ``mean_interval_s``.
    Requests from all servers are emitted merged in time order.

    Args:
        targets: Restrict traceroute destinations to this subset (UW1
            removed ICMP rate limiters "from the pool of potential
            targets" while keeping them as measurement sources).  All
            hosts are eligible targets when None.

    Yields:
        :class:`Request` objects in nondecreasing time order.
    """
    _check(hosts, duration_s, mean_interval_s)
    eligible = list(hosts) if targets is None else list(targets)
    unknown = set(eligible) - set(hosts)
    if unknown:
        raise SchedulerError(f"targets not in host pool: {sorted(unknown)}")
    rng = random.Random(seed)
    pending: list[tuple[float, str]] = []
    for host in hosts:
        # Random initial phase avoids synchronized start-of-trace bursts.
        pending.append((rng.uniform(0, 2 * mean_interval_s), host))
    heapq.heapify(pending)
    while pending:
        t, src = heapq.heappop(pending)
        if t >= duration_s:
            continue
        others = [h for h in eligible if h != src]
        if others:
            yield Request(t=t, src=src, dst=rng.choice(others))
        heapq.heappush(pending, (t + rng.uniform(0, 2 * mean_interval_s), src))


def round_robin_pairs(
    hosts: list[str],
    repetitions: int,
    duration_s: float,
    *,
    seed: int = 0,
) -> Iterator[Request]:
    """Pre-scan scheduling: every ordered pair measured a fixed number of
    times, spread evenly (with jitter) over the duration.

    Used to empirically detect ICMP rate limiters before the main
    campaign, mirroring the paper's calibration pass.

    Yields:
        :class:`Request` objects in time order.
    """
    if repetitions <= 0:
        raise SchedulerError(f"repetitions must be positive, got {repetitions}")
    _check(hosts, duration_s, duration_s / max(repetitions, 1))
    rng = random.Random(seed)
    pairs = [(a, b) for a in hosts for b in hosts if a != b]
    requests = []
    slot = duration_s / repetitions
    for rep in range(repetitions):
        for src, dst in pairs:
            requests.append(
                Request(t=rep * slot + rng.uniform(0, slot), src=src, dst=dst)
            )
    requests.sort(key=lambda r: r.t)
    yield from requests


def poisson_pairs(
    hosts: list[str],
    duration_s: float,
    mean_interval_s: float,
    *,
    seed: int = 0,
) -> Iterator[Request]:
    """UW3/UW4-B-style scheduling: Poisson arrivals, random ordered pair.

    Yields:
        :class:`Request` objects in increasing time order.
    """
    _check(hosts, duration_s, mean_interval_s)
    rng = random.Random(seed)
    t = rng.expovariate(1.0 / mean_interval_s)
    while t < duration_s:
        src = rng.choice(hosts)
        dst = rng.choice([h for h in hosts if h != src])
        yield Request(t=t, src=src, dst=dst)
        t += rng.expovariate(1.0 / mean_interval_s)


def poisson_episodes(
    hosts: list[str],
    duration_s: float,
    mean_interval_s: float,
    *,
    seed: int = 0,
    spread_s: float = 120.0,
) -> Iterator[Request]:
    """UW4-A-style scheduling: Poisson episodes measuring all pairs at once.

    Within an episode every ordered pair is requested; the paper notes the
    measurements are "simultaneous only within a several minute window",
    modeled by jittering each request uniformly over ``spread_s`` seconds.

    Yields:
        :class:`Request` objects grouped by episode, time-ordered within
        each episode.
    """
    _check(hosts, duration_s, mean_interval_s)
    rng = random.Random(seed)
    t = rng.expovariate(1.0 / mean_interval_s)
    episode = 0
    while t < duration_s:
        batch = [
            Request(
                t=t + rng.uniform(0, spread_s),
                src=src,
                dst=dst,
                episode=episode,
            )
            for src in hosts
            for dst in hosts
            if src != dst
        ]
        batch.sort(key=lambda r: r.t)
        yield from batch
        episode += 1
        t += rng.expovariate(1.0 / mean_interval_s)

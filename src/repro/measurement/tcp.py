"""TCP bandwidth: the Mathis model and npd-style transfer measurement.

The paper computes alternate-path bandwidth "according to the TCP model of
Mathis et al." — the macroscopic steady-state throughput of TCP congestion
avoidance:

    BW = (MSS / RTT) * C / sqrt(p)

with C ≈ sqrt(3/2).  The same model drives our simulated npd transfers:
each transfer observes a path RTT and an effective loss rate (background
congestion loss plus the transfer's own self-induced loss, since "TCP
exerts and reacts to load"), and achieves the Mathis throughput capped by
the path's bottleneck capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netsim.conditions import SamplerView
from repro.routing.forwarding import RoundTripPath
from repro.topology.network import Topology

#: Mathis constant: sqrt(3/2) for periodic loss under delayed ACKs off.
MATHIS_C = math.sqrt(1.5)

#: Default TCP maximum segment size in bytes (Ethernet-era).
DEFAULT_MSS_BYTES = 1460

#: Self-induced loss range for a pipe-filling TCP (drawn per transfer).
SELF_LOSS_RANGE = (0.008, 0.025)

#: RTT (ms) at which a short npd transfer achieves half the steady-state
#: Mathis rate: 100 kB transfers spend much of their life in slow start,
#: and the longer the RTT the smaller the achieved fraction.
SLOW_START_HALF_RTT_MS = 300.0

#: Fraction of bottleneck capacity one flow can realistically claim.
BOTTLENECK_SHARE = 0.8


def mathis_bandwidth_kbps(
    rtt_ms: float,
    loss_rate: float,
    *,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Mathis et al. steady-state TCP throughput, in kilobytes per second.

    Args:
        rtt_ms: Round-trip time in milliseconds.
        loss_rate: Packet loss probability in (0, 1].

    Raises:
        ValueError: if ``rtt_ms`` or ``loss_rate`` is not positive.
    """
    if rtt_ms <= 0:
        raise ValueError(f"rtt_ms must be positive, got {rtt_ms}")
    if loss_rate <= 0:
        raise ValueError(f"loss_rate must be positive, got {loss_rate}")
    bytes_per_sec = (mss_bytes / (rtt_ms / 1000.0)) * (MATHIS_C / math.sqrt(loss_rate))
    return bytes_per_sec / 1000.0


# hotpath
def mathis_bandwidth_kbps_array(
    rtt_ms: np.ndarray, loss_rate: np.ndarray, *, mss_bytes: int = DEFAULT_MSS_BYTES
) -> np.ndarray:
    """Vectorized :func:`mathis_bandwidth_kbps` (inputs must be positive)."""
    return (mss_bytes / (rtt_ms / 1000.0)) * (MATHIS_C / np.sqrt(loss_rate)) / 1000.0


def bottleneck_capacity_kbps(topo: Topology, round_trip: RoundTripPath) -> float:
    """Capacity of the slowest link on a round trip, in kilobytes/second."""
    caps = [topo.links[l].capacity_mbps for l in round_trip.link_ids]
    # Mbit/s -> kByte/s.
    return min(caps) * 1000.0 / 8.0


@dataclass(frozen=True, slots=True)
class TransferResult:
    """Outcome of one simulated TCP transfer."""

    rtt_ms: float
    loss_rate: float
    bandwidth_kbps: float


class TCPTransferSimulator:
    """npd-style transfer measurement over a fixed set of paths."""

    def __init__(self, topo: Topology, paths: list[RoundTripPath]) -> None:
        self._bottleneck = np.array(
            [bottleneck_capacity_kbps(topo, rt) for rt in paths]
        )

    #: Uniform draws consumed per transfer, in order: jitter, self-queue
    #: inflation, self-induced loss, rate noise.  Fixed so a batched
    #: ``random((n, 4))`` block consumes the same generator stream as
    #: ``n`` scalar :meth:`measure` calls.
    DRAWS_PER_TRANSFER = 4

    # hotpath
    def measure_block(
        self,
        prop: np.ndarray,
        qsum: np.ndarray,
        ploss: np.ndarray,
        indices: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Measure one transfer per row, vectorized.

        ``prop``/``qsum``/``ploss`` are the per-transfer path state (as
        gathered from each transfer's bucket view) and ``indices`` the
        path index per transfer (for the bottleneck cap).  The observed
        RTT is a probe sample inflated slightly by the transfer's own
        queue occupancy; the observed loss combines the background loss
        probability with self-induced loss.

        Returns:
            (rtt_ms, loss_rate, bandwidth_kbps) arrays aligned with rows.
        """
        u = rng.random((len(prop), self.DRAWS_PER_TRANSFER))
        jitter = -np.log1p(-u[:, 0]) * (0.35 * qsum + 0.4)
        self_queue = 1.02 + (1.15 - 1.02) * u[:, 1]  # our own packets queue too
        rtt = (prop + qsum) * self_queue + jitter + 0.4
        lo, hi = SELF_LOSS_RANGE
        p_self = lo + (hi - lo) * u[:, 2]
        p_eff = 1.0 - (1.0 - ploss) * (1.0 - p_self)
        bw = mathis_bandwidth_kbps_array(rtt, p_eff)
        bw = np.minimum(bw, BOTTLENECK_SHARE * self._bottleneck[indices])
        # Short transfers never reach steady state: slow start costs a
        # fraction of the achievable rate that grows with RTT.
        bw = bw * (1.0 / (1.0 + rtt / SLOW_START_HALF_RTT_MS))
        # Small measurement noise on the achieved rate.
        bw = bw * (0.92 + (1.08 - 0.92) * u[:, 3])
        return rtt, p_eff, bw

    def measure(
        self, view: SamplerView, index: int, rng: np.random.Generator
    ) -> TransferResult:
        """Measure one transfer along path ``index`` in bucket ``view``.

        Scalar reference for :meth:`measure_block`: routed through the
        same code on one-element slices, so a loop of scalar calls is
        byte-identical to one batched call with the same generator.
        """
        rtt, loss, bw = self.measure_block(
            view.prop[index : index + 1],
            view.qsum[index : index + 1],
            view.ploss[index : index + 1],
            np.array([index], dtype=np.int64),
            rng,
        )
        return TransferResult(
            rtt_ms=float(rtt[0]),
            loss_rate=float(loss[0]),
            bandwidth_kbps=float(bw[0]),
        )

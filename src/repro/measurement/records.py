"""Measurement record types shared by collection and analysis.

Two record families correspond to the paper's two collection tools:

* :class:`TracerouteRecord` — one ``traceroute`` invocation (the UW and D2
  datasets).  Each invocation takes **three consecutive samples** of the
  round-trip time to the end host; a lost probe is recorded as NaN.
* :class:`TransferRecord` — one ``npd`` TCP transfer (the N2 datasets),
  yielding the RTT and loss rate observed *within* the transfer and the
  achieved bandwidth.

Records carry simulation timestamps (seconds from the simulated Monday
00:00 UTC origin) so the analysis layer can reproduce the paper's
time-of-day breakdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Number of RTT samples a single traceroute invocation takes.
PROBES_PER_TRACEROUTE = 3


@dataclass(frozen=True, slots=True)
class PathInfo:
    """Static routing facts about one ordered host pair's default path.

    Attributes:
        src: Source host name.
        dst: Destination host name.
        as_path: AS-level forward path (source AS first).
        hop_count: Router-level forward hop count.
        prop_delay_ms: Round-trip propagation delay (both directions).
    """

    src: str
    dst: str
    as_path: tuple[int, ...]
    hop_count: int
    prop_delay_ms: float


@dataclass(frozen=True, slots=True)
class TracerouteRecord:
    """One traceroute invocation between an ordered host pair.

    Attributes:
        t: Simulation time of the invocation, seconds.
        src: Source host name.
        dst: Destination host name.
        rtt_samples: RTT of each probe in ms; NaN marks a lost probe.
        episode: Episode index for simultaneous datasets (UW4-A); -1 for
            independently scheduled measurements.
    """

    t: float
    src: str
    dst: str
    rtt_samples: tuple[float, ...]
    episode: int = -1

    def __post_init__(self) -> None:
        if not self.rtt_samples:
            raise ValueError("a traceroute record needs at least one sample")

    @property
    def n_lost(self) -> int:
        """Number of lost probes in this invocation."""
        return sum(1 for r in self.rtt_samples if math.isnan(r))

    @property
    def n_probes(self) -> int:
        """Number of probes sent."""
        return len(self.rtt_samples)

    @property
    def successful_rtts(self) -> tuple[float, ...]:
        """RTTs of answered probes only."""
        return tuple(r for r in self.rtt_samples if not math.isnan(r))

    def first_sample_lost(self) -> bool:
        """Whether the first probe was lost (the D2 loss heuristic)."""
        return math.isnan(self.rtt_samples[0])


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One npd-style TCP transfer between an ordered host pair.

    Attributes:
        t: Simulation time of the transfer start, seconds.
        src: Sending host name.
        dst: Receiving host name.
        rtt_ms: Mean RTT observed during the transfer.
        loss_rate: Fraction of packets lost during the transfer.
        bandwidth_kbps: Achieved throughput in kilobytes per second.
    """

    t: float
    src: str
    dst: str
    rtt_ms: float
    loss_rate: float
    bandwidth_kbps: float

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0:
            raise ValueError(f"rtt_ms must be positive, got {self.rtt_ms}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.bandwidth_kbps < 0:
            raise ValueError(f"bandwidth_kbps must be >= 0, got {self.bandwidth_kbps}")


@dataclass(slots=True)
class CollectionStats:
    """Bookkeeping from a collection campaign (for Table 1 and debugging).

    Attributes:
        requested: Measurement requests issued by the control host.
        completed: Requests that produced a record.
        control_failures: Requests dropped because the control host could
            not contact the server (paper §4.2: occasional transient
            failures).
        rate_limited_probes: Probes suppressed by destination ICMP rate
            limiting (ground truth, unknown to the measurement tools).
        blacked_out: Requests dropped because the pair is persistently
            unmeasurable (the campaign's ``pair_blackout_prob``) — the
            Table 1 "percent of paths covered" shortfall, as opposed to
            the transient control failures above.
        unreachable: Requests whose pair had no policy-compliant route at
            resolution time (a scenario outage; see
            :mod:`repro.scenario`).  Traceroute requests still produce a
            record — every probe lost, exactly what the tool would see —
            but are not counted as ``completed``; transfer requests simply
            fail.
    """

    requested: int = 0
    completed: int = 0
    control_failures: int = 0
    rate_limited_probes: int = 0
    blacked_out: int = 0
    unreachable: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def failed_requests(self) -> int:
        """All requests that produced no record (legacy combined count).

        Before ``blacked_out`` existed, blackout drops were folded into
        ``control_failures``; consumers of that legacy sum should use
        this property.
        """
        return self.control_failures + self.blacked_out

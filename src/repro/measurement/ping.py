"""A ping (ICMP echo) simulator.

Ping differs from the traceroute probes used for bulk collection in two
ways that matter to consumers: it sends a configurable count of
echo requests at a fixed interval, and it reports the classic summary
statistics (min/avg/max/mdev, packet loss).  The overlay's probing and
the examples use it as the lightweight measurement primitive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netsim.conditions import NetworkConditions, PathSampler
from repro.routing.forwarding import RoundTripPath

#: Default seconds between echo requests.
DEFAULT_INTERVAL_S = 1.0


@dataclass(frozen=True, slots=True)
class PingResult:
    """Outcome of one ping run.

    Attributes:
        src: Source host name.
        dst: Destination host name.
        sent: Echo requests sent.
        received: Echo replies received.
        rtts_ms: RTT of each reply, in send order (losses omitted).
    """

    src: str
    dst: str
    sent: int
    received: int
    rtts_ms: tuple[float, ...]

    @property
    def loss_rate(self) -> float:
        """Fraction of requests that went unanswered."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    @property
    def min_ms(self) -> float:
        """Minimum RTT (NaN when nothing was received)."""
        return min(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def avg_ms(self) -> float:
        """Mean RTT (NaN when nothing was received)."""
        return float(np.mean(self.rtts_ms)) if self.rtts_ms else math.nan

    @property
    def max_ms(self) -> float:
        """Maximum RTT (NaN when nothing was received)."""
        return max(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def mdev_ms(self) -> float:
        """RMS deviation of the RTTs: sqrt(mean(x^2) - mean(x)^2).

        This is iputils ping's ``mdev`` — a population standard
        deviation, not a mean absolute deviation.
        """
        if not self.rtts_ms:
            return math.nan
        arr = np.asarray(self.rtts_ms)
        mean = float(arr.mean())
        mean_sq = float(np.mean(arr * arr))
        return math.sqrt(max(mean_sq - mean * mean, 0.0))

    def render(self) -> str:
        """Classic ping summary block."""
        lines = [
            f"--- {self.dst} ping statistics ---",
            f"{self.sent} packets transmitted, {self.received} received, "
            f"{self.loss_rate:.0%} packet loss",
        ]
        if self.rtts_ms:
            lines.append(
                f"rtt min/avg/max/mdev = {self.min_ms:.1f}/{self.avg_ms:.1f}/"
                f"{self.max_ms:.1f}/{self.mdev_ms:.1f} ms"
            )
        return "\n".join(lines)


class PingTool:
    """Simulates ping runs over resolved round-trip paths.

    Samplers are cached per round trip, so repeated pings of the same
    path (the overlay's steady state) skip the CSR construction, and the
    echo train is generated in one batched pass.
    """

    _MAX_CACHED_SAMPLERS = 128

    def __init__(self, conditions: NetworkConditions) -> None:
        self._conditions = conditions
        self._samplers: dict[RoundTripPath, PathSampler] = {}

    def _sampler_for(self, round_trip: RoundTripPath) -> PathSampler:
        sampler = self._samplers.get(round_trip)
        if sampler is None:
            if len(self._samplers) > self._MAX_CACHED_SAMPLERS:
                self._samplers.clear()
            sampler = PathSampler(self._conditions, [round_trip])
            self._samplers[round_trip] = sampler
        return sampler

    def ping(
        self,
        round_trip: RoundTripPath,
        t: float,
        rng: np.random.Generator,
        *,
        count: int = 10,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> PingResult:
        """Send ``count`` echo requests starting at time ``t``.

        Raises:
            ValueError: on a non-positive count or interval.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        sampler = self._sampler_for(round_trip)
        times = t + np.arange(count) * interval_s
        rtts = sampler.probe_batch(
            times, rng, indices=np.zeros(count, dtype=np.int64)
        )
        answered = rtts[~np.isnan(rtts)]
        return PingResult(
            src=round_trip.forward.src,
            dst=round_trip.forward.dst,
            sent=count,
            received=int(answered.size),
            rtts_ms=tuple(float(r) for r in answered),
        )

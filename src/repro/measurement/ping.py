"""A ping (ICMP echo) simulator.

Ping differs from the traceroute probes used for bulk collection in two
ways that matter to consumers: it sends a configurable count of
echo requests at a fixed interval, and it reports the classic summary
statistics (min/avg/max/mdev, packet loss).  The overlay's probing and
the examples use it as the lightweight measurement primitive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netsim.conditions import NetworkConditions, PathSampler
from repro.routing.forwarding import RoundTripPath

#: Default seconds between echo requests.
DEFAULT_INTERVAL_S = 1.0


@dataclass(frozen=True, slots=True)
class PingResult:
    """Outcome of one ping run.

    Attributes:
        src: Source host name.
        dst: Destination host name.
        sent: Echo requests sent.
        received: Echo replies received.
        rtts_ms: RTT of each reply, in send order (losses omitted).
    """

    src: str
    dst: str
    sent: int
    received: int
    rtts_ms: tuple[float, ...]

    @property
    def loss_rate(self) -> float:
        """Fraction of requests that went unanswered."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    @property
    def min_ms(self) -> float:
        """Minimum RTT (NaN when nothing was received)."""
        return min(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def avg_ms(self) -> float:
        """Mean RTT (NaN when nothing was received)."""
        return float(np.mean(self.rtts_ms)) if self.rtts_ms else math.nan

    @property
    def max_ms(self) -> float:
        """Maximum RTT (NaN when nothing was received)."""
        return max(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def mdev_ms(self) -> float:
        """Mean absolute deviation of the RTTs, ping-style."""
        if not self.rtts_ms:
            return math.nan
        arr = np.asarray(self.rtts_ms)
        return float(np.mean(np.abs(arr - arr.mean())))

    def render(self) -> str:
        """Classic ping summary block."""
        lines = [
            f"--- {self.dst} ping statistics ---",
            f"{self.sent} packets transmitted, {self.received} received, "
            f"{self.loss_rate:.0%} packet loss",
        ]
        if self.rtts_ms:
            lines.append(
                f"rtt min/avg/max/mdev = {self.min_ms:.1f}/{self.avg_ms:.1f}/"
                f"{self.max_ms:.1f}/{self.mdev_ms:.1f} ms"
            )
        return "\n".join(lines)


class PingTool:
    """Simulates ping runs over resolved round-trip paths."""

    def __init__(self, conditions: NetworkConditions) -> None:
        self._conditions = conditions

    def ping(
        self,
        round_trip: RoundTripPath,
        t: float,
        rng: np.random.Generator,
        *,
        count: int = 10,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> PingResult:
        """Send ``count`` echo requests starting at time ``t``.

        Raises:
            ValueError: on a non-positive count or interval.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        sampler = PathSampler(self._conditions, [round_trip])
        rtts: list[float] = []
        for k in range(count):
            view = sampler.view(t + k * interval_s)
            rtt = view.probe_pair(0, rng)
            if not math.isnan(rtt):
                rtts.append(rtt)
        return PingResult(
            src=round_trip.forward.src,
            dst=round_trip.forward.dst,
            sent=count,
            received=len(rtts),
            rtts_ms=tuple(rtts),
        )

"""A traceroute simulator.

``traceroute`` sends TTL-limited probes that elicit ICMP responses from
each router on the default path, then from the end host; each invocation
takes three RTT samples per hop.  The paper's datasets use the *final hop*
samples as path RTT/loss measurements and the hop lists for AS-level
analysis (Figure 14).

The full per-hop simulation here serves the example programs and tests;
bulk dataset collection uses the collector's end-to-end fast path, which
produces identical final-hop statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.records import PROBES_PER_TRACEROUTE
from repro.netsim.conditions import NetworkConditions
from repro.routing.forwarding import RoundTripPath
from repro.topology.network import Topology

#: Seconds between consecutive probes of one invocation.
INTER_PROBE_GAP_S = 1.0


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One line of traceroute output.

    Attributes:
        ttl: Hop number, starting at 1.
        router_id: Responding router (or the end host's NIC router).
        label: Display label of the responder.
        rtt_ms: RTT samples; NaN for an unanswered probe.
    """

    ttl: int
    router_id: int
    label: str
    rtt_ms: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class TracerouteResult:
    """Full output of one traceroute invocation."""

    src: str
    dst: str
    t: float
    hops: tuple[TracerouteHop, ...]

    @property
    def final_hop(self) -> TracerouteHop:
        """The end-host hop, whose samples are the path measurement."""
        return self.hops[-1]

    def as_path(self, topo: Topology) -> tuple[int, ...]:
        """AS-level path inferred from responding routers, deduplicated."""
        seq: list[int] = []
        for hop in self.hops:
            asn = topo.routers[hop.router_id].asn
            if not seq or seq[-1] != asn:
                seq.append(asn)
        return tuple(seq)


class TracerouteTool:
    """Simulates traceroute invocations over resolved round-trip paths."""

    def __init__(self, topo: Topology, conditions: NetworkConditions) -> None:
        self._topo = topo
        self._cond = conditions

    def trace(
        self,
        round_trip: RoundTripPath,
        t: float,
        rng: np.random.Generator,
        *,
        probes_per_hop: int = PROBES_PER_TRACEROUTE,
    ) -> TracerouteResult:
        """Run one traceroute along ``round_trip`` starting at time ``t``.

        Each hop's RTT approximates the forward prefix delay doubled —
        ICMP TIME_EXCEEDED responses retrace similar distance — plus
        queuing and jitter.  Loss applies per probe using the prefix's
        cumulative loss probability.

        Args:
            round_trip: Resolved forward/reverse paths.
            t: Invocation start time.
            rng: Per-probe randomness.
            probes_per_hop: Samples per hop (the classic tool sends 3).
        """
        topo = self._topo
        forward = round_trip.forward
        hops: list[TracerouteHop] = []
        queue = self._cond.queue_delay_ms(t)
        ploss = self._cond.loss_probability(t)
        prefix_prop = 0.0
        prefix_queue = 0.0
        prefix_log_survive = 0.0
        for idx, link_id in enumerate(forward.links):
            link = topo.links[link_id]
            prefix_prop += link.prop_delay_ms
            prefix_queue += queue[link_id]
            prefix_log_survive += np.log1p(-ploss[link_id])
            responder = forward.routers[idx + 1]
            loss_p = 1.0 - np.exp(2.0 * prefix_log_survive)
            samples = []
            for _ in range(probes_per_hop):
                if rng.random() < loss_p:
                    samples.append(float("nan"))
                else:
                    jitter = rng.exponential() * (0.35 * prefix_queue + 0.4)
                    samples.append(2.0 * (prefix_prop + prefix_queue) + jitter + 0.4)
            hops.append(
                TracerouteHop(
                    ttl=idx + 1,
                    router_id=responder,
                    label=topo.routers[responder].label,
                    rtt_ms=tuple(samples),
                )
            )
        return TracerouteResult(src=forward.src, dst=forward.dst, t=t, hops=tuple(hops))

"""Detour-style overlay routing: the system the paper's findings motivated.

The paper's analysis is an *oracle*: it asks whether better alternates
existed in retrospect.  This subpackage implements the online system that
question implies — an overlay whose nodes probe each other, maintain EWMA
path-quality estimates, and relay flows through peers when the estimated
alternate clears a hysteresis bar — and evaluates how much of the oracle
gain such a system actually captures under estimation lag.
"""

from repro.overlay.network import (
    FlowOutcome,
    OverlayEvaluation,
    OverlayNetwork,
)
from repro.overlay.router import OverlayRoute, OverlayRouter
from repro.overlay.state import LinkEstimate, OverlayState

__all__ = [
    "FlowOutcome",
    "LinkEstimate",
    "OverlayEvaluation",
    "OverlayNetwork",
    "OverlayRoute",
    "OverlayRouter",
    "OverlayState",
]

"""The overlay network driver and its evaluation harness.

:class:`OverlayNetwork` runs a Detour-style overlay over the simulated
Internet: all pairs are probed on a fixed cadence to refresh the EWMA
estimates, and application flows are routed by :class:`OverlayRouter`.
The evaluation compares, per flow, the *actual* (simulated) latency of

* the direct Internet path,
* the overlay's chosen route (built from possibly stale estimates), and
* the oracle — the best achievable route at that instant,

quantifying how much of the paper's offline alternate-path gain an online
system realizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.conditions import NetworkConditions, PathSampler
from repro.obs import runtime as obs
from repro.overlay.router import OverlayRoute, OverlayRouter
from repro.overlay.state import OverlayState, Pair
from repro.routing.forwarding import PathResolver
from repro.topology.network import Topology


@dataclass(frozen=True, slots=True)
class FlowOutcome:
    """One evaluated flow.

    Attributes:
        t: Flow start time.
        src: Source host.
        dst: Destination host.
        route: The overlay's chosen route.
        direct_rtt_ms: Actual direct-path RTT at ``t`` (NaN if the probe
            would have been lost).
        overlay_rtt_ms: Actual RTT along the chosen route at ``t``.
        oracle_rtt_ms: Best actual RTT over direct and all single-relay
            routes at ``t``.
    """

    t: float
    src: str
    dst: str
    route: OverlayRoute
    direct_rtt_ms: float
    overlay_rtt_ms: float
    oracle_rtt_ms: float

    @property
    def overlay_gain_ms(self) -> float:
        """Actual improvement of the overlay's choice over direct."""
        return self.direct_rtt_ms - self.overlay_rtt_ms

    @property
    def oracle_gain_ms(self) -> float:
        """Improvement an omniscient router would have achieved."""
        return self.direct_rtt_ms - self.oracle_rtt_ms


@dataclass
class OverlayEvaluation:
    """Aggregate results of an overlay run."""

    outcomes: list[FlowOutcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    def _finite(self, values: list[float]) -> np.ndarray:
        arr = np.array(values)
        return arr[np.isfinite(arr)]

    def mean_direct_rtt(self) -> float:
        """Mean actual RTT of the direct paths."""
        return float(self._finite([o.direct_rtt_ms for o in self.outcomes]).mean())

    def mean_overlay_rtt(self) -> float:
        """Mean actual RTT of the overlay's choices."""
        return float(self._finite([o.overlay_rtt_ms for o in self.outcomes]).mean())

    def mean_oracle_rtt(self) -> float:
        """Mean actual RTT of the oracle's choices."""
        return float(self._finite([o.oracle_rtt_ms for o in self.outcomes]).mean())

    def deflection_rate(self) -> float:
        """Fraction of flows the overlay relayed (vs sent direct)."""
        if not self.outcomes:
            return 0.0
        return float(np.mean([not o.route.is_direct for o in self.outcomes]))

    def win_rate(self) -> float:
        """Fraction of relayed flows that actually beat the direct path."""
        relayed = [o for o in self.outcomes if not o.route.is_direct]
        if not relayed:
            return 0.0
        gains = self._finite([o.overlay_gain_ms for o in relayed])
        return float(np.mean(gains > 0)) if gains.size else 0.0

    def gain_capture(self) -> float:
        """Fraction of the oracle's aggregate gain the overlay realized.

        1.0 means the online overlay matched the paper's offline oracle;
        0.0 means it captured nothing.
        """
        oracle = self._finite([max(o.oracle_gain_ms, 0.0) for o in self.outcomes])
        overlay = self._finite([o.overlay_gain_ms for o in self.outcomes])
        total_oracle = float(oracle.sum())
        if total_oracle <= 0:
            return 0.0
        return float(overlay.sum()) / total_oracle


class OverlayNetwork:
    """A Detour-style measurement-and-relay overlay."""

    def __init__(
        self,
        topo: Topology,
        conditions: NetworkConditions,
        hosts: list[str],
        *,
        resolver: PathResolver | None = None,
        probe_interval_s: float = 120.0,
        ewma_alpha: float = 0.3,
        hysteresis: float = 0.1,
        max_relays: int = 1,
        clip_factor: float | None = 3.0,
        seed: int = 0,
    ) -> None:
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        self._topo = topo
        self._resolver = resolver or PathResolver(topo)
        self.hosts = list(hosts)
        self.state = OverlayState(
            self.hosts, alpha=ewma_alpha, clip_factor=clip_factor
        )
        self.router = OverlayRouter(
            self.state, hysteresis=hysteresis, max_relays=max_relays
        )
        self.probe_interval_s = probe_interval_s
        self._rng = np.random.default_rng((seed, 0x0E41A7))
        pairs = [
            (a, b) for a, b in itertools.permutations(self.hosts, 2)
        ]
        self._pair_index = {pair: i for i, pair in enumerate(pairs)}
        self._sampler = PathSampler(
            conditions,
            [self._resolver.resolve_round_trip(a, b) for a, b in pairs],
        )
        self._last_probe_t: float | None = None

    # -- measurement ----------------------------------------------------------

    def probe_all(self, t: float) -> None:
        """One probe round: measure every ordered pair once at time ``t``."""
        batch = self._sampler.probe(t, self._rng)
        for pair, idx in self._pair_index.items():
            self.state.record_probe(pair, float(batch.rtt_ms[idx]))
        self._last_probe_t = t
        obs.count("overlay.probe_rounds")

    def warm_up(self, t0: float, rounds: int = 5) -> float:
        """Run ``rounds`` probe rounds before ``t0``; returns ``t0``."""
        for k in range(rounds, 0, -1):
            self.probe_all(t0 - k * self.probe_interval_s)
        return t0

    def advance_to(self, t: float) -> None:
        """Run any probe rounds scheduled before ``t``."""
        if self._last_probe_t is None:
            self.warm_up(t)
            return
        while self._last_probe_t + self.probe_interval_s <= t:
            self.probe_all(self._last_probe_t + self.probe_interval_s)

    # -- delivery -------------------------------------------------------------

    def _actual_rtt(self, pair: Pair, view) -> float:
        """Expected actual RTT of one leg under ``view`` (no probe noise)."""
        idx = self._pair_index[pair]
        return float(view.prop[idx] + view.qsum[idx])

    def send_flow(self, src: str, dst: str, t: float) -> FlowOutcome:
        """Route one flow at time ``t`` and evaluate the choice.

        Raises:
            KeyError: if either host is not an overlay member.
        """
        self.advance_to(t)
        route = self.router.select(src, dst)
        # One exact-time view serves every leg comparison of this flow
        # (direct, overlay, and all oracle candidates).
        view = self._sampler.view(t)
        direct = self._actual_rtt((src, dst), view)
        overlay = sum(self._actual_rtt(leg, view) for leg in route.legs) if not route.is_direct else direct
        oracle = direct
        for mid in self.hosts:
            if mid in (src, dst):
                continue
            candidate = self._actual_rtt((src, mid), view) + self._actual_rtt((mid, dst), view)
            oracle = min(oracle, candidate)
        return FlowOutcome(
            t=t,
            src=src,
            dst=dst,
            route=route,
            direct_rtt_ms=direct,
            overlay_rtt_ms=overlay,
            oracle_rtt_ms=oracle,
        )

    def evaluate(
        self,
        t0: float,
        duration_s: float,
        n_flows: int,
        *,
        warm_up_rounds: int = 5,
    ) -> OverlayEvaluation:
        """Run the overlay for a period, sending random evaluation flows.

        Args:
            t0: Start time.
            duration_s: Evaluation window length.
            n_flows: Number of random (src, dst, t) flows to route.
            warm_up_rounds: Probe rounds executed before ``t0``.
        """
        if n_flows <= 0:
            raise ValueError("n_flows must be positive")
        with obs.span("overlay.evaluate") as sp:
            sp.set("flows", n_flows)
            sp.set("warm_up_rounds", warm_up_rounds)
            self.warm_up(t0, rounds=warm_up_rounds)
            times = np.sort(
                self._rng.uniform(t0, t0 + duration_s, size=n_flows)
            )
            evaluation = OverlayEvaluation()
            for t in times:
                src, dst = self._rng.choice(
                    len(self.hosts), size=2, replace=False
                )
                evaluation.outcomes.append(
                    self.send_flow(self.hosts[src], self.hosts[dst], float(t))
                )
            obs.count("overlay.flows", n_flows)
        return evaluation

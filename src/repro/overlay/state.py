"""Overlay measurement state: EWMA path-quality estimates.

An overlay node continuously probes its peers and keeps exponentially
weighted moving averages of RTT and loss per ordered pair.  This is the
online analog of the paper's long-term time averages — deliberately
simple, because the point of the overlay evaluation is to ask how much of
the paper's *oracle* gain survives estimation lag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

Pair = tuple[str, str]


@dataclass(slots=True)
class LinkEstimate:
    """EWMA estimates for one ordered overlay link.

    Attributes:
        rtt_ms: Smoothed round-trip time; NaN until the first success.
        loss: Smoothed loss indicator in [0, 1].
        samples: Number of probe results folded in.
    """

    rtt_ms: float = math.nan
    loss: float = 0.0
    samples: int = 0

    @property
    def usable(self) -> bool:
        """Whether the link has at least one successful RTT sample."""
        return not math.isnan(self.rtt_ms)


class OverlayState:
    """Per-pair EWMA estimates for a full overlay mesh."""

    def __init__(
        self,
        hosts: list[str],
        *,
        alpha: float = 0.3,
        clip_factor: float | None = 3.0,
    ) -> None:
        """
        Args:
            hosts: Overlay membership.
            alpha: EWMA weight of the newest sample, in (0, 1].
            clip_factor: Robustness clip — an RTT sample larger than
                ``clip_factor`` times the current estimate is clipped to
                that bound before the update, so single heavy-tail probes
                (route flaps, router stalls) cannot whipsaw route
                selection.  None disables clipping.
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if clip_factor is not None and clip_factor <= 1.0:
            raise ValueError(f"clip_factor must exceed 1, got {clip_factor}")
        if len(hosts) < 2:
            raise ValueError("an overlay needs at least two hosts")
        self.hosts = list(hosts)
        self.alpha = alpha
        self.clip_factor = clip_factor
        self._links: dict[Pair, LinkEstimate] = {
            (a, b): LinkEstimate()
            for a in hosts
            for b in hosts
            if a != b
        }

    def record_probe(self, pair: Pair, rtt_ms: float) -> None:
        """Fold one probe result in; ``rtt_ms`` is NaN for a lost probe."""
        est = self._links[pair]
        lost = math.isnan(rtt_ms)
        a = self.alpha
        est.loss = (1 - a) * est.loss + a * (1.0 if lost else 0.0)
        if not lost:
            if est.usable:
                sample = rtt_ms
                if self.clip_factor is not None:
                    sample = min(sample, self.clip_factor * est.rtt_ms)
                est.rtt_ms = (1 - a) * est.rtt_ms + a * sample
            else:
                est.rtt_ms = rtt_ms
        est.samples += 1

    def reset_pair(self, pair: Pair) -> None:
        """Forget a pair's estimate (fresh :class:`LinkEstimate`).

        Used when the underlying path changes identity — e.g. a detour
        leg heals after an outage — so estimates taken on the old path
        cannot poison selection on the new one.

        Raises:
            KeyError: if the pair is not in the overlay.
        """
        if pair not in self._links:
            raise KeyError(pair)
        self._links[pair] = LinkEstimate()

    def estimate(self, pair: Pair) -> LinkEstimate:
        """Current estimate for an ordered pair.

        Raises:
            KeyError: if the pair is not in the overlay.
        """
        return self._links[pair]

    def usable_pairs(self) -> list[Pair]:
        """Ordered pairs with at least one successful RTT sample."""
        return sorted(p for p, e in self._links.items() if e.usable)

"""Overlay measurement state: EWMA path-quality estimates.

An overlay node continuously probes its peers and keeps exponentially
weighted moving averages of RTT and loss per ordered pair.  This is the
online analog of the paper's long-term time averages — deliberately
simple, because the point of the overlay evaluation is to ask how much of
the paper's *oracle* gain survives estimation lag.

Two storage backends share one semantics.  Small overlays keep a dict of
:class:`LinkEstimate` objects (cheap, and the historical layout the
replay gates were recorded against).  At :data:`ARRAY_BACKEND_MIN_HOSTS`
hosts and up the mesh switches to three dense ``(n, n)`` numpy arrays —
an n-host mesh has n·(n-1) ordered pairs, and eagerly allocating a
million Python objects for a 1000-host overlay on a scale-preset
topology would dwarf the topology itself.  The EWMA arithmetic is done
in Python floats either way, so the two backends are bit-identical; the
differential test is ``tests/overlay/test_state_backends.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

Pair = tuple[str, str]

#: Host count at which OverlayState switches from the dict backend to
#: dense numpy arrays.  Below this the dict is smaller and faster.
ARRAY_BACKEND_MIN_HOSTS = 64


@dataclass(slots=True)
class LinkEstimate:
    """EWMA estimates for one ordered overlay link.

    Attributes:
        rtt_ms: Smoothed round-trip time; NaN until the first success.
        loss: Smoothed loss indicator in [0, 1].
        samples: Number of probe results folded in.
    """

    rtt_ms: float = math.nan
    loss: float = 0.0
    samples: int = 0

    @property
    def usable(self) -> bool:
        """Whether the link has at least one successful RTT sample."""
        return not math.isnan(self.rtt_ms)


class OverlayState:
    """Per-pair EWMA estimates for a full overlay mesh."""

    def __init__(
        self,
        hosts: list[str],
        *,
        alpha: float = 0.3,
        clip_factor: float | None = 3.0,
    ) -> None:
        """
        Args:
            hosts: Overlay membership.
            alpha: EWMA weight of the newest sample, in (0, 1].
            clip_factor: Robustness clip — an RTT sample larger than
                ``clip_factor`` times the current estimate is clipped to
                that bound before the update, so single heavy-tail probes
                (route flaps, router stalls) cannot whipsaw route
                selection.  None disables clipping.
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if clip_factor is not None and clip_factor <= 1.0:
            raise ValueError(f"clip_factor must exceed 1, got {clip_factor}")
        if len(hosts) < 2:
            raise ValueError("an overlay needs at least two hosts")
        self.hosts = list(hosts)
        self.alpha = alpha
        self.clip_factor = clip_factor
        self._array_backend = len(self.hosts) >= ARRAY_BACKEND_MIN_HOSTS
        if self._array_backend:
            self._idx = {h: i for i, h in enumerate(self.hosts)}
            n = len(self.hosts)
            self._rtt = np.full((n, n), np.nan, dtype=np.float64)
            self._loss = np.zeros((n, n), dtype=np.float64)
            self._samples = np.zeros((n, n), dtype=np.int64)
            self._links = {}
        else:
            self._links: dict[Pair, LinkEstimate] = {
                (a, b): LinkEstimate()
                for a in hosts
                for b in hosts
                if a != b
            }

    def _pair_index(self, pair: Pair) -> tuple[int, int]:
        """Array coordinates for an ordered pair (KeyError like the dict)."""
        a, b = pair
        i = self._idx.get(a)
        j = self._idx.get(b)
        if i is None or j is None or i == j:
            raise KeyError(pair)
        return i, j

    def record_probe(self, pair: Pair, rtt_ms: float) -> None:
        """Fold one probe result in; ``rtt_ms`` is NaN for a lost probe.

        Both backends run the identical Python-float arithmetic; the
        arrays are storage only, so results are bit-for-bit equal.
        """
        lost = math.isnan(rtt_ms)
        a = self.alpha
        if self._array_backend:
            i, j = self._pair_index(pair)
            cur_rtt = float(self._rtt[i, j])
            self._loss[i, j] = (1 - a) * float(self._loss[i, j]) + a * (
                1.0 if lost else 0.0
            )
            if not lost:
                if math.isnan(cur_rtt):
                    self._rtt[i, j] = rtt_ms
                else:
                    sample = rtt_ms
                    if self.clip_factor is not None:
                        sample = min(sample, self.clip_factor * cur_rtt)
                    self._rtt[i, j] = (1 - a) * cur_rtt + a * sample
            self._samples[i, j] += 1
            return
        est = self._links[pair]
        est.loss = (1 - a) * est.loss + a * (1.0 if lost else 0.0)
        if not lost:
            if est.usable:
                sample = rtt_ms
                if self.clip_factor is not None:
                    sample = min(sample, self.clip_factor * est.rtt_ms)
                est.rtt_ms = (1 - a) * est.rtt_ms + a * sample
            else:
                est.rtt_ms = rtt_ms
        est.samples += 1

    def reset_pair(self, pair: Pair) -> None:
        """Forget a pair's estimate (fresh :class:`LinkEstimate`).

        Used when the underlying path changes identity — e.g. a detour
        leg heals after an outage — so estimates taken on the old path
        cannot poison selection on the new one.

        Raises:
            KeyError: if the pair is not in the overlay.
        """
        if self._array_backend:
            i, j = self._pair_index(pair)
            self._rtt[i, j] = np.nan
            self._loss[i, j] = 0.0
            self._samples[i, j] = 0
            return
        if pair not in self._links:
            raise KeyError(pair)
        self._links[pair] = LinkEstimate()

    def estimate(self, pair: Pair) -> LinkEstimate:
        """Current estimate for an ordered pair.

        Raises:
            KeyError: if the pair is not in the overlay.
        """
        if self._array_backend:
            i, j = self._pair_index(pair)
            return LinkEstimate(
                rtt_ms=float(self._rtt[i, j]),
                loss=float(self._loss[i, j]),
                samples=int(self._samples[i, j]),
            )
        return self._links[pair]

    def usable_pairs(self) -> list[Pair]:
        """Ordered pairs with at least one successful RTT sample."""
        if self._array_backend:
            ii, jj = np.nonzero(~np.isnan(self._rtt))
            return sorted(
                (self.hosts[int(i)], self.hosts[int(j)])
                for i, j in zip(ii, jj)
            )
        return sorted(p for p, e in self._links.items() if e.usable)

"""Overlay route selection with hysteresis.

Given the overlay's current EWMA estimates, choose how to deliver a flow:
directly, or relayed through up to ``max_relays`` overlay hosts.  The
direct path is sticky — the overlay only deviates when the estimated
alternate beats the direct estimate by the hysteresis margin, damping the
route oscillations the original ARPANET delay-based routing suffered from
(paper §3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.overlay.state import OverlayState, Pair


@dataclass(frozen=True, slots=True)
class OverlayRoute:
    """A selected overlay route.

    Attributes:
        src: Source host.
        dst: Destination host.
        relays: Intermediate overlay hosts (empty = direct).
        estimated_rtt_ms: EWMA-estimated RTT of the chosen route.
    """

    src: str
    dst: str
    relays: tuple[str, ...]
    estimated_rtt_ms: float

    @property
    def is_direct(self) -> bool:
        """Whether the route uses no relay."""
        return not self.relays

    @property
    def legs(self) -> tuple[Pair, ...]:
        """The ordered overlay links the route traverses."""
        nodes = (self.src, *self.relays, self.dst)
        return tuple(zip(nodes, nodes[1:]))


class OverlayRouter:
    """Selects routes from an :class:`OverlayState`."""

    def __init__(
        self,
        state: OverlayState,
        *,
        hysteresis: float = 0.1,
        max_relays: int = 1,
        loss_penalty_ms: float = 200.0,
    ) -> None:
        """
        Args:
            state: Shared estimate store.
            hysteresis: Required fractional improvement of an alternate's
                estimate over the direct estimate before deviating.
            max_relays: Maximum relay hosts per route (1 = Detour-style
                single deflection; 2 adds two-relay paths).
            loss_penalty_ms: Weight converting estimated loss into an RTT
                penalty when comparing routes (a crude composite of the
                paper's two metrics).
        """
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        if max_relays not in (1, 2):
            raise ValueError("max_relays must be 1 or 2")
        self.state = state
        self.hysteresis = hysteresis
        self.max_relays = max_relays
        self.loss_penalty_ms = loss_penalty_ms

    def _cost(self, pair: Pair) -> float:
        est = self.state.estimate(pair)
        if not est.usable:
            return math.inf
        return est.rtt_ms + self.loss_penalty_ms * est.loss

    def select(self, src: str, dst: str) -> OverlayRoute:
        """Choose the route for one flow under the current estimates.

        Falls back to direct when estimates are missing or no alternate
        clears the hysteresis bar.
        """
        direct_cost = self._cost((src, dst))
        direct_est = self.state.estimate((src, dst))
        best_relays: tuple[str, ...] = ()
        best_cost = math.inf
        hosts = self.state.hosts
        for mid in hosts:
            if mid in (src, dst):
                continue
            cost = self._cost((src, mid)) + self._cost((mid, dst))
            if cost < best_cost:
                best_cost, best_relays = cost, (mid,)
            if self.max_relays >= 2:
                for mid2 in hosts:
                    if mid2 in (src, dst, mid):
                        continue
                    cost2 = (
                        self._cost((src, mid))
                        + self._cost((mid, mid2))
                        + self._cost((mid2, dst))
                    )
                    if cost2 < best_cost:
                        best_cost, best_relays = cost2, (mid, mid2)
        use_alternate = (
            math.isfinite(best_cost)
            and best_cost < direct_cost * (1.0 - self.hysteresis)
        )
        if use_alternate:
            rtt = sum(
                self.state.estimate(leg).rtt_ms
                for leg in zip((src, *best_relays), (*best_relays, dst))
            )
            return OverlayRoute(
                src=src, dst=dst, relays=best_relays, estimated_rtt_ms=rtt
            )
        return OverlayRoute(
            src=src,
            dst=dst,
            relays=(),
            estimated_rtt_ms=direct_est.rtt_ms if direct_est.usable else math.nan,
        )

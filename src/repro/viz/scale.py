"""Axis scales and tick generation for the chart renderer.

Self-contained (no matplotlib): the repository renders every figure it
reproduces to SVG and ASCII with this module, so the reproduction is
inspectable anywhere Python runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class ScaleError(ValueError):
    """Raised on invalid scale configuration."""


@dataclass(frozen=True, slots=True)
class Ticks:
    """Tick positions and labels for one axis."""

    positions: tuple[float, ...]
    labels: tuple[str, ...]


def nice_number(value: float, *, round_down: bool = False) -> float:
    """The closest 'nice' number (1, 2, or 5 times a power of ten).

    Args:
        value: A positive quantity (e.g. a raw tick step).
        round_down: Choose the nice number below ``value`` instead of the
            nearest.

    Raises:
        ScaleError: for non-positive input.
    """
    if value <= 0 or not math.isfinite(value):
        raise ScaleError(f"nice_number needs a positive finite value, got {value}")
    exponent = math.floor(math.log10(value))
    fraction = value / (10 ** exponent)
    if round_down:
        if fraction < 2:
            nice = 1.0
        elif fraction < 5:
            nice = 2.0
        else:
            nice = 5.0
    else:
        if fraction < 1.5:
            nice = 1.0
        elif fraction < 3.5:
            nice = 2.0
        elif fraction < 7.5:
            nice = 5.0
        else:
            nice = 10.0
    return nice * (10 ** exponent)


def _format_tick(value: float, step: float) -> str:
    if step >= 1:
        if abs(value) >= 10000:
            return f"{value:g}"
        return f"{value:.0f}"
    decimals = max(0, -int(math.floor(math.log10(step))))
    return f"{value:.{decimals}f}"


class LinearScale:
    """Maps a data interval onto a pixel (or column) interval."""

    def __init__(self, lo: float, hi: float, out_lo: float, out_hi: float) -> None:
        """
        Raises:
            ScaleError: if the data interval is empty or not finite.
        """
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise ScaleError(f"scale domain must be finite, got [{lo}, {hi}]")
        if hi <= lo:
            # Degenerate domain: widen symmetrically so rendering works.
            pad = max(abs(lo) * 0.1, 1.0)
            lo, hi = lo - pad, hi + pad
        self.lo = lo
        self.hi = hi
        self.out_lo = out_lo
        self.out_hi = out_hi

    def __call__(self, value: float) -> float:
        """Map a data value to output coordinates (clamped)."""
        frac = (value - self.lo) / (self.hi - self.lo)
        frac = min(max(frac, 0.0), 1.0)
        return self.out_lo + frac * (self.out_hi - self.out_lo)

    def ticks(self, target_count: int = 6) -> Ticks:
        """Generate 'nice' ticks covering the domain.

        Raises:
            ScaleError: if ``target_count`` < 2.
        """
        if target_count < 2:
            raise ScaleError("need at least two ticks")
        raw_step = (self.hi - self.lo) / (target_count - 1)
        step = nice_number(raw_step)
        start = math.ceil(self.lo / step) * step
        positions = []
        value = start
        while value <= self.hi + step * 1e-9:
            positions.append(0.0 if abs(value) < step * 1e-9 else value)
            value += step
        if not positions:
            positions = [self.lo, self.hi]
            step = self.hi - self.lo
        labels = tuple(_format_tick(p, step) for p in positions)
        return Ticks(positions=tuple(positions), labels=labels)


def data_range(
    series: list[tuple[float, ...]] | list[list[float]],
    *,
    pad_fraction: float = 0.02,
) -> tuple[float, float]:
    """Common (lo, hi) range over several value sequences, lightly padded.

    Raises:
        ScaleError: when every sequence is empty.
    """
    values = [v for seq in series for v in seq if math.isfinite(v)]
    if not values:
        raise ScaleError("no finite values to scale")
    lo, hi = min(values), max(values)
    pad = (hi - lo) * pad_fraction
    return lo - pad, hi + pad

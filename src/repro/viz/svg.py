"""A minimal SVG chart renderer for CDF curves and scatter plots.

Produces standalone ``.svg`` files with axes, ticks, grid lines, legends,
step-function CDF curves, error bars, and scatter markers — everything
the paper's sixteen figures need, with zero third-party dependencies.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.stats import CDFSeries
from repro.viz.scale import LinearScale, data_range

#: Default curve colors (colorblind-safe-ish rotation).
PALETTE = (
    "#1b6ca8",  # blue
    "#c23b22",  # red
    "#2e8540",  # green
    "#8a4fbe",  # purple
    "#d98c21",  # orange
    "#3c8ea7",  # teal
    "#a23b72",  # magenta
    "#6b6b6b",  # gray
)

#: Dash patterns cycled alongside the palette (paper-style line styles).
DASHES = ("", "6,3", "2,2", "8,3,2,3", "4,4", "1,3")


@dataclass(slots=True)
class ChartStyle:
    """Geometry and typography of a chart."""

    width: int = 640
    height: int = 420
    margin_left: int = 64
    margin_right: int = 18
    margin_top: int = 36
    margin_bottom: int = 52
    font_family: str = "Helvetica, Arial, sans-serif"
    font_size: int = 12
    title_size: int = 14
    grid_color: str = "#dddddd"
    axis_color: str = "#333333"

    @property
    def plot_left(self) -> int:
        return self.margin_left

    @property
    def plot_right(self) -> int:
        return self.width - self.margin_right

    @property
    def plot_top(self) -> int:
        return self.margin_top

    @property
    def plot_bottom(self) -> int:
        return self.height - self.margin_bottom


@dataclass
class SVGChart:
    """Accumulates SVG elements for one chart."""

    title: str
    x_label: str
    y_label: str
    style: ChartStyle = field(default_factory=ChartStyle)
    _elements: list[str] = field(default_factory=list)
    _legend: list[tuple[str, str, str]] = field(default_factory=list)
    _x_scale: LinearScale | None = None
    _y_scale: LinearScale | None = None

    # -- scales -----------------------------------------------------------

    def set_x_range(self, lo: float, hi: float) -> None:
        """Fix the x domain (data units)."""
        self._x_scale = LinearScale(
            lo, hi, self.style.plot_left, self.style.plot_right
        )

    def set_y_range(self, lo: float, hi: float) -> None:
        """Fix the y domain; output is inverted (SVG y grows downward)."""
        self._y_scale = LinearScale(
            lo, hi, self.style.plot_bottom, self.style.plot_top
        )

    def _scales(self) -> tuple[LinearScale, LinearScale]:
        if self._x_scale is None or self._y_scale is None:
            raise RuntimeError("set_x_range/set_y_range before drawing")
        return self._x_scale, self._y_scale

    # -- drawing ----------------------------------------------------------

    def add_step_curve(
        self, xs, ys, label: str, *, color: str | None = None, dash: str | None = None
    ) -> None:
        """A CDF-style step curve through (xs, ys), sorted by x."""
        sx, sy = self._scales()
        index = len(self._legend)
        color = color or PALETTE[index % len(PALETTE)]
        dash = DASHES[index % len(DASHES)] if dash is None else dash
        points: list[str] = []
        prev_y: float | None = None
        for x, y in zip(xs, ys):
            px, py = sx(x), sy(y)
            if prev_y is not None:
                points.append(f"{px:.1f},{prev_y:.1f}")
            points.append(f"{px:.1f},{py:.1f}")
            prev_y = py
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.6"'
            f'{dash_attr} points="{" ".join(points)}"/>'
        )
        self._legend.append((label, color, dash))

    def add_scatter(
        self, xs, ys, label: str, *, color: str | None = None, radius: float = 2.5
    ) -> None:
        """Scatter markers at (xs, ys)."""
        sx, sy = self._scales()
        color = color or PALETTE[len(self._legend) % len(PALETTE)]
        for x, y in zip(xs, ys):
            self._elements.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="{radius}" '
                f'fill="{color}" fill-opacity="0.65"/>'
            )
        self._legend.append((label, color, ""))

    def add_error_bars(self, xs, ys, lows, highs, *, color: str = "#666666") -> None:
        """Horizontal error bars (the paper's Figures 7/8 style)."""
        sx, sy = self._scales()
        for x, y, lo, hi in zip(xs, ys, lows, highs):
            py = sy(y)
            self._elements.append(
                f'<line x1="{sx(lo):.1f}" y1="{py:.1f}" x2="{sx(hi):.1f}" '
                f'y2="{py:.1f}" stroke="{color}" stroke-width="1"/>'
            )
            for end in (lo, hi):
                px = sx(end)
                self._elements.append(
                    f'<line x1="{px:.1f}" y1="{py - 3:.1f}" x2="{px:.1f}" '
                    f'y2="{py + 3:.1f}" stroke="{color}" stroke-width="1"/>'
                )

    def add_vertical_rule(self, x: float, *, color: str = "#999999") -> None:
        """A vertical reference line (e.g. x=0 in improvement CDFs)."""
        sx, _ = self._scales()
        st = self.style
        px = sx(x)
        self._elements.append(
            f'<line x1="{px:.1f}" y1="{st.plot_top}" x2="{px:.1f}" '
            f'y2="{st.plot_bottom}" stroke="{color}" stroke-width="1" '
            f'stroke-dasharray="3,3"/>'
        )

    def add_diagonal(self, *, color: str = "#999999") -> None:
        """The y = x guide line of Figure 16."""
        sx, sy = self._scales()
        lo = max(sx.lo, sy.lo)
        hi = min(sx.hi, sy.hi)
        if hi <= lo:
            return
        self._elements.append(
            f'<line x1="{sx(lo):.1f}" y1="{sy(lo):.1f}" x2="{sx(hi):.1f}" '
            f'y2="{sy(hi):.1f}" stroke="{color}" stroke-width="1" '
            f'stroke-dasharray="5,4"/>'
        )

    # -- output ------------------------------------------------------------

    def _axes(self) -> list[str]:
        st = self.style
        sx, sy = self._scales()
        parts = [
            f'<rect x="{st.plot_left}" y="{st.plot_top}" '
            f'width="{st.plot_right - st.plot_left}" '
            f'height="{st.plot_bottom - st.plot_top}" fill="none" '
            f'stroke="{st.axis_color}" stroke-width="1"/>'
        ]
        x_ticks = sx.ticks()
        for pos, lab in zip(x_ticks.positions, x_ticks.labels):
            px = sx(pos)
            parts.append(
                f'<line x1="{px:.1f}" y1="{st.plot_top}" x2="{px:.1f}" '
                f'y2="{st.plot_bottom}" stroke="{st.grid_color}" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{st.plot_bottom + 16}" '
                f'text-anchor="middle" font-size="{st.font_size}">{lab}</text>'
            )
        y_ticks = sy.ticks()
        for pos, lab in zip(y_ticks.positions, y_ticks.labels):
            py = sy(pos)
            parts.append(
                f'<line x1="{st.plot_left}" y1="{py:.1f}" x2="{st.plot_right}" '
                f'y2="{py:.1f}" stroke="{st.grid_color}" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{st.plot_left - 6}" y="{py + 4:.1f}" '
                f'text-anchor="end" font-size="{st.font_size}">{lab}</text>'
            )
        parts.append(
            f'<text x="{(st.plot_left + st.plot_right) / 2:.0f}" '
            f'y="{st.height - 12}" text-anchor="middle" '
            f'font-size="{st.font_size}">{html.escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="16" y="{(st.plot_top + st.plot_bottom) / 2:.0f}" '
            f'text-anchor="middle" font-size="{st.font_size}" '
            f'transform="rotate(-90 16 {(st.plot_top + st.plot_bottom) / 2:.0f})">'
            f"{html.escape(self.y_label)}</text>"
        )
        parts.append(
            f'<text x="{(st.plot_left + st.plot_right) / 2:.0f}" y="20" '
            f'text-anchor="middle" font-size="{st.title_size}" '
            f'font-weight="bold">{html.escape(self.title)}</text>'
        )
        return parts

    def _legend_elements(self) -> list[str]:
        st = self.style
        parts = []
        x0 = st.plot_left + 12
        y0 = st.plot_top + 14
        for i, (label, color, dash) in enumerate(self._legend):
            y = y0 + i * 16
            dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
            parts.append(
                f'<line x1="{x0}" y1="{y - 4}" x2="{x0 + 24}" y2="{y - 4}" '
                f'stroke="{color}" stroke-width="2"{dash_attr}/>'
            )
            parts.append(
                f'<text x="{x0 + 30}" y="{y}" font-size="{st.font_size}">'
                f"{html.escape(label)}</text>"
            )
        return parts

    def render(self) -> str:
        """The complete SVG document."""
        st = self.style
        body = "\n".join([*self._axes(), *self._elements, *self._legend_elements()])
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{st.width}" '
            f'height="{st.height}" viewBox="0 0 {st.width} {st.height}" '
            f'font-family="{st.font_family}">\n'
            f'<rect width="{st.width}" height="{st.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        """Write the SVG to disk; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path


def cdf_chart(
    series: list[CDFSeries],
    *,
    title: str,
    x_label: str,
    x_range: tuple[float, float] | None = None,
    mark_zero: bool = True,
) -> SVGChart:
    """Build a paper-style CDF chart from :class:`CDFSeries` curves.

    Raises:
        ValueError: if no series are given.
    """
    if not series:
        raise ValueError("cdf_chart needs at least one series")
    chart = SVGChart(title=title, x_label=x_label, y_label="Fraction of paths")
    if x_range is None:
        lo, hi = data_range([tuple(s.x) for s in series])
    else:
        lo, hi = x_range
    chart.set_x_range(lo, hi)
    chart.set_y_range(0.0, 1.0)
    if mark_zero and lo < 0.0 < hi:
        chart.add_vertical_rule(0.0)
    for s in series:
        trimmed = s.trimmed(lo, hi)
        if trimmed.x.size:
            chart.add_step_curve(trimmed.x, trimmed.y, s.label or "series")
    return chart

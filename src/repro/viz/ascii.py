"""ASCII chart rendering for terminals.

The benchmark harness prints its series; these helpers turn a set of CDF
curves into a compact character plot so the figure's shape is visible
directly in test output, with one glyph per curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import CDFSeries
from repro.viz.scale import LinearScale, data_range

#: Glyphs assigned to successive curves.
GLYPHS = "*o+x#@%&"


def ascii_cdf(
    series: list[CDFSeries],
    *,
    width: int = 72,
    height: int = 20,
    x_range: tuple[float, float] | None = None,
    title: str = "",
) -> str:
    """Render CDF curves as an ASCII plot.

    Args:
        series: Curves to draw (first curve gets ``*``, second ``o`` ...).
        width: Plot width in characters (excluding the y-axis gutter).
        height: Plot height in rows.
        x_range: Data range of the x axis; derived from the data if None.
        title: Optional heading line.

    Raises:
        ValueError: when no series are supplied.
    """
    if not series:
        raise ValueError("ascii_cdf needs at least one series")
    if width < 20 or height < 5:
        raise ValueError("plot must be at least 20x5 characters")
    if x_range is None:
        lo, hi = data_range([tuple(s.x) for s in series])
    else:
        lo, hi = x_range
    x_scale = LinearScale(lo, hi, 0, width - 1)
    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        glyph = GLYPHS[idx % len(GLYPHS)]
        xs = np.clip(s.x, lo, hi)
        for x, y in zip(xs, s.y):
            col = int(round(x_scale(float(x))))
            row = height - 1 - int(round(y * (height - 1)))
            grid[row][col] = glyph
    # Zero marker column.
    if lo < 0.0 < hi:
        zero_col = int(round(x_scale(0.0)))
        for row in range(height):
            if grid[row][zero_col] == " ":
                grid[row][zero_col] = "|"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        label = f"{frac:4.2f} |" if i % max(height // 5, 1) == 0 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"{lo:.3g}"
    right = f"{hi:.3g}"
    pad = max(width - len(left) - len(right), 1)
    lines.append("      " + left + " " * pad + right)
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {s.label or f'series {i}'}"
        for i, s in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_scatter(
    xs,
    ys,
    *,
    width: int = 72,
    height: int = 22,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render a scatter plot (Figures 14/16 style) as ASCII.

    Raises:
        ValueError: on empty input.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0 or xs.size != ys.size:
        raise ValueError("scatter needs matching non-empty x/y arrays")
    x_lo, x_hi = data_range([tuple(xs)])
    y_lo, y_hi = data_range([tuple(ys)])
    x_scale = LinearScale(x_lo, x_hi, 0, width - 1)
    y_scale = LinearScale(y_lo, y_hi, height - 1, 0)
    grid = [[" "] * width for _ in range(height)]
    # Axes through zero where visible.
    if x_lo < 0.0 < x_hi:
        col = int(round(x_scale(0.0)))
        for row in range(height):
            grid[row][col] = "|"
    if y_lo < 0.0 < y_hi:
        row = int(round(y_scale(0.0)))
        for col in range(width):
            grid[row][col] = "-" if grid[row][col] == " " else "+"
    for x, y in zip(xs, ys):
        col = int(round(x_scale(float(x))))
        row = int(round(y_scale(float(y))))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.extend("  " + "".join(row) for row in grid)
    footer = f"  x: [{x_lo:.3g}, {x_hi:.3g}] {x_label}   y: [{y_lo:.3g}, {y_hi:.3g}] {y_label}"
    lines.append(footer)
    return "\n".join(lines)

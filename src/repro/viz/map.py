"""Geographic topology maps as SVG.

Draws a generated internetwork on an equirectangular projection: cities
sized by how many routers they host, links colored by kind, measurement
hosts highlighted.  Useful for eyeballing that a seeded topology is
geographically sane (the Boulder-via-Johannesburg pathology of an early
calibration was caught exactly this way).
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path

from repro.topology.links import LinkKind
from repro.topology.network import Topology
from repro.viz.scale import LinearScale

#: Stroke colors per link kind.
LINK_COLORS: dict[LinkKind, str] = {
    LinkKind.BACKBONE: "#7c9dbf",
    LinkKind.METRO: "#cccccc",
    LinkKind.EXCHANGE: "#d98c21",
    LinkKind.ACCESS: "#dddddd",
}

#: Draw order: quieter kinds first so exchanges stay visible.
_KIND_ORDER = (LinkKind.ACCESS, LinkKind.METRO, LinkKind.BACKBONE, LinkKind.EXCHANGE)


@dataclass(slots=True)
class MapStyle:
    """Canvas geometry for topology maps."""

    width: int = 900
    height: int = 540
    margin: int = 30
    city_color: str = "#444444"
    host_color: str = "#c23b22"


def topology_map(
    topo: Topology,
    *,
    style: MapStyle | None = None,
    title: str = "",
) -> str:
    """Render the topology to an SVG document string."""
    style = style or MapStyle()
    cities: dict[str, tuple[float, float, int]] = {}
    for router in topo.routers:
        lon, lat = router.city.lon, router.city.lat
        name = router.city.name
        if name in cities:
            cities[name] = (lon, lat, cities[name][2] + 1)
        else:
            cities[name] = (lon, lat, 1)
    if not cities:
        raise ValueError("topology has no routers to draw")
    lons = [c[0] for c in cities.values()]
    lats = [c[1] for c in cities.values()]
    x_scale = LinearScale(
        min(lons) - 3, max(lons) + 3, style.margin, style.width - style.margin
    )
    y_scale = LinearScale(
        min(lats) - 3, max(lats) + 3, style.height - style.margin, style.margin
    )

    def at(city_name: str) -> tuple[float, float]:
        lon, lat, _ = cities[city_name]
        return x_scale(lon), y_scale(lat)

    parts: list[str] = []
    # Inter-city links, grouped by kind for draw order and legibility.
    seen: set[tuple[str, str, str]] = set()
    for kind in _KIND_ORDER:
        for link in topo.links:
            if link.kind is not kind:
                continue
            a = topo.routers[link.u].city.name
            b = topo.routers[link.v].city.name
            if a == b:
                continue
            key = (min(a, b), max(a, b), kind.value)
            if key in seen:
                continue
            seen.add(key)
            x1, y1 = at(a)
            x2, y2 = at(b)
            width = 1.4 if kind is LinkKind.EXCHANGE else 0.7
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
                f'stroke="{LINK_COLORS[kind]}" stroke-width="{width}" '
                f'stroke-opacity="0.6"/>'
            )
    # Cities sized by router count.
    host_cities = {h.city.name for h in topo.hosts}
    for name, (lon, lat, count) in sorted(cities.items()):
        x, y = x_scale(lon), y_scale(lat)
        radius = min(2.0 + count ** 0.5, 9.0)
        color = style.host_color if name in host_cities else style.city_color
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" '
            f'fill="{color}" fill-opacity="0.85"/>'
        )
        if count >= 8 or name in host_cities:
            parts.append(
                f'<text x="{x + radius + 2:.1f}" y="{y + 3:.1f}" '
                f'font-size="9">{html.escape(name)}</text>'
            )
    if title:
        parts.append(
            f'<text x="{style.width / 2:.0f}" y="18" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{html.escape(title)}</text>'
        )
    legend_y = style.height - 12
    legend_x = style.margin
    for kind in (LinkKind.BACKBONE, LinkKind.EXCHANGE):
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y - 4}" x2="{legend_x + 20}" '
            f'y2="{legend_y - 4}" stroke="{LINK_COLORS[kind]}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 24}" y="{legend_y}" font-size="10">'
            f"{kind.value}</text>"
        )
        legend_x += 110
    parts.append(
        f'<circle cx="{legend_x}" cy="{legend_y - 4}" r="4" '
        f'fill="{style.host_color}"/>'
    )
    parts.append(
        f'<text x="{legend_x + 8}" y="{legend_y}" font-size="10">host city</text>'
    )
    body = "\n".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{style.width}" '
        f'height="{style.height}" viewBox="0 0 {style.width} {style.height}" '
        f'font-family="Helvetica, Arial, sans-serif">\n'
        f'<rect width="{style.width}" height="{style.height}" fill="white"/>\n'
        f"{body}\n</svg>\n"
    )


def save_topology_map(
    topo: Topology, path: str | Path, *, title: str = ""
) -> Path:
    """Render and write the map; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(topology_map(topo, title=title))
    return path

"""Dependency-free visualization: SVG and ASCII charts for the figures."""

from repro.viz.ascii import ascii_cdf, ascii_scatter
from repro.viz.map import MapStyle, save_topology_map, topology_map
from repro.viz.scale import LinearScale, ScaleError, Ticks, data_range, nice_number
from repro.viz.svg import ChartStyle, SVGChart, cdf_chart

__all__ = [
    "ChartStyle",
    "LinearScale",
    "MapStyle",
    "SVGChart",
    "ScaleError",
    "Ticks",
    "ascii_cdf",
    "ascii_scatter",
    "cdf_chart",
    "data_range",
    "nice_number",
    "save_topology_map",
    "topology_map",
]

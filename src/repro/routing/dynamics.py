"""Route dynamics: flaps between primary and secondary paths.

Paxson (cited in §2) found Internet paths "generally dominated by a
single route", with a minority of pairs experiencing route fluctuation;
Labovitz et al. tie instability periods to load.  This module adds that
behaviour to the substrate:

* a **secondary path** per ordered pair, resolved by forcing the first
  multi-exchange AS hop onto its second-choice egress (what a BGP-level
  flap at the primary exchange would produce);
* a :class:`RouteFlapModel` that deterministically decides, per pair and
  time, whether the primary or secondary route is in effect — flap
  episodes arrive per-pair as a renewal process derived from counter-based
  hashing, so any query order gives identical answers.

The probe-level consumer of these decisions,
:class:`~repro.netsim.dynamics.DynamicPathSampler`, lives one layer up
in netsim: routing decides which routes exist and when they flap, the
simulator decides what probes experience on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.forwarding import PathResolver, RoundTripPath

#: Length of a flap-evaluation window.  Within one window a pair's active
#: route is fixed; flap episodes are multiples of this granularity.
FLAP_WINDOW_S = 900.0


@dataclass(frozen=True, slots=True)
class RouteFlapModel:
    """Deterministic per-pair route-flap process.

    Attributes:
        flappy_fraction: Fraction of pairs that experience flaps at all
            (Paxson: most paths are stable; a minority fluctuate).
        flap_probability: Per-window probability that a flappy pair sits
            on its secondary route.
        seed: Hash seed (reproducibility).
    """

    flappy_fraction: float = 0.2
    flap_probability: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.flappy_fraction <= 1.0:
            raise ValueError("flappy_fraction must be in [0, 1]")
        if not 0.0 <= self.flap_probability <= 1.0:
            raise ValueError("flap_probability must be in [0, 1]")

    @property
    def window_s(self) -> float:
        """Length of this model's flap-evaluation window, seconds.

        Consumers that cache per-window state
        (:class:`~repro.netsim.dynamics.DynamicPathSampler`) read the
        window length from the model rather than assuming
        :data:`FLAP_WINDOW_S`, so wrapper models (scenario flap storms)
        can declare a finer granularity.
        """
        return FLAP_WINDOW_S

    def _hash01(self, *parts: int) -> float:
        rng = np.random.default_rng((self.seed, 0xF1A9, *parts))
        return float(rng.random())

    def is_flappy(self, pair_index: int) -> bool:
        """Whether this pair ever leaves its primary route."""
        return self._hash01(pair_index) < self.flappy_fraction

    def on_secondary(self, pair_index: int, t: float) -> bool:
        """Whether the pair uses its secondary route at time ``t``."""
        if not self.is_flappy(pair_index):
            return False
        window = int(t // FLAP_WINDOW_S)
        return self._hash01(pair_index, window) < self.flap_probability

    def prevalence(self, pair_index: int, horizon_s: float) -> float:
        """Fraction of windows spent on the primary route over a horizon.

        This is Paxson's "route prevalence" statistic for the pair.
        """
        windows = max(int(horizon_s // FLAP_WINDOW_S), 1)
        on_primary = sum(
            0 if self.on_secondary(pair_index, w * FLAP_WINDOW_S) else 1
            for w in range(windows)
        )
        return on_primary / windows


def resolve_secondary(
    resolver: PathResolver, src: str, dst: str
) -> RoundTripPath:
    """The pair's secondary round trip: first flexible hop demoted.

    Falls back to the primary when no AS hop has an alternative exchange
    (single-homed chains have nothing to flap to).
    """
    return resolver.resolve_round_trip_secondary(src, dst)

"""Route dynamics: flaps between primary and secondary paths.

Paxson (cited in §2) found Internet paths "generally dominated by a
single route", with a minority of pairs experiencing route fluctuation;
Labovitz et al. tie instability periods to load.  This module adds that
behaviour to the substrate:

* a **secondary path** per ordered pair, resolved by forcing the first
  multi-exchange AS hop onto its second-choice egress (what a BGP-level
  flap at the primary exchange would produce);
* a :class:`RouteFlapModel` that deterministically decides, per pair and
  time, whether the primary or secondary route is in effect — flap
  episodes arrive per-pair as a renewal process derived from counter-based
  hashing, so any query order gives identical answers;
* a :class:`DynamicPathSampler` with the same probing interface as
  :class:`~repro.netsim.conditions.PathSampler` that draws each probe
  from whichever route is active.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.conditions import (
    BucketProbeMixin,
    NetworkConditions,
    PathSampler,
    SamplerView,
)
from repro.routing.forwarding import PathResolver, RoundTripPath

#: Length of a flap-evaluation window.  Within one window a pair's active
#: route is fixed; flap episodes are multiples of this granularity.
FLAP_WINDOW_S = 900.0


@dataclass(frozen=True, slots=True)
class RouteFlapModel:
    """Deterministic per-pair route-flap process.

    Attributes:
        flappy_fraction: Fraction of pairs that experience flaps at all
            (Paxson: most paths are stable; a minority fluctuate).
        flap_probability: Per-window probability that a flappy pair sits
            on its secondary route.
        seed: Hash seed (reproducibility).
    """

    flappy_fraction: float = 0.2
    flap_probability: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.flappy_fraction <= 1.0:
            raise ValueError("flappy_fraction must be in [0, 1]")
        if not 0.0 <= self.flap_probability <= 1.0:
            raise ValueError("flap_probability must be in [0, 1]")

    def _hash01(self, *parts: int) -> float:
        rng = np.random.default_rng((self.seed, 0xF1A9, *parts))
        return float(rng.random())

    def is_flappy(self, pair_index: int) -> bool:
        """Whether this pair ever leaves its primary route."""
        return self._hash01(pair_index) < self.flappy_fraction

    def on_secondary(self, pair_index: int, t: float) -> bool:
        """Whether the pair uses its secondary route at time ``t``."""
        if not self.is_flappy(pair_index):
            return False
        window = int(t // FLAP_WINDOW_S)
        return self._hash01(pair_index, window) < self.flap_probability

    def prevalence(self, pair_index: int, horizon_s: float) -> float:
        """Fraction of windows spent on the primary route over a horizon.

        This is Paxson's "route prevalence" statistic for the pair.
        """
        windows = max(int(horizon_s // FLAP_WINDOW_S), 1)
        on_primary = sum(
            0 if self.on_secondary(pair_index, w * FLAP_WINDOW_S) else 1
            for w in range(windows)
        )
        return on_primary / windows


def resolve_secondary(
    resolver: PathResolver, src: str, dst: str
) -> RoundTripPath:
    """The pair's secondary round trip: first flexible hop demoted.

    Falls back to the primary when no AS hop has an alternative exchange
    (single-homed chains have nothing to flap to).
    """
    return resolver.resolve_round_trip_secondary(src, dst)


class DynamicPathSampler(BucketProbeMixin):
    """Samples probes over flapping routes.

    Drop-in replacement for :class:`PathSampler` in the collector: it owns
    two underlying samplers (primary and secondary paths, index-aligned)
    and consults the flap model per (pair, time).  The flap decisions are
    pure functions of (pair, window), so the per-window secondary masks
    and the flappy-pair set are computed once and cached; blended bucket
    views come from the shared :class:`BucketProbeMixin` cache (flap
    windows are whole multiples of the congestion bucket, so a bucket
    never straddles a route change).
    """

    def __init__(
        self,
        conditions: NetworkConditions,
        primaries: list[RoundTripPath],
        secondaries: list[RoundTripPath],
        flap_model: RouteFlapModel,
    ) -> None:
        if len(primaries) != len(secondaries):
            raise ValueError("primary/secondary path lists must align")
        self._primary = PathSampler(conditions, primaries)
        self._secondary = PathSampler(conditions, secondaries)
        self.flap_model = flap_model
        self._flappy: np.ndarray | None = None
        self._mask_cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._primary)

    def _active_mask(self, t: float) -> np.ndarray:
        window = int(t // FLAP_WINDOW_S)
        mask = self._mask_cache.get(window)
        if mask is None:
            if self._flappy is None:
                self._flappy = np.fromiter(
                    (self.flap_model.is_flappy(i) for i in range(len(self))),
                    dtype=bool,
                    count=len(self),
                )
            if len(self._mask_cache) > 256:
                self._mask_cache.clear()
            mask = np.zeros(len(self), dtype=bool)
            window_t = window * FLAP_WINDOW_S
            for i in np.flatnonzero(self._flappy):
                mask[i] = self.flap_model.on_secondary(int(i), window_t)
            self._mask_cache[window] = mask
        return mask

    def prop_delays(self) -> np.ndarray:
        """Primary-route propagation delays (static reference)."""
        return self._primary.prop_delays()

    def view(self, t: float) -> SamplerView:
        """Blended congestion view: per pair, the active route's state."""
        pv = self._primary.view(t)
        sv = self._secondary.view(t)
        mask = self._active_mask(t)
        return SamplerView(
            t=t,
            prop=np.where(mask, sv.prop, pv.prop),
            qsum=np.where(mask, sv.qsum, pv.qsum),
            ploss=np.where(mask, sv.ploss, pv.ploss),
        )

"""Interior gateway protocol: intra-AS shortest-path routing.

Each AS routes internally with its own metric (paper §3): small ASes use
raw hop counts, larger ones use statically configured metrics that track
propagation delay.  This module computes, per AS, all-pairs shortest paths
over the AS's induced router subgraph and exposes cost/path lookups used
by the forwarding layer to pick egress points and expand AS-level routes
into router-level hops.

Two backends implement the lookups:

* **lazy** — the original per-source Dijkstra (binary heap), computed on
  first query per source router.  Cheapest when only a handful of sources
  are ever queried (tiny stub ASes with 2–8 routers).
* **vectorized** — one ``scipy.sparse.csgraph.dijkstra`` call computes the
  whole all-pairs distance/predecessor matrix in C.  Used automatically
  for ASes with at least :data:`VECTOR_MIN_ROUTERS` routers (the
  forwarding layer queries most border routers of every transit AS, so
  the all-pairs cost is amortized immediately).

Both backends agree on every cost; where equal-cost paths exist the
chosen path may differ (both are valid shortest paths — the lazy backend
keeps the first offer within a 1e-12 epsilon, scipy takes the true
minimum).  Nothing downstream depends on equal-cost tie-breaks across
backends; byte-identity CI checks pin each build to a single backend.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.obs import runtime as obs

from repro.topology.asys import IGPStyle
from repro.topology.links import Link
from repro.topology.network import Topology

try:  # scipy is an optional accelerator; the lazy backend needs neither.
    import numpy as _np
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

#: Router count at which an AS switches to the vectorized all-pairs
#: backend.  Below this, per-source lazy Dijkstra wins because most
#: sources are never queried; above it, the forwarding layer touches
#: enough (src, dst) pairs that one C-level all-pairs solve is cheaper.
VECTOR_MIN_ROUTERS = 16


class IGPError(RuntimeError):
    """Raised when an IGP lookup cannot be satisfied."""


def link_metric(link: Link, style: IGPStyle) -> float:
    """IGP metric of a link under the given style.

    Hop-count ASes weigh every link equally; delay-metric ASes use the
    propagation delay (what an operator tuning static metrics to avoid
    high-latency trunks effectively achieves).
    """
    if style is IGPStyle.HOP_COUNT:
        return 1.0
    return link.prop_delay_ms


@dataclass(frozen=True, slots=True)
class IGPPath:
    """A resolved intra-AS path.

    Attributes:
        routers: Router ids from source to destination inclusive.
        links: Link ids between consecutive routers (one fewer than
            ``routers``).
        cost: Total metric cost.
        prop_delay_ms: Total one-way propagation delay along the path.
    """

    routers: tuple[int, ...]
    links: tuple[int, ...]
    cost: float
    prop_delay_ms: float


class IGPTable:
    """All-pairs intra-AS routing state for one AS."""

    def __init__(
        self, topo: Topology, asn: int, *, vectorized: bool | None = None
    ) -> None:
        """
        Args:
            topo: The owning topology.
            asn: The AS whose induced router subgraph this table covers.
            vectorized: Force the all-pairs scipy backend on (True) or off
                (False); None picks automatically by AS size.  Without
                scipy the lazy backend is always used.
        """
        self._topo = topo
        self.asn = asn
        self.style = topo.ases[asn].igp_style
        self._routers = list(topo.routers_of(asn))
        router_set = set(self._routers)
        # Induced subgraph: links whose both endpoints belong to this AS.
        self._adj: dict[int, list[Link]] = {r: [] for r in self._routers}
        for r in self._routers:
            for link in topo.links_of(r):
                if link.other(r) in router_set:
                    self._adj[r].append(link)
        if vectorized is None:
            vectorized = len(self._routers) >= VECTOR_MIN_ROUTERS
        self.vectorized = bool(vectorized) and _HAVE_SCIPY
        # Lazily computed per-source shortest-path trees (lazy backend).
        self._dist: dict[int, dict[int, float]] = {}
        self._pred: dict[int, dict[int, tuple[int, int]]] = {}
        # Lazily computed all-pairs state (vectorized backend).  Stored as
        # plain nested lists: scalar lookups dominate and python-level
        # indexing beats numpy scalar extraction on this access pattern.
        self._idx: dict[int, int] = {r: i for i, r in enumerate(self._routers)}
        self._dist_rows: list[list[float]] | None = None
        self._pred_rows: list[list[int]] | None = None
        self._link_by_pair: dict[tuple[int, int], int] = {}
        # Resolved-path memo: IGPPath objects are immutable and the
        # forwarding layer re-requests the same border-to-border segments
        # for many host pairs.
        self._path_cache: dict[tuple[int, int], IGPPath] = {}

    # -- vectorized backend ------------------------------------------------

    # hotpath
    def _ensure_matrix(self) -> None:
        """Build the all-pairs distance/predecessor matrices once."""
        if self._dist_rows is not None:
            return
        with obs.span("routing.igp.matrix") as sp:
            sp.set("asn", self.asn)
            sp.set("routers", len(self._routers))
            n = len(self._routers)
            # Parallel links collapse to the (metric, link_id)-minimal one
            # per directed pair *before* building the CSR — coo/csr
            # construction sums duplicate entries, which would corrupt
            # the metric.
            best_edge: dict[tuple[int, int], tuple[float, int]] = {}
            for r in self._routers:
                i = self._idx[r]
                for link in self._adj[r]:
                    j = self._idx[link.other(r)]
                    cand = (link_metric(link, self.style), link.link_id)
                    prev = best_edge.get((i, j))
                    if prev is None or cand < prev:
                        best_edge[(i, j)] = cand
            edges = sorted(best_edge.items())
            rows = _np.fromiter((ij[0] for ij, _ in edges), dtype=_np.int32, count=len(edges))
            cols = _np.fromiter((ij[1] for ij, _ in edges), dtype=_np.int32, count=len(edges))
            data = _np.fromiter((m for _, (m, _lid) in edges), dtype=_np.float64, count=len(edges))
            graph = _csr_matrix((data, (rows, cols)), shape=(n, n))
            dist, pred = _sp_dijkstra(graph, directed=True, return_predecessors=True)
            self._dist_rows = dist.tolist()
            self._pred_rows = pred.tolist()
            self._link_by_pair = {ij: lid for ij, (_m, lid) in edges}
        obs.count("routing.igp.matrix_builds")

    def _vector_path(self, src: int, dst: int) -> IGPPath:
        self._ensure_matrix()
        assert self._dist_rows is not None and self._pred_rows is not None
        i = self._idx[src]
        j = self._idx.get(dst)
        if j is None or math.isinf(self._dist_rows[i][j]):
            raise IGPError(f"router {dst} unreachable from {src} within AS{self.asn}")
        routers = [dst]
        links: list[int] = []
        pred_row = self._pred_rows[i]
        cur = j
        while cur != i:
            prev = pred_row[cur]
            links.append(self._link_by_pair[(prev, cur)])
            routers.append(self._routers[prev])
            cur = prev
        routers.reverse()
        links.reverse()
        prop = sum(self._topo.links[k].prop_delay_ms for k in links)
        return IGPPath(
            routers=tuple(routers),
            links=tuple(links),
            cost=self._dist_rows[i][j],
            prop_delay_ms=prop,
        )

    # -- lazy backend ------------------------------------------------------

    def _ensure_source(self, src: int) -> None:
        if src in self._dist:
            return
        dist: dict[int, float] = {src: 0.0}
        pred: dict[int, tuple[int, int]] = {}
        heap: list[tuple[float, int]] = [(0.0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for link in self._adj[u]:
                v = link.other(u)
                nd = d + link_metric(link, self.style)
                if nd < dist.get(v, float("inf")) - 1e-12:
                    dist[v] = nd
                    pred[v] = (u, link.link_id)
                    heapq.heappush(heap, (nd, v))
        self._dist[src] = dist
        self._pred[src] = pred

    def _lazy_path(self, src: int, dst: int) -> IGPPath:
        self._ensure_source(src)
        if dst not in self._dist[src]:
            raise IGPError(f"router {dst} unreachable from {src} within AS{self.asn}")
        routers = [dst]
        links: list[int] = []
        node = dst
        pred = self._pred[src]
        while node != src:
            prev, link_id = pred[node]
            links.append(link_id)
            routers.append(prev)
            node = prev
        routers.reverse()
        links.reverse()
        prop = sum(self._topo.links[i].prop_delay_ms for i in links)
        return IGPPath(
            routers=tuple(routers),
            links=tuple(links),
            cost=self._dist[src][dst],
            prop_delay_ms=prop,
        )

    # -- lookups -----------------------------------------------------------

    def _check_source(self, src: int) -> None:
        if src not in self._adj:
            raise IGPError(f"router {src} is not in AS{self.asn}")

    def cost(self, src: int, dst: int) -> float:
        """Metric cost from ``src`` to ``dst``; ``inf`` if unreachable."""
        self._check_source(src)
        if self.vectorized:
            self._ensure_matrix()
            assert self._dist_rows is not None
            j = self._idx.get(dst)
            if j is None:
                return float("inf")
            return self._dist_rows[self._idx[src]][j]
        self._ensure_source(src)
        return self._dist[src].get(dst, float("inf"))

    def reachable(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` inside this AS."""
        return not math.isinf(self.cost(src, dst))

    def path(self, src: int, dst: int) -> IGPPath:
        """Shortest intra-AS path from ``src`` to ``dst``.

        Raises:
            IGPError: if ``src`` is not in this AS or ``dst`` is
                unreachable from it.
        """
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        self._check_source(src)
        if self.vectorized:
            path = self._vector_path(src, dst)
        else:
            path = self._lazy_path(src, dst)
        self._path_cache[(src, dst)] = path
        return path


class IGPSuite:
    """Lazy per-AS collection of :class:`IGPTable` objects.

    Tables are held in the topology's routing cache, so suites built over
    the same topology (one per :class:`~repro.routing.forwarding.PathResolver`)
    share them instead of recomputing identical shortest-path state; the
    cache is cleared when the topology is mutated.
    """

    def __init__(self, topo: Topology) -> None:
        self._topo = topo
        self._tables: dict[int, IGPTable] = topo.routing_cache("igp")

    def table(self, asn: int) -> IGPTable:
        """The IGP table for ``asn``, building it on first use.

        Raises:
            IGPError: if the ASN is unknown.
        """
        table = self._tables.get(asn)
        if table is None:
            if asn not in self._topo.ases:
                raise IGPError(f"unknown ASN {asn}")
            with obs.span("routing.igp.table") as sp:
                sp.set("asn", asn)
                table = IGPTable(self._topo, asn)
                sp.set("vectorized", table.vectorized)
                self._tables[asn] = table
            obs.count("routing.igp.tables")
        return table

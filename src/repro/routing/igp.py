"""Interior gateway protocol: intra-AS shortest-path routing.

Each AS routes internally with its own metric (paper §3): small ASes use
raw hop counts, larger ones use statically configured metrics that track
propagation delay.  This module computes, per AS, all-pairs shortest paths
over the AS's induced router subgraph and exposes cost/path lookups used
by the forwarding layer to pick egress points and expand AS-level routes
into router-level hops.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.obs import runtime as obs

from repro.topology.asys import IGPStyle
from repro.topology.links import Link
from repro.topology.network import Topology


class IGPError(RuntimeError):
    """Raised when an IGP lookup cannot be satisfied."""


def link_metric(link: Link, style: IGPStyle) -> float:
    """IGP metric of a link under the given style.

    Hop-count ASes weigh every link equally; delay-metric ASes use the
    propagation delay (what an operator tuning static metrics to avoid
    high-latency trunks effectively achieves).
    """
    if style is IGPStyle.HOP_COUNT:
        return 1.0
    return link.prop_delay_ms


@dataclass(frozen=True, slots=True)
class IGPPath:
    """A resolved intra-AS path.

    Attributes:
        routers: Router ids from source to destination inclusive.
        links: Link ids between consecutive routers (one fewer than
            ``routers``).
        cost: Total metric cost.
        prop_delay_ms: Total one-way propagation delay along the path.
    """

    routers: tuple[int, ...]
    links: tuple[int, ...]
    cost: float
    prop_delay_ms: float


class IGPTable:
    """All-pairs intra-AS routing state for one AS."""

    def __init__(self, topo: Topology, asn: int) -> None:
        self._topo = topo
        self.asn = asn
        self.style = topo.ases[asn].igp_style
        self._routers = list(topo.routers_of(asn))
        router_set = set(self._routers)
        # Induced subgraph: links whose both endpoints belong to this AS.
        self._adj: dict[int, list[Link]] = {r: [] for r in self._routers}
        for r in self._routers:
            for link in topo.links_of(r):
                if link.other(r) in router_set:
                    self._adj[r].append(link)
        # Lazily computed per-source shortest-path trees.
        self._dist: dict[int, dict[int, float]] = {}
        self._pred: dict[int, dict[int, tuple[int, int]]] = {}

    def _ensure_source(self, src: int) -> None:
        if src in self._dist:
            return
        if src not in self._adj:
            raise IGPError(f"router {src} is not in AS{self.asn}")
        dist: dict[int, float] = {src: 0.0}
        pred: dict[int, tuple[int, int]] = {}
        heap: list[tuple[float, int]] = [(0.0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for link in self._adj[u]:
                v = link.other(u)
                nd = d + link_metric(link, self.style)
                if nd < dist.get(v, float("inf")) - 1e-12:
                    dist[v] = nd
                    pred[v] = (u, link.link_id)
                    heapq.heappush(heap, (nd, v))
        self._dist[src] = dist
        self._pred[src] = pred

    def cost(self, src: int, dst: int) -> float:
        """Metric cost from ``src`` to ``dst``; ``inf`` if unreachable."""
        self._ensure_source(src)
        return self._dist[src].get(dst, float("inf"))

    def reachable(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` inside this AS."""
        return self.cost(src, dst) != float("inf")

    def path(self, src: int, dst: int) -> IGPPath:
        """Shortest intra-AS path from ``src`` to ``dst``.

        Raises:
            IGPError: if ``dst`` is unreachable from ``src``.
        """
        self._ensure_source(src)
        if dst not in self._dist[src]:
            raise IGPError(f"router {dst} unreachable from {src} within AS{self.asn}")
        routers = [dst]
        links: list[int] = []
        node = dst
        pred = self._pred[src]
        while node != src:
            prev, link_id = pred[node]
            links.append(link_id)
            routers.append(prev)
            node = prev
        routers.reverse()
        links.reverse()
        prop = sum(self._topo.links[i].prop_delay_ms for i in links)
        return IGPPath(
            routers=tuple(routers),
            links=tuple(links),
            cost=self._dist[src][dst],
            prop_delay_ms=prop,
        )


class IGPSuite:
    """Lazy per-AS collection of :class:`IGPTable` objects."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo
        self._tables: dict[int, IGPTable] = {}

    def table(self, asn: int) -> IGPTable:
        """The IGP table for ``asn``, building it on first use.

        Raises:
            IGPError: if the ASN is unknown.
        """
        if asn not in self._tables:
            if asn not in self._topo.ases:
                raise IGPError(f"unknown ASN {asn}")
            with obs.span("routing.igp.table") as sp:
                sp.set("asn", asn)
                self._tables[asn] = IGPTable(self._topo, asn)
            obs.count("routing.igp.tables")
        return self._tables[asn]

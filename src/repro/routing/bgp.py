"""Inter-AS policy routing in the style of BGP.

The paper (§3) stresses that BGP "does not necessarily select routes by
minimizing some global metric"; instead each AS applies a local policy.
We model the canonical policy structure of the commercial Internet
(Gao–Rexford):

* **Preference** — routes learned from customers are preferred over routes
  learned from peers, which are preferred over routes learned from
  providers (local-pref classes from
  :data:`repro.topology.asys.LOCAL_PREF`); ties are broken by shortest
  AS-path length, then by lowest next-hop ASN (a stand-in for the real
  protocol's arbitrary tie-breaks).
* **Export (valley-free rule)** — an AS advertises customer-learned routes
  (and its own prefixes) to everyone, but advertises peer- and
  provider-learned routes only to its customers.  This is exactly what
  makes "good" paths inexpressible: two stubs of different providers can
  never transit a third stub, and peer-peer-peer paths do not exist.

Two solvers compute the converged routes per destination AS:

* ``algorithm="gao-rexford"`` (default) — the classic single-pass
  three-stage solver: customer routes climb the customer→provider
  hierarchy once (stage 1), cross peer edges once (stage 2), then descend
  provider→customer edges once (stage 3).  On any valley-free hierarchy
  this is provably the unique stable state, in O(E) per destination.
  Topologies with SIBLING adjacencies (which launder any route into the
  sibling class) or customer-provider cycles transparently fall back to
  the fixpoint.
* ``algorithm="fixpoint"`` — the original synchronous relaxation, kept as
  a reference oracle; ``tests/routing/test_bgp_equivalence.py`` asserts
  route-for-route identity (including tie-breaks) between the two.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.obs import runtime as obs
from repro.topology.asys import LOCAL_PREF, Relationship
from repro.topology.network import Topology

#: Highest relationship-class preference; hoisted so the hot preference
#: comparison does not recompute ``max(LOCAL_PREF.values())`` per route.
_MAX_LOCAL_PREF = max(LOCAL_PREF.values())

#: Local-pref of an AS's own prefix (beats every learned route).
_ORIGIN_PREF = _MAX_LOCAL_PREF + 100

#: Environment variable overriding the worker count for
#: :meth:`BGPTable.converge_all`; the ``--routing-jobs`` CLI flag sets it
#: so dataset builders running in pool workers inherit the setting.
ROUTING_JOBS_ENV_VAR = "REPRO_ROUTING_JOBS"

#: Solver names accepted by :class:`BGPTable`.
ALGORITHMS = ("gao-rexford", "fixpoint")


class BGPError(RuntimeError):
    """Raised on BGP computation failures (e.g. non-convergence)."""


@dataclass(frozen=True, slots=True)
class BGPRoute:
    """A route installed at some AS toward a destination AS.

    Attributes:
        dest: Destination ASN.
        as_path: ASNs from the route's holder to ``dest``, inclusive of
            both endpoints.  For the destination itself the path is
            ``(dest,)``.
        learned_from: Relationship class of the neighbor the route was
            learned from; ``None`` for the origin.
    """

    dest: int
    as_path: tuple[int, ...]
    learned_from: Relationship | None

    @property
    def next_hop(self) -> int:
        """The neighbor ASN traffic is handed to (== self for the origin)."""
        return self.as_path[1] if len(self.as_path) > 1 else self.as_path[0]

    @property
    def local_pref(self) -> int:
        """Local-preference value of this route."""
        if self.learned_from is None:
            return _ORIGIN_PREF  # own prefix beats all
        return LOCAL_PREF[self.learned_from]

    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: smaller is more preferred.

        Orders by descending local-pref, ascending AS-path length,
        ascending next-hop ASN.
        """
        return (-self.local_pref, len(self.as_path), self.next_hop)


def _exportable(route: BGPRoute, to_relationship: Relationship) -> bool:
    """Valley-free export check.

    ``to_relationship`` is the relationship of the *receiving* neighbor
    from the advertising AS's viewpoint.
    """
    if to_relationship in (Relationship.CUSTOMER, Relationship.SIBLING):
        return True  # everything goes to customers/siblings
    # To peers and providers: only own and customer/sibling-learned routes.
    return route.learned_from in (None, Relationship.CUSTOMER, Relationship.SIBLING)


def resolve_routing_jobs(jobs: int | None, n_tasks: int) -> int:
    """Worker-process count for a batch convergence of ``n_tasks`` dests.

    Precedence: explicit ``jobs`` argument, then the
    ``REPRO_ROUTING_JOBS`` environment variable, else 1 (in-process).
    Values are clamped to ``[1, n_tasks]``.
    """
    if n_tasks <= 0:
        return 1
    if jobs is None:
        env = os.environ.get(ROUTING_JOBS_ENV_VAR)
        if env is None or not env.strip():
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{ROUTING_JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return max(1, min(jobs, n_tasks))


def _converge_chunk(
    topo: Topology, algorithm: str, dests: tuple[int, ...]
) -> dict[int, dict[int, BGPRoute]]:
    """Pool-worker task: converge a batch of destinations.

    Module-level (picklable) and pure: results depend only on the
    topology and destination list, so serial and parallel batch runs are
    bit-identical.
    """
    table = BGPTable(topo, algorithm=algorithm)
    return {dest: table._converge_impl(dest) for dest in dests}


class BGPTable:
    """Converged BGP routing state for every (AS, destination AS) pair."""

    #: Relaxation rounds before declaring non-convergence (fixpoint
    #: oracle only).  Any Gao–Rexford-compliant graph converges in
    #: O(diameter) rounds.
    MAX_ROUNDS = 64

    def __init__(self, topo: Topology, *, algorithm: str = "gao-rexford") -> None:
        """
        Args:
            topo: The topology to route over.
            algorithm: ``"gao-rexford"`` for the single-pass three-stage
                solver (default), ``"fixpoint"`` for the synchronous
                relaxation oracle.

        Raises:
            ValueError: on an unknown algorithm name.
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown BGP algorithm {algorithm!r}; choose from {ALGORITHMS}"
            )
        self._topo = topo
        self._algorithm = algorithm
        self._effective: str | None = None
        # routes[dest][asn] -> best BGPRoute at `asn` toward `dest`.
        # The store lives in the topology's routing cache (keyed by
        # solver), so tables built over the same topology share converged
        # state: results are a pure function of (topology, algorithm),
        # and the bag is cleared when the topology is mutated.
        self._routes: dict[int, dict[int, BGPRoute]] = topo.routing_cache(
            "bgp"
        ).setdefault(algorithm, {})

    # -- public API --------------------------------------------------------

    @property
    def algorithm(self) -> str:
        """The solver requested at construction."""
        return self._algorithm

    def effective_algorithm(self) -> str:
        """The solver actually used (``gao-rexford`` may fall back).

        The staged solver requires a sibling-free, cycle-free relationship
        hierarchy; anything else transparently uses the fixpoint oracle.
        """
        if self._effective is None:
            if self._algorithm == "fixpoint":
                self._effective = "fixpoint"
            else:
                index = self._topo.relationship_index()
                if index.has_siblings or index.up_order is None:
                    self._effective = "fixpoint"
                else:
                    self._effective = "gao-rexford"
        return self._effective

    def route(self, src_asn: int, dst_asn: int) -> BGPRoute | None:
        """Best route installed at ``src_asn`` toward ``dst_asn``.

        Returns None when policy leaves the destination unreachable.
        """
        if dst_asn not in self._routes:
            self._routes[dst_asn] = self._converge(dst_asn)
        return self._routes[dst_asn].get(src_asn)

    def as_path(self, src_asn: int, dst_asn: int) -> tuple[int, ...] | None:
        """AS-level path from ``src_asn`` to ``dst_asn`` (inclusive), or None."""
        route = self.route(src_asn, dst_asn)
        return route.as_path if route else None

    def converge_all(
        self, dests: list[int] | None = None, *, jobs: int | None = None
    ) -> None:
        """Converge every destination in ``dests`` (default: all ASes).

        Destinations already converged are skipped.  With ``jobs`` > 1
        the batch fans out across a ``ProcessPoolExecutor`` (one chunk
        per worker); the chunk task is pure, so parallel results are
        bit-identical to serial ones.  ``jobs=None`` consults the
        ``REPRO_ROUTING_JOBS`` environment variable, defaulting to 1.

        Raises:
            BGPError: if any destination is unknown or fails to converge.
        """
        targets = sorted(self._topo.ases) if dests is None else sorted(set(dests))
        missing = [d for d in targets if d not in self._routes]
        n_jobs = resolve_routing_jobs(jobs, len(missing))
        with obs.span("routing.bgp.converge_all") as sp:
            sp.set("algorithm", self.effective_algorithm())
            sp.set("destinations", len(targets))
            sp.set("converged", len(missing))
            sp.set("jobs", n_jobs)
            if n_jobs <= 1:
                for dest in missing:
                    self._routes[dest] = self._converge_impl(dest)
            else:
                self._converge_parallel(missing, n_jobs)
        obs.count("routing.bgp.batch_convergences", len(missing))

    def convergence_rounds(self, dest: int) -> int:
        """Synchronous relaxation rounds until ``dest``'s routes stabilize.

        Runs the fixpoint oracle regardless of the configured algorithm
        (the staged solver is single-pass and has no notion of rounds) and
        does not touch the shared route store.  The scenario layer uses
        this as a deterministic proxy for BGP reconvergence time after a
        failure: real BGP paces updates by the MRAI timer, so wall-clock
        time-to-repair scales with the number of rounds.

        Raises:
            BGPError: if the destination is unknown or never converges.
        """
        _best, rounds = self._converge_rounds(dest)
        return rounds

    def reachable_fraction(self) -> float:
        """Fraction of ordered AS pairs with a policy-compliant route.

        A diagnostic: a well-formed hierarchy should be fully connected.
        """
        self.converge_all()
        asns = list(self._topo.ases)
        total = 0
        ok = 0
        for d in asns:
            for s in asns:
                if s == d:
                    continue
                total += 1
                if self.route(s, d) is not None:
                    ok += 1
        return ok / total if total else 1.0

    # -- convergence -------------------------------------------------------

    def _converge(self, dest: int) -> dict[int, BGPRoute]:
        """Run the solver for one destination, under a tracing span."""
        with obs.span("routing.bgp.converge") as sp:
            sp.set("dest", dest)
            sp.set("algorithm", self.effective_algorithm())
            best = self._converge_impl(dest)
        obs.count("routing.bgp.convergences")
        return best

    def _converge_impl(self, dest: int) -> dict[int, BGPRoute]:
        """Solver dispatch without instrumentation (shared by batch mode)."""
        if self.effective_algorithm() == "gao-rexford":
            return self._converge_stages(dest)
        best, _rounds = self._converge_rounds(dest)
        return best

    def _converge_parallel(self, dests: list[int], n_jobs: int) -> None:
        """Fan a destination batch across worker processes."""
        from concurrent.futures import ProcessPoolExecutor

        chunks = [tuple(dests[i::n_jobs]) for i in range(n_jobs)]
        chunks = [c for c in chunks if c]
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(_converge_chunk, self._topo, self._algorithm, chunk)
                for chunk in chunks
            ]
            for future in futures:
                self._routes.update(future.result())

    # -- three-stage Gao-Rexford solver ------------------------------------

    # hotpath
    def _converge_stages(self, dest: int) -> dict[int, BGPRoute]:
        """Single-pass solver: up the hierarchy, across peers, back down.

        Correctness sketch (classic Gao–Rexford argument): with the
        customer > peer > provider preference and valley-free export, an
        AS's stable route is customer-learned whenever any customer route
        exists, so uphill-exportable routes are exactly the stage-1
        routes; peer-learned routes extend those across one peer edge
        (peer routes are never re-exported to peers); provider-learned
        routes descend from each AS's final choice.  Each stage's
        dependency order is acyclic (the customer DAG, one edge, the
        reversed DAG), so the computed state is the unique stable one —
        the same state the synchronous fixpoint converges to, with
        identical (local-pref, path length, next-hop ASN) tie-breaking.
        """
        topo = self._topo
        if dest not in topo.ases:
            raise BGPError(f"unknown destination ASN {dest}")
        index = topo.relationship_index()
        assert index.up_order is not None  # guaranteed by effective_algorithm()
        origin = BGPRoute(dest=dest, as_path=(dest,), learned_from=None)
        # `best` holds only uphill-exportable routes until stage 2 merges.
        best: dict[int, BGPRoute] = {dest: origin}
        customers = index.customers
        peers = index.peers
        providers = index.providers
        # Stage 1 — customer routes climb customer→provider edges.  The
        # order guarantees every customer's route is final before any of
        # its providers look at it.
        for asn in index.up_order:
            if asn == dest:
                continue
            chosen: BGPRoute | None = None
            chosen_key: tuple[int, int] | None = None
            for nb in customers.get(asn, ()):
                learned = best.get(nb)
                if learned is None or asn in learned.as_path:
                    continue
                key = (len(learned.as_path), nb)
                if chosen_key is None or key < chosen_key:
                    chosen_key = key
                    chosen = learned
            if chosen is not None:
                best[asn] = BGPRoute(
                    dest=dest,
                    as_path=(asn, *chosen.as_path),
                    learned_from=Relationship.CUSTOMER,
                )
        # Stage 2 — one exchange across peer edges.  Candidates read only
        # stage-1 state (peer routes are not exportable to peers), so the
        # results are collected before merging.
        peer_routes: dict[int, BGPRoute] = {}
        for asn, asn_peers in peers.items():
            if asn == dest or asn in best:
                continue
            chosen = None
            chosen_key = None
            for nb in asn_peers:
                learned = best.get(nb)
                if learned is None or asn in learned.as_path:
                    continue
                key = (len(learned.as_path), nb)
                if chosen_key is None or key < chosen_key:
                    chosen_key = key
                    chosen = learned
            if chosen is not None:
                peer_routes[asn] = BGPRoute(
                    dest=dest,
                    as_path=(asn, *chosen.as_path),
                    learned_from=Relationship.PEER,
                )
        best.update(peer_routes)
        # Stage 3 — routes descend provider→customer edges; providers are
        # finalized before their customers (reversed stage-1 order), and
        # an AS with a customer or peer route never takes a provider one.
        for asn in reversed(index.up_order):
            if asn == dest or asn in best:
                continue
            chosen = None
            chosen_key = None
            for nb in providers.get(asn, ()):
                learned = best.get(nb)
                if learned is None or asn in learned.as_path:
                    continue
                key = (len(learned.as_path), nb)
                if chosen_key is None or key < chosen_key:
                    chosen_key = key
                    chosen = learned
            if chosen is not None:
                best[asn] = BGPRoute(
                    dest=dest,
                    as_path=(asn, *chosen.as_path),
                    learned_from=Relationship.PROVIDER,
                )
        return best

    # -- fixpoint oracle ---------------------------------------------------

    def _converge_rounds(self, dest: int) -> tuple[dict[int, BGPRoute], int]:
        """The fixpoint iteration; returns (state, rounds to converge)."""
        topo = self._topo
        if dest not in topo.ases:
            raise BGPError(f"unknown destination ASN {dest}")
        origin = BGPRoute(dest=dest, as_path=(dest,), learned_from=None)
        best: dict[int, BGPRoute] = {dest: origin}
        # Synchronous rounds recomputed from the previous round's state: at
        # the fixpoint every stored as_path is, by construction, consistent
        # with the next hop's own choice, so AS-level forwarding can follow
        # either the stored path or the next-hop chain interchangeably.
        for round_no in range(self.MAX_ROUNDS):
            new_best: dict[int, BGPRoute] = {dest: origin}
            for asn in sorted(topo.ases):
                if asn == dest:
                    continue
                candidates: list[BGPRoute] = []
                for as_link in topo.as_neighbors(asn):
                    neighbor = as_link.other(asn)
                    neighbor_route = best.get(neighbor)
                    if neighbor_route is None:
                        continue
                    if asn in neighbor_route.as_path:
                        continue  # loop prevention
                    # How the neighbor sees *us* governs whether it exports.
                    rel_neighbor_to_us = as_link.relationship_from(neighbor)
                    if not _exportable(neighbor_route, rel_neighbor_to_us):
                        continue
                    # How *we* see the neighbor governs our preference.
                    rel_us_to_neighbor = as_link.relationship_from(asn)
                    candidates.append(
                        BGPRoute(
                            dest=dest,
                            as_path=(asn, *neighbor_route.as_path),
                            learned_from=rel_us_to_neighbor,
                        )
                    )
                if candidates:
                    new_best[asn] = min(candidates, key=BGPRoute.preference_key)
            if new_best == best:
                return best, round_no + 1
            best = new_best
        raise BGPError(f"BGP did not converge for destination AS{dest}")

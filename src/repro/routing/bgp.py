"""Inter-AS policy routing in the style of BGP.

The paper (§3) stresses that BGP "does not necessarily select routes by
minimizing some global metric"; instead each AS applies a local policy.
We model the canonical policy structure of the commercial Internet
(Gao–Rexford):

* **Preference** — routes learned from customers are preferred over routes
  learned from peers, which are preferred over routes learned from
  providers (local-pref classes from
  :data:`repro.topology.asys.LOCAL_PREF`); ties are broken by shortest
  AS-path length, then by lowest next-hop ASN (a stand-in for the real
  protocol's arbitrary tie-breaks).
* **Export (valley-free rule)** — an AS advertises customer-learned routes
  (and its own prefixes) to everyone, but advertises peer- and
  provider-learned routes only to its customers.  This is exactly what
  makes "good" paths inexpressible: two stubs of different providers can
  never transit a third stub, and peer-peer-peer paths do not exist.

Routes are computed per destination AS by fixed-point relaxation of the
decision process, which converges for any relationship graph without
customer-provider cycles (the generator only produces such graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import runtime as obs
from repro.topology.asys import LOCAL_PREF, Relationship
from repro.topology.network import Topology


class BGPError(RuntimeError):
    """Raised on BGP computation failures (e.g. non-convergence)."""


@dataclass(frozen=True, slots=True)
class BGPRoute:
    """A route installed at some AS toward a destination AS.

    Attributes:
        dest: Destination ASN.
        as_path: ASNs from the route's holder to ``dest``, inclusive of
            both endpoints.  For the destination itself the path is
            ``(dest,)``.
        learned_from: Relationship class of the neighbor the route was
            learned from; ``None`` for the origin.
    """

    dest: int
    as_path: tuple[int, ...]
    learned_from: Relationship | None

    @property
    def next_hop(self) -> int:
        """The neighbor ASN traffic is handed to (== self for the origin)."""
        return self.as_path[1] if len(self.as_path) > 1 else self.as_path[0]

    @property
    def local_pref(self) -> int:
        """Local-preference value of this route."""
        if self.learned_from is None:
            return max(LOCAL_PREF.values()) + 100  # own prefix beats all
        return LOCAL_PREF[self.learned_from]

    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: smaller is more preferred.

        Orders by descending local-pref, ascending AS-path length,
        ascending next-hop ASN.
        """
        return (-self.local_pref, len(self.as_path), self.next_hop)


def _exportable(route: BGPRoute, to_relationship: Relationship) -> bool:
    """Valley-free export check.

    ``to_relationship`` is the relationship of the *receiving* neighbor
    from the advertising AS's viewpoint.
    """
    if to_relationship in (Relationship.CUSTOMER, Relationship.SIBLING):
        return True  # everything goes to customers/siblings
    # To peers and providers: only own and customer/sibling-learned routes.
    return route.learned_from in (None, Relationship.CUSTOMER, Relationship.SIBLING)


class BGPTable:
    """Converged BGP routing state for every (AS, destination AS) pair."""

    #: Relaxation rounds before declaring non-convergence.  Any
    #: Gao–Rexford-compliant graph converges in O(diameter) rounds.
    MAX_ROUNDS = 64

    def __init__(self, topo: Topology) -> None:
        self._topo = topo
        # routes[dest][asn] -> best BGPRoute at `asn` toward `dest`.
        self._routes: dict[int, dict[int, BGPRoute]] = {}

    # -- public API --------------------------------------------------------

    def route(self, src_asn: int, dst_asn: int) -> BGPRoute | None:
        """Best route installed at ``src_asn`` toward ``dst_asn``.

        Returns None when policy leaves the destination unreachable.
        """
        if dst_asn not in self._routes:
            self._routes[dst_asn] = self._converge(dst_asn)
        return self._routes[dst_asn].get(src_asn)

    def as_path(self, src_asn: int, dst_asn: int) -> tuple[int, ...] | None:
        """AS-level path from ``src_asn`` to ``dst_asn`` (inclusive), or None."""
        route = self.route(src_asn, dst_asn)
        return route.as_path if route else None

    def reachable_fraction(self) -> float:
        """Fraction of ordered AS pairs with a policy-compliant route.

        A diagnostic: a well-formed hierarchy should be fully connected.
        """
        asns = list(self._topo.ases)
        total = 0
        ok = 0
        for d in asns:
            for s in asns:
                if s == d:
                    continue
                total += 1
                if self.route(s, d) is not None:
                    ok += 1
        return ok / total if total else 1.0

    # -- convergence -------------------------------------------------------

    def _converge(self, dest: int) -> dict[int, BGPRoute]:
        """Run the decision/export fixpoint for one destination."""
        with obs.span("routing.bgp.converge") as sp:
            sp.set("dest", dest)
            best, rounds = self._converge_rounds(dest)
            sp.set("rounds", rounds)
        obs.count("routing.bgp.convergences")
        return best

    def _converge_rounds(self, dest: int) -> tuple[dict[int, BGPRoute], int]:
        """The fixpoint iteration; returns (state, rounds to converge)."""
        topo = self._topo
        if dest not in topo.ases:
            raise BGPError(f"unknown destination ASN {dest}")
        origin = BGPRoute(dest=dest, as_path=(dest,), learned_from=None)
        best: dict[int, BGPRoute] = {dest: origin}
        # Synchronous rounds recomputed from the previous round's state: at
        # the fixpoint every stored as_path is, by construction, consistent
        # with the next hop's own choice, so AS-level forwarding can follow
        # either the stored path or the next-hop chain interchangeably.
        for round_no in range(self.MAX_ROUNDS):
            new_best: dict[int, BGPRoute] = {dest: origin}
            for asn in sorted(topo.ases):
                if asn == dest:
                    continue
                candidates: list[BGPRoute] = []
                for as_link in topo.as_neighbors(asn):
                    neighbor = as_link.other(asn)
                    neighbor_route = best.get(neighbor)
                    if neighbor_route is None:
                        continue
                    if asn in neighbor_route.as_path:
                        continue  # loop prevention
                    # How the neighbor sees *us* governs whether it exports.
                    rel_neighbor_to_us = as_link.relationship_from(neighbor)
                    if not _exportable(neighbor_route, rel_neighbor_to_us):
                        continue
                    # How *we* see the neighbor governs our preference.
                    rel_us_to_neighbor = as_link.relationship_from(asn)
                    candidates.append(
                        BGPRoute(
                            dest=dest,
                            as_path=(asn, *neighbor_route.as_path),
                            learned_from=rel_us_to_neighbor,
                        )
                    )
                if candidates:
                    new_best[asn] = min(candidates, key=BGPRoute.preference_key)
            if new_best == best:
                return best, round_no + 1
            best = new_best
        raise BGPError(f"BGP did not converge for destination AS{dest}")

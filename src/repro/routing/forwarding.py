"""Host-to-host path resolution across the two-level routing hierarchy.

The resolver combines the BGP AS-level route with per-AS IGP paths and an
egress-selection policy to produce the router-level *default path* between
two hosts — the path whose quality the paper measures and compares against
synthetic alternates.

Egress selection is where the paper's "early-exit" (hot-potato) routing
lives: when an AS can hand traffic to the next AS at several exchange
points, an early-exit AS picks the exchange closest (in IGP metric) to the
packet's ingress, not the one best for the destination.  The
:class:`EgressPolicy` enum also provides a destination-aware "cold potato"
mode used by the ablation benchmarks.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.routing.bgp import BGPTable
from repro.routing.igp import IGPSuite
from repro.topology.geography import propagation_delay_ms
from repro.topology.links import Link
from repro.topology.network import Topology
from repro.topology.router import Host


class ForwardingError(RuntimeError):
    """Raised when no policy-compliant path exists between two hosts."""


class EgressPolicy(enum.Enum):
    """How an AS chooses among multiple exchange points to the next AS."""

    #: Hot potato: minimize IGP cost from ingress to egress border.
    EARLY_EXIT = "early-exit"
    #: Cold potato: minimize IGP cost plus estimated remaining distance
    #: to the destination city (an idealized performance-aware policy).
    BEST_EXIT = "best-exit"


@dataclass(frozen=True, slots=True)
class ForwardPath:
    """A resolved unidirectional router-level path.

    Attributes:
        src: Source host name.
        dst: Destination host name.
        routers: Router ids traversed, source NIC to destination NIC.
        links: Link ids between consecutive routers.
        as_path: AS-level path (source AS first).
        prop_delay_ms: One-way propagation delay (sum over links).
    """

    src: str
    dst: str
    routers: tuple[int, ...]
    links: tuple[int, ...]
    as_path: tuple[int, ...]
    prop_delay_ms: float

    @property
    def hop_count(self) -> int:
        """Number of router-level hops."""
        return len(self.links)


@dataclass(frozen=True, slots=True)
class RoundTripPath:
    """Forward and reverse unidirectional paths for an ordered host pair.

    Internet routing is frequently asymmetric (Paxson 1996, cited by the
    paper); early-exit egress selection reproduces that here.  A round-trip
    measurement (ping, traceroute probe) traverses ``forward`` out and
    ``reverse`` back.
    """

    forward: ForwardPath
    reverse: ForwardPath

    @property
    def rtt_prop_ms(self) -> float:
        """Propagation-only round-trip time in milliseconds."""
        return self.forward.prop_delay_ms + self.reverse.prop_delay_ms

    @property
    def link_ids(self) -> tuple[int, ...]:
        """All link ids traversed, forward then reverse (with repeats)."""
        return self.forward.links + self.reverse.links

    @property
    def is_symmetric(self) -> bool:
        """Whether forward and reverse traverse the same routers."""
        return self.forward.routers == tuple(reversed(self.reverse.routers))


class PathResolver:
    """Resolves default paths between hosts under policy routing."""

    def __init__(
        self,
        topo: Topology,
        *,
        egress_policy: EgressPolicy = EgressPolicy.EARLY_EXIT,
        respect_as_early_exit: bool = True,
    ) -> None:
        """
        Args:
            topo: The topology to route over.
            egress_policy: Egress selection mode applied to ASes that
                practice early exit (see ``respect_as_early_exit``).
            respect_as_early_exit: When True (default), an AS whose
                ``early_exit`` flag is False uses BEST_EXIT regardless of
                ``egress_policy``; when False, ``egress_policy`` applies
                to every AS (used by ablations).
        """
        self._topo = topo
        self._igp = IGPSuite(topo)
        self._bgp = BGPTable(topo)
        self._egress_policy = egress_policy
        self._respect_as_flag = respect_as_early_exit
        self._cache: dict[tuple[str, str], ForwardPath] = {}
        self._secondary_cache: dict[tuple[str, str], ForwardPath] = {}
        # Ranked egress options memoized across resolutions: many host
        # pairs funnel through the same (AS hop, ingress) combination, and
        # ranking re-runs IGP cost lookups per option.  Early-exit choices
        # are destination-independent; best-exit keys include the
        # destination city (the "remaining distance" term).
        self._egress_cache: dict[
            tuple[int, int, int, EgressPolicy, str | None], tuple[Link, ...]
        ] = {}

    @property
    def bgp(self) -> BGPTable:
        """The underlying BGP table (shared, lazily converged)."""
        return self._bgp

    @property
    def igp(self) -> IGPSuite:
        """The underlying per-AS IGP suite."""
        return self._igp

    # -- resolution --------------------------------------------------------

    def resolve(self, src: str, dst: str) -> ForwardPath:
        """Resolve the unidirectional default path from ``src`` to ``dst``.

        Results are cached; routing is static within a resolver.

        Raises:
            ForwardingError: if the hosts are identical or unreachable.
        """
        if src == dst:
            raise ForwardingError("source and destination host are identical")
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = self._resolve_uncached(src, dst)
        return self._cache[key]

    def resolve_secondary(self, src: str, dst: str) -> ForwardPath:
        """The pair's secondary path: the first AS hop offering several
        exchange points is demoted to its second-choice egress.

        This is what a BGP-level flap at the primary exchange produces.
        Identical to the primary when no hop has an alternative.

        Raises:
            ForwardingError: if the hosts are identical or unreachable.
        """
        if src == dst:
            raise ForwardingError("source and destination host are identical")
        key = (src, dst)
        if key not in self._secondary_cache:
            self._secondary_cache[key] = self._resolve_uncached(
                src, dst, demote_first_flexible=True
            )
        return self._secondary_cache[key]

    def resolve_round_trip(self, src: str, dst: str) -> RoundTripPath:
        """Resolve both directions for an ordered host pair."""
        return RoundTripPath(
            forward=self.resolve(src, dst),
            reverse=self.resolve(dst, src),
        )

    def resolve_round_trip_secondary(self, src: str, dst: str) -> RoundTripPath:
        """Round trip over the secondary forward path (reverse unchanged:
        a flap on the forward direction does not imply one backward)."""
        return RoundTripPath(
            forward=self.resolve_secondary(src, dst),
            reverse=self.resolve(dst, src),
        )

    def _resolve_uncached(
        self, src: str, dst: str, *, demote_first_flexible: bool = False
    ) -> ForwardPath:
        topo = self._topo
        src_host = topo.host(src)
        dst_host = topo.host(dst)
        as_path = self._bgp.as_path(src_host.asn, dst_host.asn)
        if as_path is None:
            raise ForwardingError(
                f"no policy-compliant route from AS{src_host.asn} to AS{dst_host.asn}"
            )
        routers: list[int] = [src_host.access_router]
        links: list[int] = []
        current = src_host.access_router
        demote_pending = demote_first_flexible
        for i in range(len(as_path) - 1):
            here, nxt = as_path[i], as_path[i + 1]
            demote_here = demote_pending and len(
                topo.exchange_links_between(here, nxt)
            ) >= 2
            if demote_here:
                demote_pending = False
            exchange = self._pick_egress(
                here, nxt, current, dst_host, demote=demote_here
            )
            igp_path = self._igp.table(here).path(current, self._border_in(exchange, here))
            routers.extend(igp_path.routers[1:])
            links.extend(igp_path.links)
            far_border = self._border_in(exchange, nxt)
            links.append(exchange.link_id)
            routers.append(far_border)
            current = far_border
        # Tail segment inside the destination AS.
        tail = self._igp.table(dst_host.asn).path(current, dst_host.access_router)
        routers.extend(tail.routers[1:])
        links.extend(tail.links)
        prop = sum(topo.links[l].prop_delay_ms for l in links)
        return ForwardPath(
            src=src,
            dst=dst,
            routers=tuple(routers),
            links=tuple(links),
            as_path=as_path,
            prop_delay_ms=prop,
        )

    def _border_in(self, exchange: Link, asn: int) -> int:
        """The endpoint of an exchange link owned by ``asn``."""
        if self._topo.routers[exchange.u].asn == asn:
            return exchange.u
        if self._topo.routers[exchange.v].asn == asn:
            return exchange.v
        raise ForwardingError(
            f"exchange link {exchange.link_id} has no endpoint in AS{asn}"
        )

    def _pick_egress(
        self,
        here: int,
        nxt: int,
        ingress: int,
        dst_host: Host,
        *,
        demote: bool = False,
    ) -> Link:
        """Choose the exchange link used to hand traffic from ``here`` to
        ``nxt``; with ``demote`` the second-ranked option is taken (route
        flap simulation)."""
        topo = self._topo
        options = topo.exchange_links_between(here, nxt)
        if not options:
            raise ForwardingError(f"no exchange links between AS{here} and AS{nxt}")
        if len(options) == 1:
            return options[0]
        policy = self._egress_policy
        if self._respect_as_flag and not topo.ases[here].early_exit:
            policy = EgressPolicy.BEST_EXIT
        # Early-exit ranking ignores the destination entirely; best-exit
        # depends on it only through the destination *city*.
        city = dst_host.city.name if policy is EgressPolicy.BEST_EXIT else None
        cache_key = (here, nxt, ingress, policy, city)
        ranked = self._egress_cache.get(cache_key)
        if ranked is None:
            ranked = self._rank_egress(here, nxt, ingress, dst_host, policy, options)
            self._egress_cache[cache_key] = ranked
        return ranked[1] if demote and len(ranked) > 1 else ranked[0]

    def _rank_egress(
        self,
        here: int,
        nxt: int,
        ingress: int,
        dst_host: Host,
        policy: EgressPolicy,
        options: list[Link],
    ) -> tuple[Link, ...]:
        """Rank the candidate exchange links under ``policy`` (best first)."""
        topo = self._topo
        igp = self._igp.table(here)

        def early_exit_key(link: Link) -> tuple[float, int]:
            near = self._border_in(link, here)
            return (igp.cost(ingress, near), link.link_id)

        def best_exit_key(link: Link) -> tuple[float, int]:
            near = self._border_in(link, here)
            far = self._border_in(link, nxt)
            remaining = propagation_delay_ms(topo.routers[far].city, dst_host.city)
            # Compare in delay units: IGP hop-count costs are scaled by a
            # nominal per-hop delay so the two terms are commensurate.
            igp_cost = igp.cost(ingress, near)
            if topo.ases[here].igp_style.name == "HOP_COUNT":
                igp_cost *= 5.0
            return (igp_cost + link.prop_delay_ms + remaining, link.link_id)

        key = early_exit_key if policy is EgressPolicy.EARLY_EXIT else best_exit_key
        return tuple(sorted(options, key=key))


class OptimalResolver:
    """Globally delay-optimal routing, ignoring all policy.

    Implements the paper's §3 thought experiment: "if the Internet used
    'shortest' path routing ... there would be no room to find alternate
    paths with better performance."  Used by the ablation benchmarks as
    the policy-free baseline.
    """

    def __init__(self, topo: Topology) -> None:
        self._topo = topo
        self._cache: dict[tuple[str, str], ForwardPath] = {}

    def resolve(self, src: str, dst: str) -> ForwardPath:
        """Minimum-propagation-delay path from ``src`` to ``dst``.

        Raises:
            ForwardingError: if the hosts are identical or disconnected.
        """
        if src == dst:
            raise ForwardingError("source and destination host are identical")
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = self._dijkstra(src, dst)
        return self._cache[key]

    def resolve_round_trip(self, src: str, dst: str) -> RoundTripPath:
        """Both directions (symmetric by construction, resolved anyway)."""
        return RoundTripPath(
            forward=self.resolve(src, dst),
            reverse=self.resolve(dst, src),
        )

    def _dijkstra(self, src: str, dst: str) -> ForwardPath:
        topo = self._topo
        src_host = topo.host(src)
        dst_host = topo.host(dst)
        start, goal = src_host.access_router, dst_host.access_router
        dist: dict[int, float] = {start: 0.0}
        pred: dict[int, tuple[int, int]] = {}
        heap: list[tuple[float, int]] = [(0.0, start)]
        while heap:
            d, u = heapq.heappop(heap)
            if u == goal:
                break
            if d > dist.get(u, float("inf")):
                continue
            for link in topo.links_of(u):
                v = link.other(u)
                nd = d + link.prop_delay_ms
                if nd < dist.get(v, float("inf")) - 1e-12:
                    dist[v] = nd
                    pred[v] = (u, link.link_id)
                    heapq.heappush(heap, (nd, v))
        if goal not in dist:
            raise ForwardingError(f"hosts {src} and {dst} are physically disconnected")
        routers = [goal]
        links: list[int] = []
        node = goal
        while node != start:
            prev, link_id = pred[node]
            links.append(link_id)
            routers.append(prev)
            node = prev
        routers.reverse()
        links.reverse()
        as_seq: list[int] = []
        for rid in routers:
            asn = topo.routers[rid].asn
            if not as_seq or as_seq[-1] != asn:
                as_seq.append(asn)
        return ForwardPath(
            src=src,
            dst=dst,
            routers=tuple(routers),
            links=tuple(links),
            as_path=tuple(as_seq),
            prop_delay_ms=dist[goal],
        )

"""Vectorized Gao-Rexford convergence over columnar topologies.

The object solver (:meth:`repro.routing.bgp.BGPTable._converge_stages`)
walks Python dicts AS-by-AS; at Internet scale that is millions of dict
probes per destination.  This module runs the same three-stage solver as
array kernels over a :class:`~repro.topology.columnar.TopologyArrays`:

* destinations are processed in *blocks* of width ``D`` — route state is
  a pair of ``(n_as, D)`` arrays (path length + next-hop index), one
  column per destination;
* each stage is a handful of ``np.minimum.reduceat`` reductions over
  precomputed edge groupings.  Candidate routes are packed into a single
  int64 key ``(path_len << 32) | neighbor_asn``, so the reduction's
  minimum *is* the object solver's ``(len(as_path), neighbor_asn)``
  tie-break;
* stage 1 processes providers grouped by customer-DAG level (all
  customers of a level-``L`` provider live at levels ``< L``, so one
  reduceat per level band sees only final state), stage 2 is a single
  reduction over peer edges against the stage-1 snapshot, stage 3
  descends provider->customer edges grouped by provider-DAG level.

On an acyclic, sibling-free hierarchy the object solver's per-candidate
loop check (``asn in learned.as_path``) can never bind — stage-1 paths
climb strictly increasing levels, stage-2/3 adopters are routeless while
every AS on a candidate path is routed — so the kernels need no loop
detection and no post-hoc verification.  Siblings or provider cycles
raise :class:`ColumnarUnsupported`; callers fall back to the object
fixpoint, exactly as ``BGPTable.effective_algorithm()`` does.

``converge_all_sharded`` fans destination blocks across a process pool
with the route table in ``multiprocessing.shared_memory``: workers write
disjoint column slices in place and return ``None``, so per-destination
results are never pickled.  Differential tests hold all of this
route-for-route identical to the object backend at seed scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as obs

from repro.routing.bgp import BGPRoute, resolve_routing_jobs
from repro.topology.asys import Relationship
from repro.topology.columnar import TopologyArrays

#: Path-length sentinel for "no route"; real lengths are <= n_as + 1.
#: Packed keys are ``len << 32 | asn`` so the sentinel must stay well
#: under 2**31 for the shifted key to fit an int64.
SENTINEL_LEN = 1 << 24

_ASN_MASK = (1 << 32) - 1

#: Provenance codes stored per (AS, destination) cell.
VIA_NONE = -1
VIA_ORIGIN = 0
VIA_CUSTOMER = 1
VIA_PEER = 2
VIA_PROVIDER = 3

_VIA_RELATIONSHIP = {
    VIA_ORIGIN: None,
    VIA_CUSTOMER: Relationship.CUSTOMER,
    VIA_PEER: Relationship.PEER,
    VIA_PROVIDER: Relationship.PROVIDER,
}


class ColumnarUnsupported(RuntimeError):
    """The hierarchy needs the fixpoint oracle (siblings or a cycle)."""


def _gather_csr(
    indptr: np.ndarray, flat: np.ndarray, owners: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows ``owners`` (in that order).

    Returns ``(edges, starts)`` where ``starts[i]`` is the offset of
    ``owners[i]``'s slice in ``edges`` — the exact shape
    ``np.minimum.reduceat`` wants.  Callers pass only owners with
    non-empty rows.
    """
    counts = indptr[owners + 1] - indptr[owners]
    total = int(counts.sum())
    starts = np.zeros(len(owners), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    pos = np.arange(total, dtype=np.int64) - np.repeat(starts, counts) + np.repeat(
        indptr[owners], counts
    )
    return flat[pos].astype(np.int64), starts


@dataclass(frozen=True)
class SolverIndex:
    """Edge groupings precomputed once per topology for the block solver.

    Attributes:
        arrays: The topology being solved.
        s1_owners / s1_edges / s1_starts / s1_bands: Stage-1 schedule —
            providers with customers, ordered by customer-DAG level;
            their concatenated customer lists; per-owner offsets; and
            ``(band_start, band_end)`` owner-index ranges per level.
        s2_owners / s2_edges / s2_starts: Stage-2 peer reduction (every
            AS with peers, one group each).
        s3_owners / s3_edges / s3_starts / s3_bands: Stage-3 schedule —
            ASes with providers ordered by provider-DAG level, with
            their provider lists.
    """

    arrays: TopologyArrays
    s1_owners: np.ndarray
    s1_edges: np.ndarray
    s1_starts: np.ndarray
    s1_bands: list[tuple[int, int]]
    s2_owners: np.ndarray
    s2_edges: np.ndarray
    s2_starts: np.ndarray
    s3_owners: np.ndarray
    s3_edges: np.ndarray
    s3_starts: np.ndarray
    s3_bands: list[tuple[int, int]]


def _banded_schedule(
    indptr: np.ndarray, flat: np.ndarray, order_key: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[tuple[int, int]]]:
    """Group CSR owners by ``order_key`` level into contiguous bands."""
    counts = np.diff(indptr)
    owners = np.nonzero(counts > 0)[0]
    owners = owners[np.argsort(order_key[owners], kind="stable")]
    edges, starts = _gather_csr(indptr, flat, owners)
    bands: list[tuple[int, int]] = []
    if len(owners):
        key = order_key[owners]
        cuts = np.nonzero(np.diff(key))[0] + 1
        bounds = [0, *cuts.tolist(), len(owners)]
        bands = [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
    return owners, edges, starts, bands


def build_solver_index(arrays: TopologyArrays) -> SolverIndex:
    """Precompute the staged-solver schedule for ``arrays``.

    Raises:
        ColumnarUnsupported: when the hierarchy has siblings or a
            customer/provider cycle — callers must fall back to the
            object fixpoint oracle.
    """
    rel = arrays.relationship_arrays()
    if rel.has_siblings:
        raise ColumnarUnsupported("sibling relationships need the fixpoint oracle")
    if len(rel.levels) and rel.levels[0] == -1 and rel.levels.max() == -1:
        raise ColumnarUnsupported("cyclic provider hierarchy needs the fixpoint oracle")
    s1_owners, s1_edges, s1_starts, s1_bands = _banded_schedule(
        rel.customers_indptr, rel.customers, rel.levels
    )
    counts = np.diff(rel.peers_indptr)
    s2_owners = np.nonzero(counts > 0)[0]
    s2_edges, s2_starts = _gather_csr(rel.peers_indptr, rel.peers, s2_owners)
    s3_owners, s3_edges, s3_starts, s3_bands = _banded_schedule(
        rel.providers_indptr, rel.providers, rel.down_levels
    )
    return SolverIndex(
        arrays=arrays,
        s1_owners=s1_owners,
        s1_edges=s1_edges,
        s1_starts=s1_starts,
        s1_bands=s1_bands,
        s2_owners=s2_owners,
        s2_edges=s2_edges,
        s2_starts=s2_starts,
        s3_owners=s3_owners,
        s3_edges=s3_edges,
        s3_starts=s3_starts,
        s3_bands=s3_bands,
    )


def _apply_stage(  # hotpath
    lens: np.ndarray,
    nxt: np.ndarray,
    via: np.ndarray,
    asn: np.ndarray,
    asn_index: np.ndarray,
    owners: np.ndarray,
    edges: np.ndarray,
    starts: np.ndarray,
    adopt_mask: np.ndarray,
    via_code: int,
) -> None:
    """One reduceat stage: minimize packed keys, adopt where allowed.

    ``adopt_mask`` (owners x D) gates which cells may take a new route
    (stage 1: everyone but the destination row; stages 2/3: routeless
    cells only).  State arrays are updated in place.
    """
    cand = lens[edges]
    cand <<= 32
    cand |= asn[edges, None]
    best = np.minimum.reduceat(cand, starts, axis=0)
    best_len = best >> 32
    sel = adopt_mask & (best_len < SENTINEL_LEN)
    cur_lens = lens[owners]
    cur_nxt = nxt[owners]
    cur_via = via[owners]
    lens[owners] = np.where(sel, best_len + 1, cur_lens)
    nxt[owners] = np.where(sel, asn_index[best & _ASN_MASK], cur_nxt)
    via[owners] = np.where(sel, via_code, cur_via)


def converge_block(
    index: SolverIndex, dest_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Converge a block of destinations in one vectorized pass.

    Args:
        index: Precomputed solver schedule.
        dest_idx: Destination AS *indices* (one column each).

    Returns:
        ``(lens, next_idx, via)``, each ``(n_as, len(dest_idx))``:
        AS-path node count (``SENTINEL_LEN`` when unreachable), the
        next-hop AS index (the destination row points at itself), and
        the provenance code (``VIA_*``).
    """
    arrays = index.arrays
    n = arrays.n_as
    dest_idx = np.asarray(dest_idx, dtype=np.int64)
    d = len(dest_idx)
    asn = arrays.as_asn
    asn_index = arrays.asn_index()
    lens = np.full((n, d), SENTINEL_LEN, dtype=np.int64)
    nxt = np.full((n, d), -1, dtype=np.int64)
    via = np.full((n, d), VIA_NONE, dtype=np.int8)
    cols = np.arange(d)
    lens[dest_idx, cols] = 1
    nxt[dest_idx, cols] = dest_idx
    via[dest_idx, cols] = VIA_ORIGIN

    # Stage 1 — customer routes climb the hierarchy level by level.
    for lo, hi in index.s1_bands:
        owners = index.s1_owners[lo:hi]
        e0, e1 = int(index.s1_starts[lo]), (
            int(index.s1_starts[hi]) if hi < len(index.s1_starts) else len(index.s1_edges)
        )
        _apply_stage(
            lens, nxt, via, asn, asn_index,
            owners, index.s1_edges[e0:e1], index.s1_starts[lo:hi] - e0,
            owners[:, None] != dest_idx[None, :], VIA_CUSTOMER,
        )
    # Stage 2 — one peer exchange against the stage-1 snapshot.  A
    # single batched reduction reads pre-update state, so no copy is
    # needed; only routeless cells adopt (a customer route always wins).
    if len(index.s2_owners):
        _apply_stage(
            lens, nxt, via, asn, asn_index,
            index.s2_owners, index.s2_edges, index.s2_starts,
            lens[index.s2_owners] == SENTINEL_LEN, VIA_PEER,
        )
    # Stage 3 — provider routes descend; providers are final before any
    # of their customers look (ascending provider-DAG level).
    for lo, hi in index.s3_bands:
        owners = index.s3_owners[lo:hi]
        e0, e1 = int(index.s3_starts[lo]), (
            int(index.s3_starts[hi]) if hi < len(index.s3_starts) else len(index.s3_edges)
        )
        _apply_stage(
            lens, nxt, via, asn, asn_index,
            owners, index.s3_edges[e0:e1], index.s3_starts[lo:hi] - e0,
            lens[owners] == SENTINEL_LEN, VIA_PROVIDER,
        )
    return lens, nxt, via


class ColumnarRouteTable:
    """Converged routes for an explicit destination list, array-backed.

    The columnar analog of a fully-converged
    :class:`~repro.routing.bgp.BGPTable` slice: state is three
    ``(n_as, n_dest)`` arrays instead of nested dicts.  ``route()`` /
    ``as_path()`` materialize individual :class:`BGPRoute` objects on
    demand (following the next-hop chain, which is exact because every
    stored route references its neighbor's final choice).
    """

    def __init__(
        self,
        arrays: TopologyArrays,
        dest_idx: np.ndarray,
        lens: np.ndarray,
        nxt: np.ndarray,
        via: np.ndarray,
    ) -> None:
        self._arrays = arrays
        self._dest_idx = dest_idx
        self._col = {int(arrays.as_asn[d]): j for j, d in enumerate(dest_idx)}
        self.lens = lens
        self.next_idx = nxt
        self.via = via

    @property
    def dest_asns(self) -> list[int]:
        """Destination ASNs, in table column order."""
        return [int(self._arrays.as_asn[d]) for d in self._dest_idx]

    def as_path(self, src_asn: int, dst_asn: int) -> tuple[int, ...] | None:
        """AS-level path from ``src_asn`` to ``dst_asn``, or None."""
        arrays = self._arrays
        col = self._col[dst_asn]
        src = int(arrays.asn_index()[src_asn])
        if src < 0 or self.via[src, col] == VIA_NONE:
            return None
        path = [int(arrays.as_asn[src])]
        node = src
        dest = int(self._dest_idx[col])
        while node != dest:
            node = int(self.next_idx[node, col])
            path.append(int(arrays.as_asn[node]))
        return tuple(path)

    def route(self, src_asn: int, dst_asn: int) -> BGPRoute | None:
        """The :class:`BGPRoute` installed at ``src_asn``, or None."""
        path = self.as_path(src_asn, dst_asn)
        if path is None:
            return None
        col = self._col[dst_asn]
        src = int(self._arrays.asn_index()[src_asn])
        return BGPRoute(
            dest=dst_asn,
            as_path=path,
            learned_from=_VIA_RELATIONSHIP[int(self.via[src, col])],
        )


#: Default destination-block width: bounds per-block scratch to
#: ``O(n_as * block)`` while keeping the reductions wide enough to
#: amortize kernel launches.
DEFAULT_BLOCK = 128


def converge_all(
    arrays: TopologyArrays,
    dests: list[int] | None = None,
    *,
    jobs: int | None = None,
    block: int = DEFAULT_BLOCK,
) -> ColumnarRouteTable:
    """Converge ``dests`` (ASNs; default all) into one route table.

    With ``jobs > 1`` destination blocks are sharded across a process
    pool with the three state arrays in shared memory — workers write
    disjoint column slices and return nothing, so results are never
    pickled.  Serial and sharded runs are bit-identical (each block is a
    pure function of the topology).  ``jobs=None`` consults
    ``REPRO_ROUTING_JOBS`` exactly like the object backend.
    """
    asn_index = arrays.asn_index()
    if dests is None:
        dest_asns = sorted(int(a) for a in arrays.as_asn)
    else:
        dest_asns = sorted(set(dests))
    dest_idx = np.array([int(asn_index[d]) for d in dest_asns], dtype=np.int64)
    if len(dest_idx) and dest_idx.min() < 0:
        bad = [d for d in dest_asns if asn_index[d] < 0]
        raise ValueError(f"unknown destination ASNs: {bad}")
    n, d = arrays.n_as, len(dest_idx)
    n_jobs = resolve_routing_jobs(jobs, (d + block - 1) // block)
    with obs.span("routing.columnar.converge_all") as sp:
        sp.set("destinations", d)
        sp.set("jobs", n_jobs)
        sp.set("block", block)
        if n_jobs <= 1:
            index = build_solver_index(arrays)
            lens = np.empty((n, d), dtype=np.int32)
            nxt = np.empty((n, d), dtype=np.int32)
            via = np.empty((n, d), dtype=np.int8)
            for lo in range(0, d, block):
                hi = min(lo + block, d)
                lens[:, lo:hi], nxt[:, lo:hi], via[:, lo:hi] = converge_block(
                    index, dest_idx[lo:hi]
                )
        else:
            lens, nxt, via = _converge_sharded(arrays, dest_idx, n_jobs, block)
    obs.count("routing.columnar.batch_convergences")
    return ColumnarRouteTable(arrays, dest_idx, lens, nxt, via)


def _converge_shard(
    shm_name: str,
    shape: tuple[int, int],
    arrays: TopologyArrays,
    dest_idx: np.ndarray,
    col_lo: int,
    col_hi: int,
    block: int,
) -> None:
    """Pool-worker task: converge columns ``[col_lo, col_hi)`` in place.

    Attaches the shared route table by name and writes its disjoint
    column slice; nothing is returned, so the only inter-process traffic
    is the (compact) topology arrays on the way in.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        lens, nxt, via = _table_views(shm, shape)
        index = build_solver_index(arrays)
        for lo in range(col_lo, col_hi, block):
            hi = min(lo + block, col_hi)
            b_lens, b_nxt, b_via = converge_block(index, dest_idx[lo:hi])
            lens[:, lo:hi] = b_lens
            nxt[:, lo:hi] = b_nxt
            via[:, lo:hi] = b_via
    finally:
        shm.close()


def _table_bytes(shape: tuple[int, int]) -> int:
    n, d = shape
    return n * d * (4 + 4 + 1)


def _table_views(shm, shape: tuple[int, int]):
    """The three route-state arrays laid out back-to-back in one segment.

    int32 is plenty: path-node counts top out at ``n_as + 1`` and the
    ``SENTINEL_LEN`` marker still fits, while the full-table footprint
    halves versus int64 — the difference between a 10k-AS all-pairs
    table fitting in RAM comfortably or not.
    """
    n, d = shape
    lens = np.ndarray((n, d), dtype=np.int32, buffer=shm.buf, offset=0)
    nxt = np.ndarray((n, d), dtype=np.int32, buffer=shm.buf, offset=n * d * 4)
    via = np.ndarray((n, d), dtype=np.int8, buffer=shm.buf, offset=n * d * 8)
    return lens, nxt, via


def _converge_sharded(
    arrays: TopologyArrays, dest_idx: np.ndarray, n_jobs: int, block: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fan destination-column shards across a process pool via shm."""
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import shared_memory

    n, d = arrays.n_as, len(dest_idx)
    shape = (n, d)
    shm = shared_memory.SharedMemory(create=True, size=max(1, _table_bytes(shape)))
    try:
        # Contiguous column shards, one per worker.
        bounds = np.linspace(0, d, n_jobs + 1).astype(int)
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures = [
                pool.submit(
                    _converge_shard,
                    shm.name, shape, arrays, dest_idx,
                    int(bounds[w]), int(bounds[w + 1]), block,
                )
                for w in range(n_jobs)
                if bounds[w] < bounds[w + 1]
            ]
            for future in futures:
                future.result()
        lens_v, nxt_v, via_v = _table_views(shm, shape)
        lens, nxt, via = lens_v.copy(), nxt_v.copy(), via_v.copy()
        del lens_v, nxt_v, via_v
    finally:
        shm.close()
        shm.unlink()
    return lens, nxt, via


# ---------------------------------------------------------------------------
# IGP on CSR.
# ---------------------------------------------------------------------------

def igp_matrix(
    arrays: TopologyArrays, as_idx: int
) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs IGP costs for one AS, computed directly on CSR.

    No object translation: the intra-AS sub-graph is sliced out of the
    link table, parallel links collapse to the ``(metric, link_id)``-
    minimal edge (the same rule :class:`~repro.routing.igp.IGPTable`
    applies), and scipy's Dijkstra runs over the resulting sparse
    matrix.

    Returns:
        ``(router_ids, dist)``: the AS's router ids (ascending) and the
        dense cost matrix between them (``inf`` when disconnected).
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra

    from repro.topology.asys import IGPStyle
    from repro.topology.columnar import IGP_CODES

    indptr, rids = arrays.routers_by_as()
    routers = np.sort(rids[indptr[as_idx]: indptr[as_idx + 1]]).astype(np.int64)
    n_r = len(routers)
    local = np.full(arrays.n_routers, -1, dtype=np.int64)
    local[routers] = np.arange(n_r)
    u_loc = local[arrays.link_u]
    v_loc = local[arrays.link_v]
    intra = (u_loc >= 0) & (v_loc >= 0)
    u_loc, v_loc = u_loc[intra], v_loc[intra]
    if arrays.as_igp[as_idx] == IGP_CODES[IGPStyle.DELAY_METRIC]:
        metric = arrays.link_prop_ms[intra]
    else:
        metric = np.ones(int(intra.sum()))
    link_ids = np.nonzero(intra)[0]
    # Collapse parallel links: keep the (metric, link_id)-minimal edge
    # per directed pair, exactly as IGPTable does before building CSR.
    pair = u_loc * n_r + v_loc
    order = np.lexsort((link_ids, metric, pair))
    keep = np.ones(len(order), dtype=bool)
    keep[1:] = pair[order][1:] != pair[order][:-1]
    sel = order[keep]
    row = np.concatenate([u_loc[sel], v_loc[sel]])
    col = np.concatenate([v_loc[sel], u_loc[sel]])
    dat = np.concatenate([metric[sel], metric[sel]])
    graph = csr_matrix((dat, (row, col)), shape=(n_r, n_r))
    dist = _sp_dijkstra(graph, directed=True)
    return routers, dist

"""Routing protocols: intra-AS IGP, inter-AS BGP, and path resolution."""

from repro.routing.bgp import BGPError, BGPRoute, BGPTable
from repro.routing.columnar import (
    ColumnarRouteTable,
    ColumnarUnsupported,
    SolverIndex,
    build_solver_index,
    converge_all,
    converge_block,
    igp_matrix,
)
from repro.routing.dynamics import (
    FLAP_WINDOW_S,
    RouteFlapModel,
    resolve_secondary,
)
from repro.routing.forwarding import (
    EgressPolicy,
    ForwardPath,
    ForwardingError,
    OptimalResolver,
    PathResolver,
    RoundTripPath,
)
from repro.routing.igp import IGPError, IGPPath, IGPSuite, IGPTable, link_metric

__all__ = [
    "BGPError",
    "BGPRoute",
    "BGPTable",
    "ColumnarRouteTable",
    "ColumnarUnsupported",
    "EgressPolicy",
    "FLAP_WINDOW_S",
    "ForwardPath",
    "ForwardingError",
    "IGPError",
    "IGPPath",
    "IGPSuite",
    "IGPTable",
    "OptimalResolver",
    "PathResolver",
    "RoundTripPath",
    "RouteFlapModel",
    "SolverIndex",
    "build_solver_index",
    "converge_all",
    "converge_block",
    "igp_matrix",
    "link_metric",
    "resolve_secondary",
]

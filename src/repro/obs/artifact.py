"""The per-run ``RunTrace`` artifact and its ``metrics.json`` sidecar.

A :class:`RunTrace` is the JSON artifact written by
``repro suite --trace out.json`` (and ``repro reproduce --trace``):

* deterministic field order — top-level keys in a fixed sequence, every
  nested mapping sorted;
* **no wall-clock anywhere** — ``meta`` carries only configuration
  (command, seed, scale, jobs), and all times are monotonic durations;
* a :meth:`fingerprint` that covers only the deterministic projection
  (span structure + attributes + counters), so identically-seeded runs
  fingerprint identically while durations/PIDs vary freely.

The ``metrics.json`` sidecar (see :meth:`metrics_payload`) is the same
metrics block without the span tree, validated in CI against
``docs/schemas/metrics.schema.json``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.obs.runtime import Capture
from repro.obs.tracer import span_fingerprint


class TraceError(ValueError):
    """A trace file is unreadable or structurally invalid."""


class RunTrace:
    """One run's spans + metrics + configuration metadata."""

    VERSION = 1

    def __init__(
        self,
        meta: dict,
        spans: list[dict],
        metrics: dict,
    ) -> None:
        self.meta = dict(meta)
        self.spans = list(spans)
        self.metrics = metrics

    @classmethod
    def from_capture(cls, cap: Capture, meta: dict) -> "RunTrace":
        """Freeze a live :class:`~repro.obs.runtime.Capture` into an artifact."""
        return cls(meta=meta, spans=cap.tracer.export(), metrics=cap.metrics.export())

    # -- serialization -----------------------------------------------------

    def payload(self) -> dict:
        """The full artifact as a dict with deterministic field order."""
        return {
            "version": self.VERSION,
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
            "counters": self.metrics.get("counters", {}),
            "gauges": self.metrics.get("gauges", {}),
            "histograms": self.metrics.get("histograms", {}),
            "spans": self.spans,
        }

    def metrics_payload(self) -> dict:
        """The ``metrics.json`` sidecar payload (no span tree)."""
        return {
            "version": self.VERSION,
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
            "counters": self.metrics.get("counters", {}),
            "gauges": self.metrics.get("gauges", {}),
            "histograms": self.metrics.get("histograms", {}),
        }

    def write(self, path: str | Path) -> Path:
        """Write the trace JSON to ``path``; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.payload(), indent=1) + "\n")
        return target

    def write_metrics(self, path: str | Path) -> Path:
        """Write the ``metrics.json`` sidecar; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.metrics_payload(), indent=1) + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunTrace":
        """Read a trace artifact back.

        Raises:
            TraceError: on malformed JSON or an unexpected schema
                version (``OSError`` propagates for unreadable files).
        """
        try:
            raw = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != cls.VERSION:
            raise TraceError(
                f"{path}: not a RunTrace v{cls.VERSION} artifact"
            )
        spans = raw.get("spans")
        if not isinstance(spans, list):
            raise TraceError(f"{path}: missing span list")
        return cls(
            meta=raw.get("meta", {}),
            spans=spans,
            metrics={
                "counters": raw.get("counters", {}),
                "gauges": raw.get("gauges", {}),
                "histograms": raw.get("histograms", {}),
            },
        )

    # -- derived facts -----------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 of the deterministic projection (structure + counters).

        Durations, start offsets, PIDs, gauges, and histograms are
        excluded; identically-seeded runs — traced serially or in
        parallel — produce the same fingerprint.
        """
        counters = self.metrics.get("counters", {})
        payload = json.dumps(
            {
                "spans": span_fingerprint(self.spans),
                "counters": {k: counters[k] for k in sorted(counters)},
            },
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def subsystems(self) -> list[str]:
        """Sorted first-component span namespaces (``topology``, ...)."""
        return sorted({d["name"].split(".", 1)[0] for d in self.spans})

    def top_spans(self, n: int = 10) -> list[dict]:
        """The ``n`` slowest spans, longest first (ties by id)."""
        ranked = sorted(self.spans, key=lambda d: (-d["duration_s"], d["id"]))
        return ranked[:n]

    def spans_named(self, name: str) -> list[dict]:
        """All spans with exactly this name, in id order."""
        return [d for d in self.spans if d["name"] == name]


def write_run_trace(
    cap: Capture, meta: dict, path: str | Path
) -> tuple[Path, Path]:
    """Freeze a capture and write ``path`` plus its ``metrics.json`` sidecar.

    Returns (trace_path, metrics_path); the sidecar always lands next to
    the trace file.
    """
    trace = RunTrace.from_capture(cap, meta)
    trace_path = trace.write(path)
    metrics_path = trace.write_metrics(trace_path.with_name("metrics.json"))
    return trace_path, metrics_path

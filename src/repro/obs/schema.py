"""Minimal JSON-Schema-subset validation for observability artifacts.

The container ships no ``jsonschema`` dependency, so :func:`validate`
implements the small subset the checked-in schemas need: ``type``
(including type lists), ``properties`` / ``required`` /
``additionalProperties`` (boolean or sub-schema), ``items``, ``enum``,
``const``, and ``minimum``.

The canonical schemas live here as plain dicts (:data:`TRACE_SCHEMA`,
:data:`METRICS_SCHEMA`); ``docs/schemas/*.schema.json`` are the
checked-in copies CI validates against, and a test asserts the two
never drift.
"""

from __future__ import annotations

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: object, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; schemas mean real numbers
    return isinstance(value, expected)


def validate(instance: object, schema: dict, path: str = "$") -> list[str]:
    """Validate ``instance`` against a schema subset; return error strings.

    An empty list means the instance conforms.  Error strings carry a
    JSONPath-ish location (``$.counters.cache``) so CI failures point at
    the offending field.
    """
    errors: list[str] = []
    allowed = schema.get("type")
    if allowed is not None:
        names = [allowed] if isinstance(allowed, str) else list(allowed)
        if not any(_type_ok(instance, n) for n in names):
            errors.append(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected constant {schema['const']!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if not isinstance(instance, bool) and instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance!r} is below minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                errors.extend(validate(value, props[key], f"{path}.{key}"))
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                errors.extend(validate(value, extra, f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


_HISTOGRAM_SCHEMA = {
    "type": "object",
    "required": ["count", "total", "min", "max"],
    "additionalProperties": False,
    "properties": {
        "count": {"type": "integer", "minimum": 1},
        "total": {"type": "number"},
        "min": {"type": "number"},
        "max": {"type": "number"},
    },
}

_METRICS_PROPERTIES = {
    "version": {"const": 1},
    "meta": {
        "type": "object",
        "additionalProperties": {
            "type": ["string", "integer", "number", "boolean", "null"]
        },
    },
    "counters": {
        "type": "object",
        "additionalProperties": {"type": "integer", "minimum": 0},
    },
    "gauges": {
        "type": "object",
        "additionalProperties": {"type": "number"},
    },
    "histograms": {
        "type": "object",
        "additionalProperties": _HISTOGRAM_SCHEMA,
    },
}

#: Schema of the ``metrics.json`` sidecar (checked in at
#: docs/schemas/metrics.schema.json).
METRICS_SCHEMA: dict = {
    "type": "object",
    "required": ["version", "meta", "counters", "gauges", "histograms"],
    "additionalProperties": False,
    "properties": dict(_METRICS_PROPERTIES),
}

_SPAN_SCHEMA = {
    "type": "object",
    "required": [
        "id", "parent", "name", "start_s", "duration_s", "status", "pid",
        "attrs",
    ],
    "additionalProperties": False,
    "properties": {
        "id": {"type": "integer", "minimum": 1},
        "parent": {"type": ["integer", "null"]},
        "name": {"type": "string"},
        "start_s": {"type": "number", "minimum": 0},
        "duration_s": {"type": "number", "minimum": 0},
        "status": {"type": "string"},
        "pid": {"type": "integer", "minimum": 0},
        "attrs": {
            "type": "object",
            "additionalProperties": {
                "type": ["string", "integer", "number", "boolean", "null"]
            },
        },
    },
}

#: Schema of the full RunTrace artifact (checked in at
#: docs/schemas/trace.schema.json).
TRACE_SCHEMA: dict = {
    "type": "object",
    "required": [
        "version", "meta", "counters", "gauges", "histograms", "spans"
    ],
    "additionalProperties": False,
    "properties": {**_METRICS_PROPERTIES, "spans": {
        "type": "array",
        "items": _SPAN_SCHEMA,
    }},
}

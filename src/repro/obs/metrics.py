"""Counters, gauges, and histograms: the metrics half of :mod:`repro.obs`.

A :class:`Metrics` registry accumulates three kinds of instruments:

* **counters** — monotonically increasing event counts (cache hits,
  retries, pairs analyzed).  Counter values are configuration-derived
  and participate in the RunTrace fingerprint.
* **gauges** — last-written values (e.g. worker count).
* **histograms** — summarized distributions of observed values
  (count/total/min/max), used for durations; excluded from the
  fingerprint because their values are timing-derived.

Exports sort every key so the serialized form has a deterministic field
order; :meth:`Metrics.merge` folds in a blob exported by another process
(a build pool worker).
"""

from __future__ import annotations


class Metrics:
    """One capture's worth of counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_hists")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict[str, float]] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        h = self._hists.get(name)
        if h is None:
            self._hists[name] = {
                "count": 1, "total": value, "min": value, "max": value
            }
            return
        h["count"] += 1
        h["total"] += value
        h["min"] = min(h["min"], value)
        h["max"] = max(h["max"], value)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def export(self) -> dict:
        """Plain-dict form with every key sorted (deterministic order)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: dict(self._hists[k]) for k in sorted(self._hists)
            },
        }

    def merge(self, blob: dict) -> None:
        """Fold in a blob produced by :meth:`export` in another process.

        Counters add, gauges take the incoming value, histograms merge
        their summaries.
        """
        for name, value in blob.get("counters", {}).items():
            self.count(name, value)
        for name, value in blob.get("gauges", {}).items():
            self.gauge(name, value)
        for name, h in blob.get("histograms", {}).items():
            mine = self._hists.get(name)
            if mine is None:
                self._hists[name] = dict(h)
                continue
            mine["count"] += h["count"]
            mine["total"] += h["total"]
            mine["min"] = min(mine["min"], h["min"])
            mine["max"] = max(mine["max"], h["max"])

"""The single monotonic time source for the observability layer.

Every duration the repo reports — span durations, build-phase timings,
per-artifact progress lines — is derived from :func:`now` so timing is
collected in exactly one format and the determinism static analysis
(``repro check``, rule TIME001) has exactly one clock-reading module to
allowlist.  Durations are *reporting output only*: they never feed
dataset content, result hashes, or the RunTrace fingerprint.
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic seconds from an arbitrary origin (``time.perf_counter``).

    Only differences between two calls are meaningful; the absolute
    value carries no wall-clock information.
    """
    return time.perf_counter()

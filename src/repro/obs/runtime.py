"""Process-wide activation of tracing + metrics, with a free no-op path.

Instrumented modules call the module-level helpers unconditionally::

    from repro.obs import runtime as obs

    with obs.span("topology.generate") as sp:
        sp.set("seed", cfg.seed)
    obs.count("datasets.cache.hits")

When no capture is active (the default) every helper is a no-op that
allocates nothing: :func:`span` returns a shared singleton whose
``set``/``__enter__``/``__exit__`` do nothing, and the counter/gauge/
histogram helpers return immediately.  The hot path therefore pays one
global read per call site when tracing is off (asserted by the
no-allocation test in ``tests/obs``).

Activation is *swap*-scoped: :func:`capture` (or :func:`activate`)
installs a tracer/metrics pair and restores the previous pair on exit.
Build pool workers use a fresh :func:`capture` and ship its
:meth:`Capture.blob` back to the coordinator, which splices it in with
:func:`graft` — see ``repro.experiments.runner``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import Metrics
from repro.obs.tracer import Span, Tracer


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard the attribute."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_active_tracer: Tracer | None = None
_active_metrics: Metrics | None = None


def enabled() -> bool:
    """Whether a capture is currently active in this process."""
    return _active_tracer is not None


def span(name: str) -> "Span | _NoopSpan":
    """A span under the active tracer, or the shared no-op span."""
    tracer = _active_tracer
    if tracer is None:
        return _NOOP_SPAN
    return tracer.start(name)


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the active metrics registry (no-op when off)."""
    metrics = _active_metrics
    if metrics is not None:
        metrics.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active metrics registry (no-op when off)."""
    metrics = _active_metrics
    if metrics is not None:
        metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when off)."""
    metrics = _active_metrics
    if metrics is not None:
        metrics.observe(name, value)


def graft(blob: dict | None) -> None:
    """Splice a worker's exported blob into the active capture.

    No-op when ``blob`` is None or no capture is active.  Spans land
    under the currently open span; metrics merge into the registry.
    """
    if blob is None or _active_tracer is None:
        return
    _active_tracer.graft(blob["spans"])
    if _active_metrics is not None:
        _active_metrics.merge(blob["metrics"])


class Capture:
    """A live tracer/metrics pair handed out by :func:`capture`."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer, metrics: Metrics) -> None:
        self.tracer = tracer
        self.metrics = metrics

    def blob(self) -> dict:
        """Portable export (spans + metrics) for cross-process grafting."""
        return {"spans": self.tracer.export(), "metrics": self.metrics.export()}


@contextmanager
def activate(tracer: Tracer, metrics: Metrics) -> Iterator[None]:
    """Install an existing tracer/metrics pair for the dynamic extent.

    Swap semantics: the previously active pair (if any) is shadowed and
    restored on exit, so a worker-side fresh capture can safely run
    inside a fork-inherited parent capture.
    """
    global _active_tracer, _active_metrics
    prev = (_active_tracer, _active_metrics)
    # Workers run a fresh capture under this swap; each process touches
    # only its own pair, and exports cross the fork as blobs, not state.
    _active_tracer, _active_metrics = tracer, metrics  # repro: ignore[PAR003]  # justified: scoped per-process swap
    try:
        yield
    finally:
        _active_tracer, _active_metrics = prev  # repro: ignore[PAR003]  # justified: restores the pre-swap value


@contextmanager
def capture(clock_fn=None) -> Iterator[Capture]:
    """Activate a fresh tracer/metrics pair and yield the :class:`Capture`.

    ``clock_fn`` overrides the monotonic clock (tests inject a fake one
    for golden output).
    """
    cap = Capture(Tracer(clock_fn), Metrics())
    with activate(cap.tracer, cap.metrics):
        yield cap

"""Hierarchical spans: the tracing half of :mod:`repro.obs`.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans are
their own context managers::

    tracer = Tracer()
    with tracer.start("datasets.provision") as sp:
        sp.set("seed", 1999)
        with tracer.start("datasets.load"):
            ...

Determinism contract (tested, and relied on by the CI observability
job):

* Span ids are assigned sequentially in *start order*, so two runs of
  the same seeded code produce identical id/parent/name structure.
* Durations and start offsets come from the injected monotonic clock
  (:func:`repro.obs.clock.now` by default) and are excluded from
  :func:`span_fingerprint`; attributes must be derived from the run
  configuration (seed, scale, labels), never from timing, PIDs, or
  wall-clock.
* :meth:`Tracer.graft` splices spans exported by another process (a
  build pool worker) under the current span with deterministically
  remapped ids, so parallel and serial runs trace the same tree shape.

Tracers are not thread-safe; cross-process composition goes through
``export()``/``graft()`` blobs instead of shared state.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterator

from repro.obs import clock

#: Fixed field order of an exported span dict (artifact schema v1).
SPAN_FIELDS = (
    "id", "parent", "name", "start_s", "duration_s", "status", "pid", "attrs"
)


class Span:
    """One timed, attributed operation in the trace tree.

    Use via ``with tracer.start(name) as sp`` — entering assigns the id,
    parent, and start offset; exiting records the duration and an
    ``"ok"`` / ``"error:<ExceptionType>"`` status.
    """

    __slots__ = (
        "span_id", "parent_id", "name", "start_s", "duration_s",
        "status", "pid", "attrs", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = 0
        self.parent_id: int | None = None
        self.start_s = 0.0
        self.duration_s = 0.0
        self.status = "open"
        self.pid = os.getpid()
        self.attrs: dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (must be configuration-derived, JSON-able)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self, exc_type)
        return False

    def export(self) -> dict:
        """The span as a plain dict in :data:`SPAN_FIELDS` order."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "pid": self.pid,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class Tracer:
    """Collects a deterministic tree of spans for one capture.

    Args:
        clock_fn: Monotonic time source; injectable so tests can drive
            deterministic durations (defaults to
            :func:`repro.obs.clock.now`).
    """

    def __init__(self, clock_fn=None) -> None:
        self._clock = clock_fn if clock_fn is not None else clock.now
        self._origin = self._clock()
        self._spans: list[Span] = []
        self._stack: list[Span] = []

    def start(self, name: str) -> Span:
        """A new span, to be entered with ``with``; nests under the
        currently open span."""
        return Span(self, name)

    def _open(self, span: Span) -> None:
        span.span_id = len(self._spans) + 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.start_s = self._clock() - self._origin
        self._spans.append(span)
        self._stack.append(span)

    def _close(self, span: Span, exc_type: type | None) -> None:
        span.duration_s = (self._clock() - self._origin) - span.start_s
        span.status = "ok" if exc_type is None else f"error:{exc_type.__name__}"
        # Tolerate out-of-order closes (a leaked inner span) by popping
        # down to the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def export(self) -> list[dict]:
        """All spans as dicts, in id (= start) order."""
        return [span.export() for span in self._spans]

    def graft(self, span_dicts: list[dict]) -> None:
        """Splice spans exported by another tracer under the current span.

        Ids are remapped past this tracer's highest id, root spans of the
        blob are re-parented onto the currently open span, and start
        offsets are rebased so nested times stay meaningful.  Grafting
        the same blobs in the same order yields identical trees, which
        is how parallel worker builds stay trace-deterministic.
        """
        base = len(self._spans)
        parent = self._stack[-1] if self._stack else None
        parent_id = parent.span_id if parent is not None else None
        base_start = parent.start_s if parent is not None else 0.0
        for d in span_dicts:
            span = Span(self, d["name"])
            span.span_id = d["id"] + base
            span.parent_id = (
                parent_id if d["parent"] is None else d["parent"] + base
            )
            span.start_s = base_start + d["start_s"]
            span.duration_s = d["duration_s"]
            span.status = d["status"]
            span.pid = d["pid"]
            span.attrs = dict(d["attrs"])
            self._spans.append(span)


def span_fingerprint(span_dicts: list[dict]) -> str:
    """SHA-256 over the *deterministic* projection of exported spans.

    Includes id, parent, name, status, and attributes; excludes start
    offsets, durations, and PIDs (the only nondeterministic fields), so
    two identically-seeded runs — serial or parallel — fingerprint
    identically.
    """
    shadow = [
        [d["id"], d["parent"], d["name"], d["status"],
         sorted(d["attrs"].items())]
        for d in span_dicts
    ]
    payload = json.dumps(shadow, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(payload.encode()).hexdigest()

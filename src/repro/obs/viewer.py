"""Terminal rendering for RunTrace artifacts (``repro trace <file>``).

Shows where a run spent its time: the top-N slowest spans, a per-group
dataset build breakdown (attempts + build seconds, from the
``datasets.build`` spans), and the counter/gauge/histogram registries.
Pure formatting — no clock reads — so golden tests drive it with a fake
clock and assert exact output.
"""

from __future__ import annotations

from repro.obs.artifact import RunTrace


def _fmt_attrs(attrs: dict) -> str:
    return " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))


def render_trace(trace: RunTrace, *, top: int = 10) -> str:
    """Multi-line human-readable summary of one RunTrace."""
    meta = trace.meta
    meta_bits = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    subsystems = trace.subsystems()
    lines = [
        f"trace: {meta_bits}" if meta_bits else "trace:",
        f"spans: {len(trace.spans)} across {len(subsystems)} subsystem(s): "
        + ", ".join(subsystems),
    ]
    ranked = trace.top_spans(top)
    if ranked:
        lines.append(f"top {len(ranked)} slowest span(s):")
        for d in ranked:
            status = "" if d["status"] == "ok" else f"  [{d['status']}]"
            attrs = _fmt_attrs(d["attrs"])
            attrs = f"  {attrs}" if attrs else ""
            lines.append(
                f"  {d['duration_s']:9.3f}s  {d['name']:<28}{attrs}{status}"
            )
    builds = trace.spans_named("datasets.build")
    if builds:
        lines.append("build groups:")
        per_group: dict[str, list[dict]] = {}
        for d in builds:
            per_group.setdefault(str(d["attrs"].get("group", "?")), []).append(d)
        for group in sorted(per_group):
            spans = per_group[group]
            total = sum(d["duration_s"] for d in spans)
            bad = sum(1 for d in spans if d["status"] != "ok")
            note = f"  ({bad} failed attempt(s))" if bad else ""
            lines.append(
                f"  {group:<8} {total:8.3f}s build across "
                f"{len(spans)} attempt(s){note}"
            )
    counters = trace.metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<32} {counters[name]}")
    gauges = trace.metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<32} {gauges[name]:g}")
    hists = trace.metrics.get("histograms", {})
    if hists:
        lines.append("histograms:")
        for name in sorted(hists):
            h = hists[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<32} n={h['count']} mean={mean:.3f} "
                f"min={h['min']:.3f} max={h['max']:.3f}"
            )
    return "\n".join(lines)

"""repro.obs: zero-dependency run-wide tracing + metrics.

The observability layer has two halves threaded through the pipeline's
hot path (topology generation, IGP/BGP convergence, dataset builds and
the fault supervisor, alternate-path search, overlay evaluation, and
``reproduce``):

* **spans** — hierarchical timed operations
  (:mod:`repro.obs.tracer`), started with ``obs.span("name")``;
* **metrics** — counters/gauges/histograms
  (:mod:`repro.obs.metrics`), bumped with ``obs.count("name")``.

Both are **no-ops when disabled** (:mod:`repro.obs.runtime`): the span
helper returns a shared singleton and allocates nothing, so untraced
runs pay nothing and stay byte-identical to traced ones.  A run's
capture freezes into a :class:`~repro.obs.artifact.RunTrace` JSON
artifact (plus a ``metrics.json`` sidecar) written by
``repro suite --trace out.json`` and inspected with ``repro trace`` —
see docs/OBSERVABILITY.md for the span taxonomy and artifact schema.
"""

from repro.obs import clock, runtime
from repro.obs.artifact import RunTrace, TraceError, write_run_trace
from repro.obs.metrics import Metrics
from repro.obs.runtime import (
    Capture,
    activate,
    capture,
    count,
    enabled,
    gauge,
    graft,
    observe,
    span,
)
from repro.obs.schema import METRICS_SCHEMA, TRACE_SCHEMA, validate
from repro.obs.tracer import Span, Tracer, span_fingerprint
from repro.obs.viewer import render_trace

__all__ = [
    "Capture",
    "METRICS_SCHEMA",
    "Metrics",
    "RunTrace",
    "Span",
    "TRACE_SCHEMA",
    "TraceError",
    "Tracer",
    "activate",
    "capture",
    "clock",
    "count",
    "enabled",
    "gauge",
    "graft",
    "observe",
    "render_trace",
    "runtime",
    "span",
    "span_fingerprint",
    "validate",
    "write_run_trace",
]

"""The :class:`Topology` container: ASes, routers, links, and hosts.

A topology is the static substrate over which routing
(:mod:`repro.routing`) resolves paths and the dynamic simulator
(:mod:`repro.netsim`) applies load.  It is built by
:mod:`repro.topology.generator` and then treated as immutable, except that
measurement hosts may be attached after generation.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.topology.asys import ASLink, AutonomousSystem, Relationship
from repro.topology.geography import City, propagation_delay_ms
from repro.topology.links import DEFAULT_CAPACITY_MBPS, Link, LinkKind
from repro.topology.router import Host, Router, RouterRole


class TopologyError(RuntimeError):
    """Raised on structurally invalid topology operations."""


@dataclass(frozen=True, slots=True)
class ASRelationshipIndex:
    """Per-relationship AS adjacency, precomputed for the routing fast path.

    The BGP three-stage solver (:mod:`repro.routing.bgp`) needs, per AS,
    its neighbors split by relationship class plus a topological order of
    the customer→provider hierarchy.  Building these once per topology
    (instead of re-classifying every :class:`ASLink` per destination)
    keeps route computation O(E) per destination.

    Attributes:
        customers: ``asn -> sorted neighbor ASNs that are asn's customers``.
        providers: ``asn -> sorted neighbor ASNs that are asn's providers``.
        peers: ``asn -> sorted neighbor ASNs that are asn's peers``.
        has_siblings: Whether any SIBLING adjacency exists (the staged
            solver does not model sibling route laundering and falls back
            to the fixpoint oracle when this is set).
        up_order: Every ASN ordered so each AS appears *after* all of its
            customers (customers-first topological order of the
            customer→provider DAG), or ``None`` when the relationship
            graph contains a customer-provider cycle.
    """

    customers: dict[int, tuple[int, ...]]
    providers: dict[int, tuple[int, ...]]
    peers: dict[int, tuple[int, ...]]
    has_siblings: bool
    up_order: tuple[int, ...] | None


def _build_relationship_index(topo: "Topology") -> ASRelationshipIndex:
    customers: dict[int, list[int]] = defaultdict(list)
    providers: dict[int, list[int]] = defaultdict(list)
    peers: dict[int, list[int]] = defaultdict(list)
    has_siblings = False
    for as_link in topo.as_links:
        for asn in (as_link.a, as_link.b):
            neighbor = as_link.other(asn)
            rel = as_link.relationship_from(asn)
            if rel is Relationship.CUSTOMER:
                customers[asn].append(neighbor)
            elif rel is Relationship.PROVIDER:
                providers[asn].append(neighbor)
            elif rel is Relationship.PEER:
                peers[asn].append(neighbor)
            else:
                has_siblings = True
    # Customers-first topological order of the provider hierarchy (Kahn
    # with a min-heap so the order is deterministic for a given topology).
    indegree = {asn: len(customers.get(asn, ())) for asn in topo.ases}
    ready = [asn for asn, deg in sorted(indegree.items()) if deg == 0]
    heapq.heapify(ready)
    up_order: list[int] = []
    while ready:
        asn = heapq.heappop(ready)
        up_order.append(asn)
        for provider in providers.get(asn, ()):
            indegree[provider] -= 1
            if indegree[provider] == 0:
                heapq.heappush(ready, provider)
    order: tuple[int, ...] | None = tuple(up_order)
    if len(up_order) != len(topo.ases):
        order = None  # customer-provider cycle: no valid hierarchy
    return ASRelationshipIndex(
        customers={a: tuple(sorted(ns)) for a, ns in customers.items()},
        providers={a: tuple(sorted(ns)) for a, ns in providers.items()},
        peers={a: tuple(sorted(ns)) for a, ns in peers.items()},
        has_siblings=has_siblings,
        up_order=order,
    )


@dataclass
class Topology:
    """A complete simulated internetwork.

    The container owns all identifier spaces: router ids and link ids are
    dense indices into :attr:`routers` and :attr:`links`, so the netsim
    layer can keep per-link state in flat numpy arrays.
    """

    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    as_links: list[ASLink] = field(default_factory=list)
    routers: list[Router] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    hosts: list[Host] = field(default_factory=list)

    # Derived indices, maintained incrementally by the add_* methods.
    _as_adj: dict[int, list[ASLink]] = field(default_factory=lambda: defaultdict(list))
    _router_adj: dict[int, list[Link]] = field(default_factory=lambda: defaultdict(list))
    _core_router: dict[tuple[int, str], int] = field(default_factory=dict)
    _as_routers: dict[int, list[int]] = field(default_factory=lambda: defaultdict(list))
    _exchange_links: dict[frozenset[int], list[int]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _host_by_name: dict[str, Host] = field(default_factory=dict)
    _rel_index: ASRelationshipIndex | None = field(
        default=None, repr=False, compare=False
    )
    _route_cache: dict[str, dict] = field(
        default_factory=dict, repr=False, compare=False
    )

    # -- construction ------------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Register an AS.

        Raises:
            TopologyError: if the ASN is already taken.
        """
        if asys.asn in self.ases:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self.ases[asys.asn] = asys
        self._rel_index = None
        self._route_cache.clear()
        return asys

    def add_router(self, asn: int, city: City, role: RouterRole) -> Router:
        """Create a router in ``asn`` at ``city`` and return it.

        Raises:
            TopologyError: if ``asn`` is unknown.
        """
        if asn not in self.ases:
            raise TopologyError(f"unknown ASN {asn}")
        router = Router(router_id=len(self.routers), asn=asn, city=city, role=role)
        self.routers.append(router)
        self._as_routers[asn].append(router.router_id)
        self._route_cache.clear()
        if role is RouterRole.CORE:
            key = (asn, city.name)
            if key in self._core_router:
                raise TopologyError(f"AS{asn} already has a core router in {city.name}")
            self._core_router[key] = router.router_id
        return router

    def add_link(
        self,
        u: int,
        v: int,
        kind: LinkKind,
        *,
        capacity_mbps: float | None = None,
        base_utilization: float = 0.3,
        prop_delay_ms: float | None = None,
    ) -> Link:
        """Create a link between routers ``u`` and ``v`` and return it.

        Propagation delay defaults to the city-to-city value; capacity
        defaults by link kind.

        Raises:
            TopologyError: if either router id is out of range.
        """
        if not (0 <= u < len(self.routers) and 0 <= v < len(self.routers)):
            raise TopologyError(f"router id out of range: ({u}, {v})")
        if prop_delay_ms is None:
            prop_delay_ms = propagation_delay_ms(self.routers[u].city, self.routers[v].city)
        if capacity_mbps is None:
            capacity_mbps = DEFAULT_CAPACITY_MBPS[kind]
        link = Link(
            link_id=len(self.links),
            u=min(u, v),
            v=max(u, v),
            kind=kind,
            prop_delay_ms=prop_delay_ms,
            capacity_mbps=capacity_mbps,
            base_utilization=base_utilization,
        )
        self.links.append(link)
        self._router_adj[link.u].append(link)
        self._router_adj[link.v].append(link)
        self._route_cache.clear()
        return link

    def add_as_link(self, as_link: ASLink) -> ASLink:
        """Register a BGP adjacency (router-level exchange links are added
        separately via :meth:`add_exchange_link`).

        Raises:
            TopologyError: if either ASN is unknown.
        """
        for asn in (as_link.a, as_link.b):
            if asn not in self.ases:
                raise TopologyError(f"unknown ASN {asn} in AS link")
        self.as_links.append(as_link)
        self._as_adj[as_link.a].append(as_link)
        self._as_adj[as_link.b].append(as_link)
        # AS-level only: IGP state is a function of the router/link
        # substrate and stays warm (see _invalidate_as_graph).
        self._invalidate_as_graph()
        return as_link

    def add_exchange_link(self, link: Link) -> None:
        """Index an already-created EXCHANGE link by its AS endpoints.

        Raises:
            TopologyError: if the link is not an exchange link or connects
                routers within one AS.
        """
        if link.kind is not LinkKind.EXCHANGE:
            raise TopologyError("add_exchange_link requires an EXCHANGE link")
        asn_u = self.routers[link.u].asn
        asn_v = self.routers[link.v].asn
        if asn_u == asn_v:
            raise TopologyError("exchange link endpoints must be in different ASes")
        self._exchange_links[frozenset((asn_u, asn_v))].append(link.link_id)

    # -- scenario mutation -------------------------------------------------
    #
    # The failure engine (repro.scenario) toggles AS-level structure —
    # adjacencies and the exchange-link index — but never the router/link
    # substrate: netsim keeps per-link state in flat arrays sized at
    # construction, so link ids must stay dense and stable for the life of
    # a run.  Each mutator returns exactly what its inverse needs, so a
    # timeline can revert to a byte-identical pristine topology.

    def _invalidate_as_graph(self) -> None:
        """Drop state derived from the AS graph after an adjacency change.

        Only the BGP bag of :meth:`routing_cache` is cleared: IGP tables
        are intra-AS functions of the router/link substrate, which
        adjacency mutations cannot touch, so they stay warm across
        scenario segments.
        """
        self._rel_index = None
        self._route_cache.pop("bgp", None)

    def as_link_between(self, asn_a: int, asn_b: int) -> ASLink | None:
        """The BGP adjacency connecting two ASes, or None."""
        for as_link in self._as_adj.get(asn_a, []):
            if as_link.other(asn_a) == asn_b:
                return as_link
        return None

    def remove_as_link(self, as_link: ASLink) -> int:
        """Remove a BGP adjacency; returns its index in :attr:`as_links`.

        The exchange-link index entry for the pair is *not* touched (use
        :meth:`detach_exchange_link`); pass the returned index to
        :meth:`insert_as_link` to restore the adjacency exactly.

        Raises:
            TopologyError: if the adjacency is not registered.
        """
        try:
            index = self.as_links.index(as_link)
        except ValueError:
            raise TopologyError(
                f"AS link AS{as_link.a}-AS{as_link.b} is not registered"
            ) from None
        del self.as_links[index]
        self._as_adj[as_link.a].remove(as_link)
        self._as_adj[as_link.b].remove(as_link)
        self._invalidate_as_graph()
        return index

    def insert_as_link(self, index: int, as_link: ASLink) -> ASLink:
        """Re-insert a removed adjacency at its original position.

        Exact inverse of :meth:`remove_as_link`: the adjacency lists are
        restored to the order sequential :meth:`add_as_link` calls would
        have produced, so solver iteration order round-trips.

        Raises:
            TopologyError: if the index is out of range or an ASN unknown.
        """
        for asn in (as_link.a, as_link.b):
            if asn not in self.ases:
                raise TopologyError(f"unknown ASN {asn} in AS link")
        if not 0 <= index <= len(self.as_links):
            raise TopologyError(f"AS link index {index} out of range")
        self.as_links.insert(index, as_link)
        for asn in (as_link.a, as_link.b):
            pos = sum(
                1 for other in self.as_links[:index] if asn in (other.a, other.b)
            )
            self._as_adj[asn].insert(pos, as_link)
        self._invalidate_as_graph()
        return as_link

    def detach_exchange_link(self, link_id: int) -> int:
        """Remove one router-level link from the exchange index.

        The :class:`Link` itself stays in :attr:`links` (the netsim
        substrate is fixed), so this only changes what
        :meth:`exchange_links_between` reports.  Forwarding-level state
        only: routing caches are untouched, but :class:`PathResolver`
        instances built before the change hold stale egress rankings and
        must be rebuilt.

        Returns:
            The link's position in its index entry, for
            :meth:`reattach_exchange_link`.

        Raises:
            TopologyError: if the link is not in the exchange index.
        """
        link = self.links[link_id]
        key = frozenset((self.routers[link.u].asn, self.routers[link.v].asn))
        ids = self._exchange_links.get(key)
        if not ids or link_id not in ids:
            raise TopologyError(
                f"link {link_id} is not in the exchange index"
            )
        position = ids.index(link_id)
        ids.pop(position)
        if not ids:
            del self._exchange_links[key]
        return position

    def reattach_exchange_link(self, link_id: int, position: int) -> None:
        """Exact inverse of :meth:`detach_exchange_link`.

        Raises:
            TopologyError: if the link is not an inter-AS exchange link or
                the position is out of range.
        """
        link = self.links[link_id]
        if link.kind is not LinkKind.EXCHANGE:
            raise TopologyError("reattach_exchange_link requires an EXCHANGE link")
        asn_u = self.routers[link.u].asn
        asn_v = self.routers[link.v].asn
        if asn_u == asn_v:
            raise TopologyError("exchange link endpoints must be in different ASes")
        ids = self._exchange_links[frozenset((asn_u, asn_v))]
        if not 0 <= position <= len(ids):
            raise TopologyError(
                f"exchange index position {position} out of range"
            )
        ids.insert(position, link_id)

    def add_host(self, host: Host) -> Host:
        """Register a measurement host.

        Raises:
            TopologyError: if the host name is already taken.
        """
        if host.name in self._host_by_name:
            raise TopologyError(f"duplicate host name {host.name!r}")
        self.hosts.append(host)
        self._host_by_name[host.name] = host
        return host

    # -- lookups -----------------------------------------------------------

    def as_neighbors(self, asn: int) -> list[ASLink]:
        """AS adjacencies involving ``asn``."""
        return self._as_adj.get(asn, [])

    def relationship_index(self) -> ASRelationshipIndex:
        """Relationship-classified AS adjacency (cached until mutated).

        Invalidated by :meth:`add_as` / :meth:`add_as_link`; consumers
        must not hold the returned index across topology mutations.
        """
        if self._rel_index is None:
            self._rel_index = _build_relationship_index(self)
        return self._rel_index

    def routing_cache(self, layer: str) -> dict:
        """Mutable memo bag for derived routing state, keyed by layer name.

        Routing state (converged BGP routes, IGP tables) is a pure
        function of the topology, so resolver instances built over the
        same topology share it through these bags instead of recomputing
        it (:mod:`repro.routing.bgp` uses layer ``"bgp"``,
        :mod:`repro.routing.igp` uses ``"igp"``).  Every bag is cleared
        whenever the AS graph or the router/link substrate is mutated, so
        cached state can never go stale; attaching a host does not clear
        them (hosts are endpoints, not graph structure).
        """
        return self._route_cache.setdefault(layer, {})

    def __getstate__(self):
        # Derived routing state is cheap to rebuild and can be large
        # (all-pairs IGP matrices, converged route sets); drop it so
        # pickles shipped to worker processes stay lean.
        state = self.__dict__.copy()
        state["_rel_index"] = None
        state["_route_cache"] = {}
        return state

    def relationship(self, asn: int, neighbor: int) -> Relationship | None:
        """Relationship of ``neighbor`` from ``asn``'s viewpoint, or None."""
        for as_link in self._as_adj.get(asn, []):
            if as_link.other(asn) == neighbor:
                return as_link.relationship_from(asn)
        return None

    def routers_of(self, asn: int) -> list[int]:
        """Router ids belonging to AS ``asn``."""
        return self._as_routers.get(asn, [])

    def core_router(self, asn: int, city_name: str) -> int:
        """The core router of ``asn`` in ``city_name``.

        Raises:
            TopologyError: if the AS has no core router there.
        """
        try:
            return self._core_router[(asn, city_name)]
        except KeyError:
            raise TopologyError(f"AS{asn} has no core router in {city_name}") from None

    def has_core_router(self, asn: int, city_name: str) -> bool:
        """Whether ``asn`` has a core router in ``city_name``."""
        return (asn, city_name) in self._core_router

    def links_of(self, router_id: int) -> list[Link]:
        """Links incident to a router."""
        return self._router_adj.get(router_id, [])

    def exchange_links_between(self, asn_a: int, asn_b: int) -> list[Link]:
        """Router-level exchange links realizing the (a, b) AS adjacency."""
        ids = self._exchange_links.get(frozenset((asn_a, asn_b)), [])
        return [self.links[i] for i in ids]

    def host(self, name: str) -> Host:
        """Look up a host by name.

        Raises:
            TopologyError: if no such host exists.
        """
        try:
            return self._host_by_name[name]
        except KeyError:
            raise TopologyError(f"unknown host {name!r}") from None

    def host_names(self) -> list[str]:
        """Names of all registered hosts, in registration order."""
        return [h.name for h in self.hosts]

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if violated.

        Invariants:
          * every AS link has at least one router-level exchange link;
          * every exchange city of an AS link hosts core routers of both ASes;
          * every host's access router and link exist and match;
          * link endpoints are valid router ids.
        """
        for as_link in self.as_links:
            if not self.exchange_links_between(as_link.a, as_link.b):
                raise TopologyError(
                    f"AS link AS{as_link.a}-AS{as_link.b} has no exchange links"
                )
            for city_name in as_link.exchange_cities:
                for asn in (as_link.a, as_link.b):
                    if not self.has_core_router(asn, city_name):
                        raise TopologyError(
                            f"AS{asn} lacks a core router in exchange city {city_name}"
                        )
        for link in self.links:
            if not (0 <= link.u < len(self.routers) and 0 <= link.v < len(self.routers)):
                raise TopologyError(f"link {link.link_id} has invalid endpoints")
        for host in self.hosts:
            if not 0 <= host.access_router < len(self.routers):
                raise TopologyError(f"host {host.name} has invalid access router")
            if not 0 <= host.access_link < len(self.links):
                raise TopologyError(f"host {host.name} has invalid access link")
            router = self.routers[host.access_router]
            if router.asn != host.asn:
                raise TopologyError(
                    f"host {host.name} attaches to router of AS{router.asn}, "
                    f"but claims AS{host.asn}"
                )

    # -- summaries ---------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Size counters, handy for logging and tests."""
        return {
            "ases": len(self.ases),
            "as_links": len(self.as_links),
            "routers": len(self.routers),
            "links": len(self.links),
            "hosts": len(self.hosts),
        }

"""Router and host objects.

Routers are the hop-level entities that a simulated ``traceroute`` reveals.
Each router belongs to exactly one AS and sits in one city (a POP).  Hosts
are end systems attached to an access router of a stub or transit AS; they
are the endpoints between which the paper's measurements are taken.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.topology.geography import City


class RouterRole(enum.Enum):
    """Function of a router inside its AS."""

    CORE = "core"         # intra-AS backbone router at a POP
    BORDER = "border"     # speaks BGP with a neighboring AS
    ACCESS = "access"     # aggregates host attachments


@dataclass(frozen=True, slots=True)
class Router:
    """A router: one hop in a traceroute.

    Attributes:
        router_id: Dense integer id, unique within a topology.
        asn: Owning autonomous system.
        city: POP location.
        role: Core, border, or access.
    """

    router_id: int
    asn: int
    city: City
    role: RouterRole

    @property
    def label(self) -> str:
        """Traceroute-style display name, e.g. ``"core3.seattle.as7"``."""
        return f"{self.role.value}{self.router_id}.{self.city.name}.as{self.asn}"


@dataclass(frozen=True, slots=True)
class Host:
    """A measurement endpoint (the paper's traceroute servers / npd hosts).

    Attributes:
        host_id: Dense integer id, unique within a topology.
        name: Stable human-readable name, e.g. ``"host-seattle-3"``.
        city: Location.
        asn: Stub AS the host lives in.
        access_router: Router id of the attachment point.
        access_link: Link id of the host's access link.
        icmp_rate_limit_per_min: If positive, the host rate-limits ICMP
            (traceroute) responses to this many per minute; probes beyond
            the budget go unanswered.  The paper had to detect and filter
            such hosts.  Zero means no limiting.
    """

    host_id: int
    name: str
    city: City
    asn: int
    access_router: int
    access_link: int
    icmp_rate_limit_per_min: float = 0.0

    @property
    def rate_limits_icmp(self) -> bool:
        """Whether this host applies ICMP rate limiting."""
        return self.icmp_rate_limit_per_min > 0.0

"""IPv4 addressing for generated topologies.

Assigns each AS a /16 from experimental space, each (AS, city) POP a /24
within it, and each router an address in its POP's /24 — so traceroute
output, logs, and exports carry realistic-looking addresses and reverse
lookups work.  Purely cosmetic to the simulation, but essential to tools
that present router-level paths.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.topology.network import Topology


class AddressingError(RuntimeError):
    """Raised when an address plan cannot be built or queried."""


#: Base of the allocation: RFC 2544 / benchmarking space keeps generated
#: addresses from colliding with anything meaningful.
_BASE = int(ipaddress.IPv4Address("100.64.0.0"))

#: /16 blocks available under the base (10-bit shared-address space is
#: only /10; continue into the following experimental ranges as needed).
_MAX_AS_BLOCKS = 4096


@dataclass(frozen=True, slots=True)
class RouterAddress:
    """One router's assigned address and reverse name."""

    router_id: int
    address: ipaddress.IPv4Address
    hostname: str


class AddressPlan:
    """Deterministic address assignment for one topology."""

    def __init__(self, topo: Topology) -> None:
        if len(topo.ases) > _MAX_AS_BLOCKS:
            raise AddressingError("too many ASes for the address plan")
        self._topo = topo
        self._by_router: dict[int, RouterAddress] = {}
        self._by_address: dict[ipaddress.IPv4Address, RouterAddress] = {}
        as_block: dict[int, int] = {}
        for i, asn in enumerate(sorted(topo.ases)):
            as_block[asn] = _BASE + (i << 16)
        # Per (asn, city) subnet index, then per-router host index.
        subnet_index: dict[tuple[int, str], int] = {}
        host_index: dict[tuple[int, str], int] = {}
        for router in topo.routers:
            key = (router.asn, router.city.name)
            if key not in subnet_index:
                subnet_index[key] = len(
                    [k for k in subnet_index if k[0] == router.asn]
                )
                host_index[key] = 0
            host_index[key] += 1
            if host_index[key] > 253:
                raise AddressingError(f"POP {key} exceeds a /24")
            value = (
                as_block[router.asn]
                + (subnet_index[key] << 8)
                + host_index[key]
            )
            address = ipaddress.IPv4Address(value)
            entry = RouterAddress(
                router_id=router.router_id,
                address=address,
                hostname=f"{router.role.value}{router.router_id}"
                f".{router.city.name}.as{router.asn}.net",
            )
            self._by_router[router.router_id] = entry
            self._by_address[address] = entry

    def address_of(self, router_id: int) -> ipaddress.IPv4Address:
        """The router's assigned IPv4 address.

        Raises:
            AddressingError: for unknown router ids.
        """
        try:
            return self._by_router[router_id].address
        except KeyError:
            raise AddressingError(f"unknown router {router_id}") from None

    def reverse(self, address: ipaddress.IPv4Address | str) -> str:
        """Reverse lookup: address to hostname.

        Raises:
            AddressingError: for unassigned addresses.
        """
        addr = ipaddress.IPv4Address(address)
        try:
            return self._by_address[addr].hostname
        except KeyError:
            raise AddressingError(f"no router at {addr}") from None

    def resolve(self, hostname: str) -> ipaddress.IPv4Address:
        """Forward lookup: hostname to address.

        Raises:
            AddressingError: for unknown hostnames.
        """
        for entry in self._by_router.values():
            if entry.hostname == hostname:
                return entry.address
        raise AddressingError(f"unknown hostname {hostname!r}")

    def as_prefix(self, asn: int) -> ipaddress.IPv4Network:
        """The /16 allocated to an AS.

        Raises:
            AddressingError: for unknown ASNs.
        """
        asns = sorted(self._topo.ases)
        try:
            index = asns.index(asn)
        except ValueError:
            raise AddressingError(f"unknown ASN {asn}") from None
        return ipaddress.IPv4Network((_BASE + (index << 16), 16))

    def format_hop(self, router_id: int) -> str:
        """Traceroute-style display: ``hostname (a.b.c.d)``."""
        entry = self._by_router[router_id]
        return f"{entry.hostname} ({entry.address})"

"""Topology export to networkx graphs, plus structural statistics.

The simulator's native structures are tuned for routing computations; for
exploratory analysis (degree distributions, clustering, visualization in
standard tools) they export to :mod:`networkx` graphs at either level of
the routing hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.topology.asys import ASTier
from repro.topology.network import Topology


def as_graph(topo: Topology) -> nx.Graph:
    """The AS-level graph: one node per AS, one edge per BGP adjacency.

    Node attributes: ``name``, ``tier``, ``n_cities``.
    Edge attributes: ``relationship`` (from the lower ASN's viewpoint),
    ``exchange_cities``.
    """
    graph = nx.Graph()
    for asn, asys in topo.ases.items():
        graph.add_node(
            asn,
            name=asys.name,
            tier=asys.tier.value,
            n_cities=len(asys.cities),
        )
    for link in topo.as_links:
        graph.add_edge(
            link.a,
            link.b,
            relationship=link.rel_ab.value,
            exchange_cities=list(link.exchange_cities),
        )
    return graph


def router_graph(topo: Topology) -> nx.Graph:
    """The router-level graph with per-link delay/capacity attributes.

    Node attributes: ``asn``, ``city``, ``role``.
    Edge attributes: ``kind``, ``prop_delay_ms``, ``capacity_mbps``,
    ``link_id``.
    """
    graph = nx.Graph()
    for router in topo.routers:
        graph.add_node(
            router.router_id,
            asn=router.asn,
            city=router.city.name,
            role=router.role.value,
        )
    for link in topo.links:
        graph.add_edge(
            link.u,
            link.v,
            kind=link.kind.value,
            prop_delay_ms=link.prop_delay_ms,
            capacity_mbps=link.capacity_mbps,
            link_id=link.link_id,
        )
    return graph


@dataclass(frozen=True, slots=True)
class TopologyStats:
    """Structural summary of a generated internetwork."""

    n_ases: int
    n_as_links: int
    n_routers: int
    n_links: int
    as_mean_degree: float
    tier1_clique_density: float
    stub_mean_providers: float
    router_diameter_hops: int
    as_connected: bool


def topology_stats(topo: Topology) -> TopologyStats:
    """Compute structural statistics used by validation tests.

    ``tier1_clique_density`` is the fraction of tier-1 pairs that peer
    directly (1.0 = full clique, as in the generated topologies);
    ``router_diameter_hops`` is measured on the largest connected
    component.
    """
    asg = as_graph(topo)
    rg = router_graph(topo)
    tier1 = [a for a, d in asg.nodes(data=True) if d["tier"] == ASTier.TIER1.value]
    stubs = [a for a, d in asg.nodes(data=True) if d["tier"] == ASTier.STUB.value]
    if len(tier1) >= 2:
        possible = len(tier1) * (len(tier1) - 1) / 2
        present = sum(
            1
            for i, a in enumerate(tier1)
            for b in tier1[i + 1:]
            if asg.has_edge(a, b)
        )
        clique_density = present / possible
    else:
        clique_density = 1.0
    stub_providers = [
        sum(
            1
            for nbr in asg.neighbors(s)
            if topo.relationship(s, nbr) is not None
        )
        for s in stubs
    ]
    if nx.is_connected(rg):
        component = rg
    else:
        largest = max(nx.connected_components(rg), key=len)
        component = rg.subgraph(largest)
    # Exact diameters are expensive; a double-BFS sweep lower bound is
    # plenty for validation.
    start = next(iter(component.nodes))
    far, _ = max(
        nx.single_source_shortest_path_length(component, start).items(),
        key=lambda kv: kv[1],
    )
    diameter = max(
        nx.single_source_shortest_path_length(component, far).values()
    )
    return TopologyStats(
        n_ases=len(topo.ases),
        n_as_links=len(topo.as_links),
        n_routers=len(topo.routers),
        n_links=len(topo.links),
        as_mean_degree=2.0 * asg.number_of_edges() / max(asg.number_of_nodes(), 1),
        tier1_clique_density=clique_density,
        stub_mean_providers=(
            sum(stub_providers) / len(stub_providers) if stub_providers else 0.0
        ),
        router_diameter_hops=int(diameter),
        as_connected=nx.is_connected(asg),
    )

"""Seeded generation of hierarchical Internet topologies.

The generator builds an internetwork in the image of the late-1990s
Internet that the paper measured:

* a small clique of **tier-1 backbones** with POPs in major cities,
  peering with each other at a handful of exchange points;
* **regional transit providers** that buy transit from one or two tier-1s
  and occasionally peer with each other regionally;
* **stub ASes** (universities, enterprises) that buy transit from one or
  two providers; a fraction are multihomed.

Two era presets are provided.  ``era="1995"`` models the just-post-NSFNET
Internet of the D2/N2 datasets (fewer, smaller backbones; hotter public
exchange points; lower capacities).  ``era="1999"`` models the UW datasets'
Internet (more backbones, private peering, faster trunks).

All randomness flows through a single :class:`random.Random` seeded from
:attr:`TopologyConfig.seed`, so topologies are fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import runtime as obs

from repro.topology.asys import (
    ASLink,
    ASTier,
    AutonomousSystem,
    IGPStyle,
    Relationship,
)
from repro.topology.geography import (
    City,
    great_circle_km,
    north_american_cities,
    propagation_delay_ms,
    world_cities,
)
from repro.topology.links import BASELINE_UTILIZATION, DEFAULT_CAPACITY_MBPS, LinkKind
from repro.topology.network import Topology, TopologyError
from repro.topology.router import Host, RouterRole

if TYPE_CHECKING:
    from repro.topology.columnar import TopologyArrays


@dataclass(slots=True)
class TopologyConfig:
    """Parameters controlling topology generation.

    The defaults correspond to the 1999-era preset; use
    :meth:`for_era` to obtain a preset wholesale.
    """

    seed: int = 0
    era: str = "1999"
    n_tier1: int = 8
    n_transit: int = 26
    n_stub: int = 110
    #: Cities covered per tier-1 AS (min, max).
    tier1_cities: tuple[int, int] = (9, 14)
    #: Cities covered per transit AS (min, max).
    transit_cities: tuple[int, int] = (3, 6)
    #: Cities covered per stub AS (min, max).
    stub_cities: tuple[int, int] = (1, 2)
    #: Exchange cities per tier-1 peering (min, max).
    tier1_peering_points: tuple[int, int] = (2, 4)
    #: Probability that a stub is multihomed to a second provider.
    stub_multihome_prob: float = 0.3
    #: Probability that a transit AS peers with another same-region transit.
    transit_peering_prob: float = 0.45
    #: Probability that a stub buys transit directly from a tier-1.
    stub_direct_tier1_prob: float = 0.15
    #: Fraction of non-stub ASes using delay-derived IGP metrics.
    delay_metric_prob: float = 0.75
    #: Fraction of large ASes applying early-exit routing.
    early_exit_prob: float = 0.9
    #: Whether to restrict all ASes to North American cities.
    north_america_only: bool = False
    #: Global capacity multiplier (1995 era is slower).
    capacity_scale: float = 1.0
    #: Additive shift applied to exchange-link baseline utilization.
    exchange_heat: float = 0.0
    #: Override range for exchange-link baseline utilization.  None uses
    #: the LinkKind default.  The 1995 era sets a very wide range: public
    #: NAPs of that period varied from comfortable to collapsing.
    exchange_util_range: tuple[float, float] | None = None
    #: Per-link circuity noise (lo, hi): each physical link's propagation
    #: delay is scaled by a uniform draw from this range, modeling
    #: heterogeneous fiber routing (rail rights-of-way, indirect circuits).
    #: The spread is what creates propagation-level triangle violations.
    link_circuity_noise: tuple[float, float] = (1.0, 1.2)

    @classmethod
    def for_era(cls, era: str, seed: int = 0, **overrides: object) -> "TopologyConfig":
        """Build a preset config for ``era`` ("1995" or "1999").

        Extra keyword arguments override individual preset fields.

        Raises:
            ValueError: for an unknown era.
        """
        if era == "1999":
            cfg = cls(seed=seed, era=era)
        elif era == "1995":
            cfg = cls(
                seed=seed,
                era=era,
                n_tier1=4,
                n_transit=14,
                n_stub=72,
                tier1_cities=(7, 11),
                tier1_peering_points=(1, 2),
                stub_multihome_prob=0.35,
                transit_peering_prob=0.25,
                stub_direct_tier1_prob=0.1,
                delay_metric_prob=0.55,
                capacity_scale=0.7,
                exchange_heat=0.0,
                exchange_util_range=(0.22, 0.95),
                link_circuity_noise=(1.1, 2.3),
            )
        else:
            raise ValueError(f"unknown era {era!r}; expected '1995' or '1999'")
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise ValueError(f"unknown TopologyConfig field {key!r}")
            setattr(cfg, key, value)
        return cfg


@dataclass(slots=True)
class _GenState:
    """Mutable bookkeeping threaded through the generation phases."""

    rng: random.Random
    cfg: TopologyConfig
    topo: Topology
    next_asn: int = 1
    tier1_asns: list[int] = field(default_factory=list)
    transit_asns: list[int] = field(default_factory=list)
    stub_asns: list[int] = field(default_factory=list)
    # Memoized geometry, maintained incrementally so the interconnect
    # phases stay O(1) per lookup instead of rescanning city lists:
    # per-AS city-name sets (for common-city intersection) and per-
    # provider {home city name -> min POP distance km}.  Both are
    # invalidated/updated by _ensure_pop, the only place city lists
    # mutate after AS creation.
    city_name_sets: dict[int, set[str]] = field(default_factory=dict)
    provider_dist: dict[int, dict[str, tuple[City, float]]] = field(default_factory=dict)


def generate_topology(
    config: TopologyConfig | None = None,
    *,
    scale: str | None = None,
    seed: int | None = None,
) -> Topology | TopologyArrays:
    """Generate a complete topology from ``config`` (defaults to 1999 era).

    The returned topology has ASes, AS links, routers, and router-level
    links, and has passed :meth:`Topology.validate`.  Hosts are *not*
    placed; use :func:`place_hosts`.

    With ``scale=`` (a preset name from
    :data:`repro.topology.scale.SCALE_PRESETS`, e.g. ``"100k"``) the
    vectorized columnar fast path runs instead and the result is a
    :class:`~repro.topology.columnar.TopologyArrays` — call
    ``.to_topology()`` for the object form at small scales.  ``config``
    and ``scale`` are mutually exclusive.
    """
    if scale is not None:
        if config is not None:
            raise ValueError("pass either config or scale, not both")
        return generate_topology_at_scale(scale, seed=seed)
    cfg = config or TopologyConfig()
    with obs.span("topology.generate") as sp:
        sp.set("seed", cfg.seed)
        state = _GenState(rng=random.Random(cfg.seed), cfg=cfg, topo=Topology())
        _make_tier1s(state)
        _make_transits(state)
        _make_stubs(state)
        _build_intra_as(state)
        _connect_tier1_clique(state)
        _connect_transits(state)
        _connect_stubs(state)
        state.topo.validate()
        sp.set("ases", len(state.topo.ases))
        obs.count("topology.generated")
    return state.topo


def generate_topology_at_scale(scale: str, *, seed: int | None = None) -> TopologyArrays:
    """Generate a preset-named topology in columnar form.

    The ``paper-*`` presets run the object generator and convert; the
    numeric presets run the vectorized fast path directly.  Returns a
    :class:`~repro.topology.columnar.TopologyArrays`.
    """
    from repro.topology.columnar import from_topology
    from repro.topology.scale import generate_topology_arrays, resolve_preset

    preset = resolve_preset(scale, seed)
    if isinstance(preset, str):
        # Era preset: paper-scale, object generator is authoritative.
        cfg = TopologyConfig.for_era(preset, seed=seed if seed is not None else 1999)
        return from_topology(generate_topology(cfg))
    return generate_topology_arrays(preset)


def build_topology(scale: str, *, seed: int | None = None) -> tuple[Topology, float]:
    """Build an object :class:`~repro.topology.network.Topology` for a preset.

    The seam for object-world consumers (``repro serve``/``repro
    whatif``): paper presets build natively, numeric presets generate
    columnar and convert.  Returns ``(topology, capacity_scale)`` so
    callers can thread capacity into host placement.
    """
    from repro.topology.scale import generate_topology_arrays, resolve_preset

    preset = resolve_preset(scale, seed)
    if isinstance(preset, str):
        cfg = TopologyConfig.for_era(preset, seed=seed if seed is not None else 1999)
        return generate_topology(cfg), cfg.capacity_scale
    topo = generate_topology_arrays(preset).to_topology()
    topo.validate()
    return topo, preset.capacity_scale


# ---------------------------------------------------------------------------
# AS creation.
# ---------------------------------------------------------------------------

def _city_pool(cfg: TopologyConfig) -> list[City]:
    if cfg.north_america_only:
        return north_american_cities()
    return world_cities()


def _weighted_sample(rng: random.Random, cities: list[City], k: int) -> list[City]:
    """Sample ``k`` distinct cities weighted by population weight."""
    k = min(k, len(cities))
    chosen: list[City] = []
    pool = list(cities)
    weights = [c.population_weight for c in pool]
    for _ in range(k):
        total = sum(weights)
        r = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if acc >= r:
                chosen.append(pool.pop(i))
                weights.pop(i)
                break
    return chosen


def _new_as(
    state: _GenState,
    name: str,
    tier: ASTier,
    cities: list[City],
) -> AutonomousSystem:
    cfg = state.cfg
    rng = state.rng
    if tier is ASTier.STUB:
        igp = IGPStyle.HOP_COUNT
        early_exit = True
    elif tier is ASTier.TIER1:
        # Backbones set metrics manually "to avoid using links with
        # excessive propagation delay" (paper section 3).
        igp = IGPStyle.DELAY_METRIC
        early_exit = rng.random() < cfg.early_exit_prob
    else:
        igp = (
            IGPStyle.DELAY_METRIC
            if rng.random() < cfg.delay_metric_prob
            else IGPStyle.HOP_COUNT
        )
        early_exit = rng.random() < cfg.early_exit_prob
    asys = AutonomousSystem(
        asn=state.next_asn,
        name=name,
        tier=tier,
        cities=cities,
        igp_style=igp,
        early_exit=early_exit,
    )
    state.next_asn += 1
    state.topo.add_as(asys)
    return asys


def _make_tier1s(state: _GenState) -> None:
    cfg = state.cfg
    rng = state.rng
    na = north_american_cities()
    pool = _city_pool(cfg)
    for i in range(cfg.n_tier1):
        n_cities = rng.randint(*cfg.tier1_cities)
        # Tier-1s are NA-centric but the world-era ones also cover some
        # international cities.
        n_na = n_cities if cfg.north_america_only else max(2, int(n_cities * 0.75))
        cities = _weighted_sample(rng, na, n_na)
        if not cfg.north_america_only:
            intl = [c for c in pool if not c.is_north_america]
            cities += _weighted_sample(rng, intl, n_cities - len(cities))
        asys = _new_as(state, f"backbone-{i}", ASTier.TIER1, cities)
        state.tier1_asns.append(asys.asn)


def _make_transits(state: _GenState) -> None:
    """Regional transit providers.

    Regions are drawn weighted by how many catalog cities they contain,
    so tiny regions (one city) rarely anchor a transit AS; when a region
    is too small for the drawn POP count, the AS expands into the
    *nearest* outside cities rather than random ones — a transit provider
    is geographically coherent.
    """
    cfg = state.cfg
    rng = state.rng
    pool = _city_pool(cfg)
    regions = sorted({c.region for c in pool})
    region_sizes = {r: sum(1 for c in pool if c.region == r) for r in regions}
    for i in range(cfg.n_transit):
        # Weighted region choice.
        total = sum(region_sizes.values())
        pick = rng.random() * total
        acc = 0.0
        region = regions[-1]
        for r in regions:
            acc += region_sizes[r]
            if acc >= pick:
                region = r
                break
        regional = [c for c in pool if c.region == region]
        n_cities = rng.randint(*cfg.transit_cities)
        cities = _weighted_sample(rng, regional, min(n_cities, len(regional)))
        if len(cities) < max(2, n_cities):
            anchor = cities[0] if cities else rng.choice(regional)
            outside = sorted(
                (c for c in pool if c not in cities),
                key=lambda c: great_circle_km(anchor, c),
            )
            cities += outside[: max(2, n_cities) - len(cities)]
        # Hub-and-spoke fabric roots at the best-connected (heaviest) city.
        cities.sort(key=lambda c: -c.population_weight)
        asys = _new_as(state, f"transit-{i}-{region}", ASTier.TRANSIT, cities)
        state.transit_asns.append(asys.asn)


def _make_stubs(state: _GenState) -> None:
    cfg = state.cfg
    rng = state.rng
    pool = _city_pool(cfg)
    for i in range(cfg.n_stub):
        n_cities = rng.randint(*cfg.stub_cities)
        cities = _weighted_sample(rng, pool, n_cities)
        asys = _new_as(state, f"stub-{i}", ASTier.STUB, cities)
        state.stub_asns.append(asys.asn)


# ---------------------------------------------------------------------------
# Intra-AS router fabric.
# ---------------------------------------------------------------------------

def _noisy_prop_delay(state: _GenState, u: int, v: int) -> float:
    """City-to-city propagation delay with per-link circuity noise."""
    topo = state.topo
    base = propagation_delay_ms(topo.routers[u].city, topo.routers[v].city)
    lo, hi = state.cfg.link_circuity_noise
    return base * state.rng.uniform(lo, hi)


def _draw_utilization(state: _GenState, kind: LinkKind) -> float:
    lo, hi = BASELINE_UTILIZATION[kind]
    if kind is LinkKind.EXCHANGE:
        if state.cfg.exchange_util_range is not None:
            lo, hi = state.cfg.exchange_util_range
        return min(0.97, state.rng.uniform(lo, hi) + state.cfg.exchange_heat)
    return state.rng.uniform(lo, hi)


def _capacity(state: _GenState, kind: LinkKind) -> float:
    base = DEFAULT_CAPACITY_MBPS[kind] * state.cfg.capacity_scale
    # +/- 40% spread across individual links.
    return base * state.rng.uniform(0.6, 1.4)


def _build_intra_as(state: _GenState) -> None:
    """Create core routers per (AS, city) and the intra-AS trunk fabric.

    Tier-1s get a resilient fabric (ring plus nearest-neighbor chords);
    transit ASes get a hub-and-spoke star rooted at their first city, a
    structure that creates the real-world detours the paper attributes to
    provider backbones; stubs with two cities get a single trunk.
    """
    topo = state.topo
    for asys in topo.ases.values():
        core_ids = [
            topo.add_router(asys.asn, city, RouterRole.CORE).router_id
            for city in asys.cities
        ]
        if len(core_ids) == 1:
            continue
        kind = LinkKind.BACKBONE
        if asys.tier is ASTier.TIER1:
            _link_ring_with_chords(state, asys, core_ids)
        elif asys.tier is ASTier.TRANSIT:
            hub = core_ids[0]
            for rid in core_ids[1:]:
                topo.add_link(
                    hub,
                    rid,
                    kind,
                    capacity_mbps=_capacity(state, kind),
                    base_utilization=_draw_utilization(state, kind),
                    prop_delay_ms=_noisy_prop_delay(state, hub, rid),
                )
        else:
            topo.add_link(
                core_ids[0],
                core_ids[1],
                kind,
                capacity_mbps=_capacity(state, kind),
                base_utilization=_draw_utilization(state, kind),
                prop_delay_ms=_noisy_prop_delay(state, core_ids[0], core_ids[1]),
            )


def _link_ring_with_chords(
    state: _GenState, asys: AutonomousSystem, core_ids: list[int]
) -> None:
    """Tier-1 fabric: geographic ring plus a chord per non-adjacent near pair."""
    topo = state.topo
    kind = LinkKind.BACKBONE
    # Order cities west-to-east for a sane ring.
    order = sorted(range(len(core_ids)), key=lambda i: asys.cities[i].lon)
    ring = [core_ids[i] for i in order]
    seen: set[frozenset[int]] = set()

    def connect(a: int, b: int) -> None:
        key = frozenset((a, b))
        if key in seen or a == b:
            return
        seen.add(key)
        topo.add_link(
            a,
            b,
            kind,
            capacity_mbps=_capacity(state, kind),
            base_utilization=_draw_utilization(state, kind),
            prop_delay_ms=_noisy_prop_delay(state, a, b),
        )

    for i, rid in enumerate(ring):
        connect(rid, ring[(i + 1) % len(ring)])
    # Chords: each city to its geographically nearest non-ring-adjacent city.
    for i in order:
        city = asys.cities[i]
        best_j, best_km = None, float("inf")
        for j in order:
            if j == i:
                continue
            km = great_circle_km(city, asys.cities[j])
            if km < best_km:
                best_j, best_km = j, km
        if best_j is not None:
            connect(core_ids[i], core_ids[best_j])


# ---------------------------------------------------------------------------
# Inter-AS adjacencies.
# ---------------------------------------------------------------------------

def _city_name_set(state: _GenState, asn: int) -> set[str]:
    """The AS's POP city names, built once and updated by `_ensure_pop`."""
    names = state.city_name_sets.get(asn)
    if names is None:
        names = {c.name for c in state.topo.ases[asn].cities}
        state.city_name_sets[asn] = names
    return names


def _common_cities(state: _GenState, a: int, b: int) -> list[str]:
    names_a = _city_name_set(state, a)
    return [c.name for c in state.topo.ases[b].cities if c.name in names_a]


def _ensure_pop(state: _GenState, asn: int, city: City) -> None:
    """Extend ``asn`` into ``city`` (new core router + trunk to nearest POP)."""
    topo = state.topo
    asys = topo.ases[asn]
    if topo.has_core_router(asn, city.name):
        return
    # The AS's POP geometry is about to change: its memoized city-name
    # set gains a member and cached home->POP minima may shrink.  The
    # incremental min keeps every cached value bit-equal to a fresh scan
    # of the extended city list.
    state.city_name_sets.setdefault(asn, {c.name for c in asys.cities}).add(city.name)
    cached = state.provider_dist.get(asn)
    if cached is not None:
        for home_name, (home, d) in cached.items():
            cached[home_name] = (home, min(d, great_circle_km(home, city)))
    new_router = topo.add_router(asn, city, RouterRole.CORE)
    if asys.cities:
        nearest = min(asys.cities, key=lambda c: great_circle_km(c, city))
        kind = LinkKind.BACKBONE
        far = topo.core_router(asn, nearest.name)
        topo.add_link(
            new_router.router_id,
            far,
            kind,
            capacity_mbps=_capacity(state, kind),
            base_utilization=_draw_utilization(state, kind),
            prop_delay_ms=_noisy_prop_delay(state, new_router.router_id, far),
        )
    asys.cities.append(city)


def _interconnect(
    state: _GenState,
    a: int,
    b: int,
    rel_ab: Relationship,
    n_points: int,
) -> None:
    """Create an AS adjacency with ``n_points`` router-level exchange links.

    Exchange cities are drawn from the cities common to both ASes; if there
    are none, the lower-tier AS is extended into one of the other's cities
    (modeling a circuit bought to reach the provider's POP).
    """
    topo = state.topo
    rng = state.rng
    common = _common_cities(state, a, b)
    if not common:
        cities_b = topo.ases[b].cities
        target = rng.choice(cities_b)
        _ensure_pop(state, a, target)
        common = [target.name]
    rng.shuffle(common)
    chosen = common[: max(1, min(n_points, len(common)))]
    topo.add_as_link(ASLink(a=min(a, b), b=max(a, b),
                            rel_ab=rel_ab if a < b else rel_ab.inverse(),
                            exchange_cities=tuple(chosen)))
    for city_name in chosen:
        border_a = topo.add_router(a, _find_city(topo, a, city_name), RouterRole.BORDER)
        border_b = topo.add_router(b, _find_city(topo, b, city_name), RouterRole.BORDER)
        metro = LinkKind.METRO
        topo.add_link(
            border_a.router_id,
            topo.core_router(a, city_name),
            metro,
            capacity_mbps=_capacity(state, metro),
            base_utilization=_draw_utilization(state, metro),
        )
        topo.add_link(
            border_b.router_id,
            topo.core_router(b, city_name),
            metro,
            capacity_mbps=_capacity(state, metro),
            base_utilization=_draw_utilization(state, metro),
        )
        # Metro links are short; circuity noise is irrelevant at that scale.
        xkind = LinkKind.EXCHANGE
        xlink = topo.add_link(
            border_a.router_id,
            border_b.router_id,
            xkind,
            capacity_mbps=_capacity(state, xkind),
            base_utilization=_draw_utilization(state, xkind),
        )
        topo.add_exchange_link(xlink)


def _find_city(topo: Topology, asn: int, city_name: str) -> City:
    for city in topo.ases[asn].cities:
        if city.name == city_name:
            return city
    raise TopologyError(f"AS{asn} has no POP in {city_name}")


def _connect_tier1_clique(state: _GenState) -> None:
    cfg = state.cfg
    rng = state.rng
    for i, a in enumerate(state.tier1_asns):
        for b in state.tier1_asns[i + 1:]:
            n = rng.randint(*cfg.tier1_peering_points)
            _interconnect(state, a, b, Relationship.PEER, n)


def _connect_transits(state: _GenState) -> None:
    cfg = state.cfg
    rng = state.rng
    topo = state.topo
    for t in state.transit_asns:
        n_upstreams = 1 + (1 if rng.random() < 0.5 else 0)
        upstreams = rng.sample(state.tier1_asns, min(n_upstreams, len(state.tier1_asns)))
        for up in upstreams:
            # transit t is the customer of tier-1 `up`.
            _interconnect(state, up, t, Relationship.CUSTOMER, rng.randint(1, 2))
    # Regional peering between transits sharing a region.
    for i, t1 in enumerate(state.transit_asns):
        for t2 in state.transit_asns[i + 1:]:
            region1 = topo.ases[t1].name.rsplit("-", 1)[-1]
            region2 = topo.ases[t2].name.rsplit("-", 1)[-1]
            if region1 == region2 and rng.random() < cfg.transit_peering_prob:
                if _common_cities(state, t1, t2):
                    _interconnect(state, t1, t2, Relationship.PEER, 1)


def _connect_stubs(state: _GenState) -> None:
    cfg = state.cfg
    rng = state.rng
    topo = state.topo

    def nearest_providers(stub_asn: int, pool: list[int], k: int) -> list[int]:
        """Providers ranked by POP distance to the stub's home city."""
        home = topo.ases[stub_asn].cities[0]

        def dist(p: int) -> float:
            # Memoized per (provider, home city); when a provider gains
            # a POP, _ensure_pop folds the new city into every cached
            # minimum, so hits always equal a fresh scan.
            cache = state.provider_dist.setdefault(p, {})
            entry = cache.get(home.name)
            if entry is None:
                d = min(great_circle_km(home, c) for c in topo.ases[p].cities)
                cache[home.name] = (home, d)
                return d
            return entry[1]

        ranked = sorted(pool, key=dist)
        # Randomize lightly among the closest few so stubs in one city do
        # not all pick the identical provider.
        front = ranked[: max(k * 3, 4)]
        rng.shuffle(front)
        return front[:k]

    for s in state.stub_asns:
        if rng.random() < cfg.stub_direct_tier1_prob:
            primary_pool = state.tier1_asns
        else:
            primary_pool = state.transit_asns or state.tier1_asns
        n_providers = 1 + (1 if rng.random() < cfg.stub_multihome_prob else 0)
        providers = nearest_providers(s, primary_pool, n_providers)
        if len(providers) < n_providers:
            extra = [p for p in state.tier1_asns if p not in providers]
            providers += extra[: n_providers - len(providers)]
        for p in providers:
            # stub s is the customer of provider p.
            _interconnect(state, p, s, Relationship.CUSTOMER, 1)


# ---------------------------------------------------------------------------
# Host placement.
# ---------------------------------------------------------------------------

def place_hosts(
    topo: Topology,
    n_hosts: int,
    *,
    seed: int = 0,
    north_america_only: bool = False,
    rate_limit_fraction: float = 0.15,
    name_prefix: str = "host",
    capacity_scale: float = 1.0,
) -> list[Host]:
    """Attach ``n_hosts`` measurement hosts to distinct stub ASes.

    Each host gets an access router in one of its stub AS's cities, joined
    to the local core router by a metro link, plus an access link.  A
    ``rate_limit_fraction`` of hosts are made ICMP rate limiters, which the
    measurement layer must detect and filter (paper §4.2).

    Returns the newly created hosts.

    Raises:
        TopologyError: if there are not enough eligible stub ASes.
    """
    with obs.span("topology.place_hosts") as sp:
        sp.set("hosts", n_hosts)
        sp.set("seed", seed)
        return _place_hosts(
            topo,
            n_hosts,
            seed=seed,
            north_america_only=north_america_only,
            rate_limit_fraction=rate_limit_fraction,
            name_prefix=name_prefix,
            capacity_scale=capacity_scale,
        )


def _place_hosts(
    topo: Topology,
    n_hosts: int,
    *,
    seed: int,
    north_america_only: bool,
    rate_limit_fraction: float,
    name_prefix: str,
    capacity_scale: float,
) -> list[Host]:
    rng = random.Random(seed ^ 0x5EED)
    stubs = [
        a for a in topo.ases.values()
        if a.tier is ASTier.STUB
        and (not north_america_only or all(c.is_north_america for c in a.cities))
    ]
    used_asns = {h.asn for h in topo.hosts}
    eligible = [a for a in stubs if a.asn not in used_asns]
    if len(eligible) < n_hosts:
        raise TopologyError(
            f"need {n_hosts} unused stub ASes, only {len(eligible)} available"
        )
    chosen = rng.sample(eligible, n_hosts)
    created: list[Host] = []
    for i, asys in enumerate(chosen):
        city = rng.choice(asys.cities)
        access = topo.add_router(asys.asn, city, RouterRole.ACCESS)
        core = topo.core_router(asys.asn, city.name)
        metro = LinkKind.METRO
        lo, hi = BASELINE_UTILIZATION[metro]
        topo.add_link(
            access.router_id,
            core,
            metro,
            capacity_mbps=DEFAULT_CAPACITY_MBPS[metro] * capacity_scale,
            base_utilization=rng.uniform(lo, hi),
        )
        # The host is not itself a router; to keep link endpoints as
        # routers, model the host NIC as a dedicated stub router hanging
        # off the access router.
        akind = LinkKind.ACCESS
        lo, hi = BASELINE_UTILIZATION[akind]
        nic = topo.add_router(asys.asn, city, RouterRole.ACCESS)
        access_link = topo.add_link(
            nic.router_id,
            access.router_id,
            akind,
            capacity_mbps=DEFAULT_CAPACITY_MBPS[akind] * capacity_scale,
            base_utilization=rng.uniform(lo, hi),
        )
        rate_limit = 0.0
        if rng.random() < rate_limit_fraction:
            rate_limit = rng.choice([6.0, 12.0, 30.0])
        host = Host(
            host_id=len(topo.hosts),
            name=f"{name_prefix}-{city.name}-{i}",
            city=city,
            asn=asys.asn,
            access_router=nic.router_id,
            access_link=access_link.link_id,
            icmp_rate_limit_per_min=rate_limit,
        )
        topo.add_host(host)
        created.append(host)
    return created

"""Geographic embedding for the simulated Internet.

The paper's datasets span hosts in North America (D2-NA, N2-NA, UW1, UW3,
UW4) and worldwide (D2, N2).  Propagation delay along a physical link is
dominated by the speed of light in fiber, so the simulator embeds every
point of presence in a real city and derives per-link propagation delays
from great-circle distances.

The catalog below lists the metropolitan areas where 1990s backbones had
major POPs and where public traceroute servers were commonly hosted
(universities, NAPs, large providers).  It intentionally over-represents
North America, matching the paper's host populations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM = 6371.0

#: Propagation speed of light in optical fiber, km per millisecond.
#: Roughly 2/3 of c in vacuum.
FIBER_KM_PER_MS = 200.0

#: Physical fiber rarely follows the geodesic; long-haul routes detour along
#: rights-of-way (railroads, highways, undersea-cable landing points).  The
#: multiplier converts great-circle distance into an effective fiber length.
FIBER_CIRCUITY = 1.35


@dataclass(frozen=True, slots=True)
class City:
    """A metropolitan area that can host POPs, exchange points, and hosts.

    Attributes:
        name: Unique short name (used as an identifier throughout).
        lat: Latitude in decimal degrees (north positive).
        lon: Longitude in decimal degrees (east positive).
        region: Coarse geographic region, e.g. ``"na-west"`` or ``"europe"``.
        population_weight: Relative likelihood of host/POP placement.
    """

    name: str
    lat: float
    lon: float
    region: str
    population_weight: float = 1.0

    @property
    def is_north_america(self) -> bool:
        """Whether the city lies in North America (paper's *-NA host pools)."""
        return self.region.startswith("na-")


# ---------------------------------------------------------------------------
# City catalog.
# ---------------------------------------------------------------------------

_NORTH_AMERICA: tuple[City, ...] = (
    City("seattle", 47.61, -122.33, "na-west", 2.2),
    City("portland", 45.52, -122.68, "na-west", 1.0),
    City("san-francisco", 37.77, -122.42, "na-west", 2.8),
    City("palo-alto", 37.44, -122.14, "na-west", 1.6),
    City("san-jose", 37.34, -121.89, "na-west", 1.8),
    City("los-angeles", 34.05, -118.24, "na-west", 2.6),
    City("san-diego", 32.72, -117.16, "na-west", 1.3),
    City("salt-lake-city", 40.76, -111.89, "na-west", 0.8),
    City("denver", 39.74, -104.99, "na-central", 1.3),
    City("phoenix", 33.45, -112.07, "na-west", 0.9),
    City("albuquerque", 35.08, -106.65, "na-central", 0.5),
    City("dallas", 32.78, -96.80, "na-central", 1.8),
    City("houston", 29.76, -95.37, "na-central", 1.4),
    City("austin", 30.27, -97.74, "na-central", 1.0),
    City("kansas-city", 39.10, -94.58, "na-central", 0.7),
    City("st-louis", 38.63, -90.20, "na-central", 0.8),
    City("minneapolis", 44.98, -93.27, "na-central", 1.0),
    City("chicago", 41.88, -87.63, "na-central", 2.6),
    City("urbana", 40.11, -88.21, "na-central", 0.6),
    City("ann-arbor", 42.28, -83.74, "na-east", 0.9),
    City("cleveland", 41.50, -81.69, "na-east", 0.7),
    City("pittsburgh", 40.44, -79.99, "na-east", 1.1),
    City("toronto", 43.65, -79.38, "na-east", 1.5),
    City("montreal", 45.50, -73.57, "na-east", 1.0),
    City("ithaca", 42.44, -76.50, "na-east", 0.6),
    City("boston", 42.36, -71.06, "na-east", 2.0),
    City("new-york", 40.71, -74.01, "na-east", 3.0),
    City("princeton", 40.35, -74.66, "na-east", 0.8),
    City("philadelphia", 39.95, -75.17, "na-east", 1.2),
    City("baltimore", 39.29, -76.61, "na-east", 0.8),
    City("washington-dc", 38.91, -77.04, "na-east", 2.4),
    City("vienna-va", 38.90, -77.26, "na-east", 1.2),
    City("raleigh", 35.78, -78.64, "na-east", 0.8),
    City("atlanta", 33.75, -84.39, "na-east", 1.6),
    City("gainesville", 29.65, -82.32, "na-east", 0.5),
    City("miami", 25.76, -80.19, "na-east", 1.0),
    City("boulder", 40.01, -105.27, "na-central", 0.7),
    City("tucson", 32.22, -110.97, "na-west", 0.5),
    City("vancouver", 49.28, -123.12, "na-west", 1.0),
    City("madison", 43.07, -89.40, "na-central", 0.6),
)

_WORLD: tuple[City, ...] = (
    City("london", 51.51, -0.13, "europe", 2.6),
    City("cambridge-uk", 52.21, 0.12, "europe", 0.8),
    City("amsterdam", 52.37, 4.90, "europe", 1.8),
    City("paris", 48.86, 2.35, "europe", 1.8),
    City("geneva", 46.20, 6.14, "europe", 1.0),
    City("frankfurt", 50.11, 8.68, "europe", 1.6),
    City("munich", 48.14, 11.58, "europe", 0.9),
    City("stockholm", 59.33, 18.07, "europe", 0.9),
    City("oslo", 59.91, 10.75, "europe", 0.6),
    City("helsinki", 60.17, 24.94, "europe", 0.7),
    City("vienna", 48.21, 16.37, "europe", 0.7),
    City("bologna", 44.49, 11.34, "europe", 0.5),
    City("trondheim", 63.43, 10.40, "europe", 0.4),
    City("canberra", -35.28, 149.13, "oceania", 0.6),
    City("melbourne", -37.81, 144.96, "oceania", 0.9),
    City("sydney", -33.87, 151.21, "oceania", 1.1),
    City("tokyo", 35.68, 139.69, "asia", 1.8),
    City("seoul", 37.57, 126.98, "asia", 1.0),
    City("daejeon", 36.35, 127.38, "asia", 0.4),
    City("singapore", 1.35, 103.82, "asia", 0.8),
    City("haifa", 32.79, 34.99, "middle-east", 0.5),
    City("johannesburg", -26.20, 28.05, "africa", 0.4),
    City("sao-paulo", -23.55, -46.63, "south-america", 0.6),
)

#: All cities known to the simulator, keyed by name.
CITIES: dict[str, City] = {c.name: c for c in (*_NORTH_AMERICA, *_WORLD)}


class UnknownCityError(KeyError):
    """Raised when a city name is not in the catalog."""


def get_city(name: str) -> City:
    """Look up a city by name.

    Raises:
        UnknownCityError: if ``name`` is not in :data:`CITIES`.
    """
    try:
        return CITIES[name]
    except KeyError:
        raise UnknownCityError(name) from None


def north_american_cities() -> list[City]:
    """Cities in North America, in catalog order."""
    return [c for c in CITIES.values() if c.is_north_america]


def world_cities() -> list[City]:
    """All cities, in catalog order."""
    return list(CITIES.values())


def cities_in_region(region: str) -> list[City]:
    """Cities whose region matches ``region`` exactly."""
    return [c for c in CITIES.values() if c.region == region]


def great_circle_km(a: City, b: City) -> float:
    """Great-circle distance between two cities in kilometres.

    Uses the haversine formula, which is numerically stable for the
    city-to-city distances that occur here.
    """
    if a.name == b.name:
        return 0.0
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_delay_ms(a: City, b: City, *, circuity: float = FIBER_CIRCUITY) -> float:
    """One-way propagation delay between two cities, in milliseconds.

    Derived from the great-circle distance, inflated by ``circuity`` to
    account for physical fiber routing, divided by the speed of light in
    fiber.  Intra-city links get a small positive floor (metro fiber plus
    equipment latency) rather than zero.

    Args:
        a: Source city.
        b: Destination city.
        circuity: Fiber-length multiplier over the geodesic (>= 1).

    Raises:
        ValueError: if ``circuity`` is below 1.
    """
    if circuity < 1.0:
        raise ValueError(f"circuity must be >= 1, got {circuity}")
    km = great_circle_km(a, b) * circuity
    delay = km / FIBER_KM_PER_MS
    return max(delay, 0.05)


def mean_pairwise_distance_km(cities: Iterable[City]) -> float:
    """Mean great-circle distance over all unordered pairs of ``cities``.

    Useful for sanity-checking host pools: the paper's world datasets see
    systematically longer latencies than the North-America-only ones.

    Raises:
        ValueError: if fewer than two cities are supplied.
    """
    pool = list(cities)
    if len(pool) < 2:
        raise ValueError("need at least two cities")
    total = 0.0
    count = 0
    for i, a in enumerate(pool):
        for b in pool[i + 1:]:
            total += great_circle_km(a, b)
            count += 1
    return total / count

"""Vectorized tiered generator: Internet-scale topologies in seconds.

The object generator in :mod:`repro.topology.generator` builds one
Python object per AS/router/link and spends its time in per-stub
nearest-provider scans; it reproduces the paper's eras (a few hundred
ASes) comfortably but cannot reach ROADMAP item 2's "2-3 orders of
magnitude larger".  This module is the batched fast path: all sampling
is drawn in fixed-size numpy batches, provider assignment is a cKDTree
nearest-neighbor query over unit-sphere coordinates, transit peering is
a vectorized Waxman acceptance over KD-tree candidate pairs, and the
result is emitted directly as :class:`~repro.topology.columnar.
TopologyArrays` — no per-entity objects are ever created.

The generated internetwork keeps the same structural vocabulary as the
paper-era generator (tier-1 clique-ish core, regional transits, stub
edge; one core router per POP city, intra-AS backbone trunks, border
router pairs + an exchange link per peering city), so every downstream
consumer — the columnar solvers, ``to_topology()``, ``validate()``,
``place_hosts`` — works unchanged.  The hierarchy is sibling-free and
acyclic by construction (providers always come from a strictly higher
tier), so the staged/columnar BGP solvers always apply.

Named presets (``SCALE_PRESETS``) are the public surface: ``repro
serve --scale 1k``, ``generate_topology(scale="100k")``, bench and CI
smoke steps all speak preset names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.obs import runtime as obs

from repro.topology.columnar import (
    IGP_CODES,
    KIND_CODES,
    REL_CODES,
    ROLE_CODES,
    TIER_CODES,
    TopologyArrays,
    _csr_from_lists,
)
from repro.topology.asys import ASTier, IGPStyle, Relationship
from repro.topology.geography import (
    EARTH_RADIUS_KM,
    FIBER_CIRCUITY,
    FIBER_KM_PER_MS,
    world_cities,
)
from repro.topology.links import BASELINE_UTILIZATION, DEFAULT_CAPACITY_MBPS, LinkKind
from repro.topology.router import RouterRole


class ScaleError(ValueError):
    """Raised for unknown presets or invalid scale configurations."""


@dataclass(frozen=True, slots=True)
class ScaleConfig:
    """Tier/radius parameterization of the vectorized generator.

    Attributes:
        seed: RNG seed; every draw derives from it in a fixed order.
        n_tier1 / n_transit / n_stub: AS counts per tier.
        cities_per_as: Synthetic metro count as a fraction of the AS
            count (floored at 64 cities).
        tier1_cities: Min/max POP cities per tier-1 AS.
        transit_cities: Min/max POP cities per transit AS.
        transit_multihome_prob: Probability a transit buys from a second
            tier-1 provider.
        transit_peer_radius_km: KD-tree candidate radius for
            transit-transit peering.
        waxman_alpha / waxman_beta: Waxman shape ``alpha * exp(-d /
            (beta * L))`` over candidate pairs, with ``L`` the candidate
            radius; acceptance is normalized so the realized mean peer
            degree tracks ``transit_peer_degree`` regardless of how many
            candidates the radius admits.
        transit_peer_degree: Target mean transit-transit peer degree.
        stub_provider_pool: A stub picks its provider uniformly among
            this many nearest transits (diversity without losing
            locality).
        stub_multihome_prob: Probability a stub buys from a second
            transit.
        stub_direct_tier1_prob: Probability a stub also buys directly
            from its nearest tier-1.
        delay_metric_prob / early_exit_prob: Per-AS IGP style and
            early-exit draws (same meaning as the object generator).
        capacity_scale: Uniform capacity multiplier (propagated to
            hosts placed on the converted object topology).
        link_circuity_noise: Uniform multiplier range on link
            propagation delay.
    """

    seed: int = 1999
    n_tier1: int = 8
    n_transit: int = 80
    n_stub: int = 912
    cities_per_as: float = 1 / 40
    tier1_cities: tuple[int, int] = (6, 10)
    transit_cities: tuple[int, int] = (2, 4)
    transit_multihome_prob: float = 0.5
    transit_peer_radius_km: float = 2500.0
    waxman_alpha: float = 0.9
    waxman_beta: float = 0.3
    transit_peer_degree: float = 2.0
    stub_provider_pool: int = 3
    stub_multihome_prob: float = 0.3
    stub_direct_tier1_prob: float = 0.1
    delay_metric_prob: float = 0.75
    early_exit_prob: float = 0.9
    capacity_scale: float = 1.0
    link_circuity_noise: tuple[float, float] = (1.0, 1.2)

    @property
    def n_as(self) -> int:
        """Total AS count across all three tiers."""
        return self.n_tier1 + self.n_transit + self.n_stub

    def __post_init__(self) -> None:
        if self.n_tier1 < 3:
            raise ScaleError("need at least 3 tier-1 ASes for the core ring")
        if self.n_transit < self.stub_provider_pool:
            raise ScaleError("need at least stub_provider_pool transit ASes")
        if self.n_stub < 1:
            raise ScaleError("need at least one stub AS")


#: Named presets reachable from every CLI surface (``--scale``).  The
#: ``paper-*`` entries delegate to the object generator's era presets;
#: the numeric entries run the vectorized fast path at that AS count.
SCALE_PRESETS: dict[str, ScaleConfig | str] = {
    "paper-1995": "1995",
    "paper-1999": "1999",
    "1k": ScaleConfig(n_tier1=8, n_transit=80, n_stub=912),
    "10k": ScaleConfig(n_tier1=12, n_transit=400, n_stub=9_588),
    "100k": ScaleConfig(n_tier1=20, n_transit=2_000, n_stub=97_980),
}


def resolve_preset(scale: str, seed: int | None = None) -> ScaleConfig | str:
    """Look up a preset by name, rebinding its seed when given.

    Returns either a :class:`ScaleConfig` (vectorized path) or an era
    string (object-generator path).  Raises :class:`ScaleError` for
    unknown names, listing the valid ones.
    """
    try:
        preset = SCALE_PRESETS[scale]
    except KeyError:
        names = ", ".join(sorted(SCALE_PRESETS))
        raise ScaleError(f"unknown scale preset {scale!r} (expected one of: {names})") from None
    if isinstance(preset, ScaleConfig) and seed is not None:
        preset = ScaleConfig(
            **{
                f: getattr(preset, f)
                for f in preset.__dataclass_fields__
                if f != "seed"
            },
            seed=seed,
        )
    return preset


def _latlon_to_xyz(lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
    # hotpath
    """Unit-sphere cartesian coordinates for KD-tree queries.

    Chord distance is monotonic in great-circle distance, so nearest-
    neighbor and radius queries on xyz are exact for geographic
    nearest/within-radius semantics.
    """
    lat_r = np.radians(lat)
    lon_r = np.radians(lon)
    cos_lat = np.cos(lat_r)
    return np.column_stack((cos_lat * np.cos(lon_r), cos_lat * np.sin(lon_r), np.sin(lat_r)))


def _chord_for_km(km: float) -> float:
    """Unit-sphere chord length subtending a great-circle distance."""
    return 2.0 * math.sin(min(km / EARTH_RADIUS_KM, math.pi) / 2.0)


def _haversine_km(lat1, lon1, lat2, lon2) -> np.ndarray:
    # hotpath
    """Vectorized great-circle distance (same formula as geography)."""
    p1, p2 = np.radians(lat1), np.radians(lat2)
    dp = p2 - p1
    dl = np.radians(lon2) - np.radians(lon1)
    a = np.sin(dp / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dl / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def generate_topology_arrays(config: ScaleConfig) -> TopologyArrays:
    """Generate a tiered internetwork directly into columnar form.

    This is the vectorized fast path: a 100k-AS topology generates in
    seconds.  All randomness comes from ``default_rng(config.seed)`` in
    a fixed draw order, so output is a pure function of the config.
    """
    with obs.span("topology.scale.generate") as sp:
        sp.set("ases", config.n_as)
        rng = np.random.default_rng((config.seed, 0x5CA1E))
        arrays = _generate(rng, config)
        sp.set("routers", arrays.n_routers)
    obs.count("topology.scale.generated")
    return arrays


def _sample_cities(rng: np.random.Generator, n_cities: int):
    """Batched synthetic metro sampling around weighted catalog anchors.

    Regions are inherited from the anchor so region-scoped consumers
    (``north_america_only`` host placement, region-outage scenarios)
    work on synthetic cities unchanged.
    """
    catalog = world_cities()
    weights = np.array([c.population_weight for c in catalog])
    weights = weights / weights.sum()
    anchors = rng.choice(len(catalog), size=n_cities, p=weights)
    lat = np.array([catalog[i].lat for i in anchors]) + rng.normal(0.0, 2.5, n_cities)
    lon = np.array([catalog[i].lon for i in anchors]) + rng.normal(0.0, 2.5, n_cities)
    lat = np.clip(lat, -85.0, 85.0)
    lon = (lon + 180.0) % 360.0 - 180.0
    weight = np.array([catalog[i].population_weight for i in anchors]) * rng.uniform(
        0.25, 1.0, n_cities
    )
    names = [f"m{i:05d}-{catalog[a].name}" for i, a in enumerate(anchors)]
    regions = [catalog[a].region for a in anchors]
    return names, lat, lon, regions, weight


def _nearest_city_of(
    home_xyz: np.ndarray, owner_rows: np.ndarray, city_lists: list[list[int]],
    city_xyz: np.ndarray,
) -> np.ndarray:
    """For each row, the owner-AS city nearest the row's home point.

    Grouped by owner so each group is a single dense dot-product argmax
    (maximum cosine similarity == minimum great-circle distance on the
    unit sphere).
    """
    out = np.empty(len(owner_rows), dtype=np.int64)
    for owner in np.unique(owner_rows):
        rows = np.nonzero(owner_rows == owner)[0]
        cities = np.asarray(city_lists[owner], dtype=np.int64)
        sims = home_xyz[rows] @ city_xyz[cities].T
        out[rows] = cities[np.argmax(sims, axis=1)]
    return out


def _generate(rng: np.random.Generator, cfg: ScaleConfig) -> TopologyArrays:
    n_cities = max(64, int(cfg.n_as * cfg.cities_per_as))
    city_names, city_lat, city_lon, city_regions, city_weight = _sample_cities(rng, n_cities)
    city_xyz = _latlon_to_xyz(city_lat, city_lon)
    city_tree = cKDTree(city_xyz)
    city_p = city_weight / city_weight.sum()

    n_t1, n_tr, n_st = cfg.n_tier1, cfg.n_transit, cfg.n_stub
    t1_lo = 0
    tr_lo = n_t1
    st_lo = n_t1 + n_tr

    # Base POP city lists per AS (extras from ensure-pop appended later).
    base: list[list[int]] = []
    in_base: list[set[int]] = []
    extras: list[list[int]] = []

    def register(cities: list[int]) -> None:
        base.append(cities)
        in_base.append(set(cities))
        extras.append([])

    def ensure_pop(as_idx: int, city: int) -> None:
        if city not in in_base[as_idx]:
            in_base[as_idx].add(city)
            extras[as_idx].append(city)

    # --- tier-1 core: POPs drawn from the heaviest metros -----------------
    major = np.argsort(city_weight)[::-1][: max(16, n_cities // 3)]
    major_p = city_weight[major] / city_weight[major].sum()
    t1_counts = rng.integers(cfg.tier1_cities[0], cfg.tier1_cities[1] + 1, size=n_t1)
    for i in range(n_t1):
        k = min(int(t1_counts[i]), len(major))
        register(list(rng.choice(major, size=k, replace=False, p=major_p)))

    # --- transits: home metro + nearest neighbors -------------------------
    tr_counts = rng.integers(cfg.transit_cities[0], cfg.transit_cities[1] + 1, size=n_tr)
    tr_home = rng.choice(n_cities, size=n_tr, p=city_p)
    max_k = min(int(tr_counts.max()), n_cities)
    _, tr_nearest = city_tree.query(city_xyz[tr_home], k=max_k)
    tr_nearest = np.atleast_2d(tr_nearest)
    for i in range(n_tr):
        register([int(c) for c in tr_nearest[i, : tr_counts[i]]])

    # --- stubs: batched home-city sampling --------------------------------
    st_home = rng.choice(n_cities, size=n_st, p=city_p)
    for i in range(n_st):
        register([int(st_home[i])])

    # --- AS-link edges ----------------------------------------------------
    edge_a: list[int] = []
    edge_b: list[int] = []
    edge_rel: list[int] = []
    edge_cities: list[list[int]] = []

    def add_edge(a: int, b: int, rel_ab: Relationship, cities: list[int]) -> None:
        for c in cities:
            ensure_pop(a, c)
            ensure_pop(b, c)
        edge_a.append(a)
        edge_b.append(b)
        edge_rel.append(REL_CODES[rel_ab])
        edge_cities.append(cities)

    # Tier-1 core: full peering clique.  Valley-free export never
    # re-exports peer routes to peers, so anything sparser than a clique
    # (ring + chords, say) leaves customer cones more than one peer hop
    # apart mutually unreachable — cliqueness is what makes the default
    # Gao-Rexford reachability argument go through.
    t1_pairs = [(a, b) for a in range(n_t1) for b in range(a + 1, n_t1)]
    for a, b in t1_pairs:
        common = [c for c in base[a] if c in in_base[b]]
        if common:
            picks = rng.choice(len(common), size=min(2, len(common)), replace=False)
            cities = [common[int(i)] for i in picks]
        else:
            cities = [base[b][int(rng.integers(0, len(base[b])))]]
        add_edge(a, b, Relationship.PEER, cities)

    # Transit -> tier-1 providers: nearest tier-1 POP, optional second
    # provider from a different tier-1.
    t1_pop_owner = np.repeat(np.arange(n_t1), [len(base[i]) for i in range(n_t1)])
    t1_pop_city = np.concatenate([np.asarray(base[i]) for i in range(n_t1)])
    t1_tree = cKDTree(city_xyz[t1_pop_city])
    k_pop = min(8, len(t1_pop_city))
    _, tr_cand = t1_tree.query(city_xyz[tr_home], k=k_pop)
    tr_cand = np.atleast_2d(tr_cand)
    tr_second = rng.random(n_tr) < cfg.transit_multihome_prob
    for i in range(n_tr):
        owners = t1_pop_owner[tr_cand[i]]
        first = int(owners[0])
        add_edge(first, tr_lo + i, Relationship.CUSTOMER, [int(t1_pop_city[tr_cand[i, 0]])])
        if tr_second[i]:
            others = np.nonzero(owners != first)[0]
            if len(others):
                j = int(others[0])
                add_edge(
                    int(owners[j]),
                    tr_lo + i,
                    Relationship.CUSTOMER,
                    [int(t1_pop_city[tr_cand[i, j]])],
                )

    # Transit <-> transit Waxman peering over KD-tree candidates.
    tr_tree = cKDTree(city_xyz[tr_home])
    cand = tr_tree.query_pairs(_chord_for_km(cfg.transit_peer_radius_km), output_type="ndarray")
    if len(cand):
        order = np.lexsort((cand[:, 1], cand[:, 0]))
        cand = cand[order]
        d_km = _haversine_km(
            city_lat[tr_home[cand[:, 0]]],
            city_lon[tr_home[cand[:, 0]]],
            city_lat[tr_home[cand[:, 1]]],
            city_lon[tr_home[cand[:, 1]]],
        )
        shape = np.exp(-d_km / (cfg.waxman_beta * cfg.transit_peer_radius_km))
        target_edges = n_tr * cfg.transit_peer_degree / 2.0
        prob = np.minimum(cfg.waxman_alpha, shape * (target_edges / shape.sum()))
        accept = rng.random(len(cand)) < prob
        for i, j in cand[accept]:
            a, b = tr_lo + int(i), tr_lo + int(j)
            common = [c for c in base[a] if c in in_base[b]]
            city = common[0] if common else base[b][0]
            add_edge(a, b, Relationship.PEER, [city])

    # Stubs: nearest-provider assignment via the transit KD-tree, with a
    # small randomized pool for provider diversity.  All draws batched.
    pool = min(cfg.stub_provider_pool, n_tr)
    _, st_cand = tr_tree.query(city_xyz[st_home], k=pool)
    st_cand = np.atleast_2d(st_cand)
    primary_pick = rng.integers(0, pool, size=n_st)
    multi = rng.random(n_st) < cfg.stub_multihome_prob
    second_off = rng.integers(1, max(pool, 2), size=n_st)
    direct_t1 = rng.random(n_st) < cfg.stub_direct_tier1_prob
    primary = st_cand[np.arange(n_st), primary_pick]
    secondary = st_cand[np.arange(n_st), (primary_pick + second_off) % pool]
    multi &= secondary != primary
    _, st_t1_pop = t1_tree.query(city_xyz[st_home], k=1)
    st_xyz = city_xyz[st_home]

    # Exchange city per customer edge: the provider POP nearest the
    # stub's home metro (grouped per provider, one dense argmax each).
    prim_city = _nearest_city_of(st_xyz, primary, base[tr_lo: tr_lo + n_tr], city_xyz)
    sec_rows = np.nonzero(multi)[0]
    sec_city = _nearest_city_of(
        st_xyz[sec_rows], secondary[sec_rows], base[tr_lo: tr_lo + n_tr], city_xyz
    )
    for i in range(n_st):
        add_edge(tr_lo + int(primary[i]), st_lo + i, Relationship.CUSTOMER, [int(prim_city[i])])
    for row, i in enumerate(sec_rows):
        add_edge(
            tr_lo + int(secondary[i]), st_lo + int(i), Relationship.CUSTOMER,
            [int(sec_city[row])],
        )
    t1_rows = np.nonzero(direct_t1)[0]
    for i in t1_rows:
        pop = int(st_t1_pop[i]) if np.ndim(st_t1_pop) else int(st_t1_pop)
        add_edge(
            int(t1_pop_owner[pop]), st_lo + int(i), Relationship.CUSTOMER,
            [int(t1_pop_city[pop])],
        )

    # --- per-AS attribute draws ------------------------------------------
    n_as = cfg.n_as
    igp_delay = rng.random(n_as) < cfg.delay_metric_prob
    early_exit = rng.random(n_as) < cfg.early_exit_prob

    return _assemble(rng, cfg, city_names, city_lat, city_lon, city_regions,
                     city_weight, base, extras, igp_delay, early_exit,
                     edge_a, edge_b, edge_rel, edge_cities)


def _assemble(rng, cfg, city_names, city_lat, city_lon, city_regions, city_weight,
              base, extras, igp_delay, early_exit,
              edge_a, edge_b, edge_rel, edge_cities) -> TopologyArrays:
    """Flatten the generation state into a :class:`TopologyArrays`."""
    n_as = cfg.n_as
    n_t1, n_tr = cfg.n_tier1, cfg.n_transit
    arrays = TopologyArrays()
    arrays.city_names = city_names
    arrays.city_lat = city_lat
    arrays.city_lon = city_lon
    arrays.city_regions = city_regions
    arrays.city_weight = city_weight

    arrays.as_asn = np.arange(1, n_as + 1, dtype=np.int64)
    tiers = np.full(n_as, TIER_CODES[ASTier.STUB], dtype=np.int8)
    tiers[:n_t1] = TIER_CODES[ASTier.TIER1]
    tiers[n_t1: n_t1 + n_tr] = TIER_CODES[ASTier.TRANSIT]
    arrays.as_tier = tiers
    prefix = {
        TIER_CODES[ASTier.TIER1]: "Core",
        TIER_CODES[ASTier.TRANSIT]: "Transit",
        TIER_CODES[ASTier.STUB]: "Stub",
    }
    arrays.as_names = [f"{prefix[int(tiers[i])]}-{i + 1}" for i in range(n_as)]
    arrays.as_igp = np.where(
        igp_delay, IGP_CODES[IGPStyle.DELAY_METRIC], IGP_CODES[IGPStyle.HOP_COUNT]
    ).astype(np.int8)
    arrays.as_early_exit = np.asarray(early_exit, dtype=np.bool_)

    final_cities = [base[i] + extras[i] for i in range(n_as)]
    arrays.as_city_indptr, arrays.as_city_idx = _csr_from_lists(final_cities)

    # Core routers: exactly the flattened AS-city table, so the core
    # router of (AS i, j-th city) has router id as_city_indptr[i] + j.
    indptr = arrays.as_city_indptr
    n_core = int(indptr[-1])
    core_owner = np.repeat(np.arange(n_as), np.diff(indptr))
    core_city = arrays.as_city_idx.astype(np.int64)
    n_cities = len(city_names)
    core_key = core_owner * n_cities + core_city
    key_order = np.argsort(core_key)
    sorted_keys = core_key[key_order]

    def core_rid(as_idx: np.ndarray, city_idx: np.ndarray) -> np.ndarray:
        # hotpath
        pos = np.searchsorted(sorted_keys, as_idx * n_cities + city_idx)
        return key_order[pos]

    # Border routers: two per (AS link, exchange city), lower-AS side
    # first — ids follow the core block.
    ec_indptr, ec_flat = _csr_from_lists(edge_cities, dtype=np.int64)
    n_ec = int(ec_indptr[-1])
    ec_edge = np.repeat(np.arange(len(edge_a)), np.diff(ec_indptr))
    edge_a_arr = np.asarray(edge_a, dtype=np.int64)
    edge_b_arr = np.asarray(edge_b, dtype=np.int64)
    border_a = n_core + 2 * np.arange(n_ec)
    border_b = border_a + 1

    arrays.router_asn = np.concatenate([
        core_owner + 1,
        np.column_stack((edge_a_arr[ec_edge] + 1, edge_b_arr[ec_edge] + 1)).reshape(-1),
    ]).astype(np.int32)
    arrays.router_city = np.concatenate([
        core_city, np.repeat(ec_flat, 2)
    ]).astype(np.int32)
    arrays.router_role = np.concatenate([
        np.full(n_core, ROLE_CODES[RouterRole.CORE], dtype=np.int8),
        np.full(2 * n_ec, ROLE_CODES[RouterRole.BORDER], dtype=np.int8),
    ])

    # Links: intra-AS backbone trunks (consecutive core routers of each
    # AS), then per exchange city two metro hook-ups and the exchange
    # link itself, in edge order.
    same_as = core_owner[1:] == core_owner[:-1]
    trunk_u = np.nonzero(same_as)[0]
    trunk_v = trunk_u + 1
    core_a = core_rid(edge_a_arr[ec_edge], ec_flat)
    core_b = core_rid(edge_b_arr[ec_edge], ec_flat)
    metro_u = np.concatenate([np.minimum(core_a, border_a), np.minimum(core_b, border_b)])
    metro_v = np.concatenate([np.maximum(core_a, border_a), np.maximum(core_b, border_b)])
    link_u = np.concatenate([trunk_u, metro_u, border_a])
    link_v = np.concatenate([trunk_v, metro_v, border_b])
    n_trunk = len(trunk_u)
    n_metro = 2 * n_ec
    kinds = np.concatenate([
        np.full(n_trunk, KIND_CODES[LinkKind.BACKBONE], dtype=np.int8),
        np.full(n_metro, KIND_CODES[LinkKind.METRO], dtype=np.int8),
        np.full(n_ec, KIND_CODES[LinkKind.EXCHANGE], dtype=np.int8),
    ])
    arrays.link_u = link_u.astype(np.int32)
    arrays.link_v = link_v.astype(np.int32)
    arrays.link_kind = kinds

    u_city = arrays.router_city[link_u]
    v_city = arrays.router_city[link_v]
    km = _haversine_km(city_lat[u_city], city_lon[u_city], city_lat[v_city], city_lon[v_city])
    noise = rng.uniform(cfg.link_circuity_noise[0], cfg.link_circuity_noise[1], len(link_u))
    arrays.link_prop_ms = np.maximum(0.05, km * FIBER_CIRCUITY / FIBER_KM_PER_MS * noise)
    capacity = np.empty(len(link_u))
    util_draw = rng.random(len(link_u))
    util = np.empty(len(link_u))
    for kind in LinkKind:
        mask = kinds == KIND_CODES[kind]
        capacity[mask] = DEFAULT_CAPACITY_MBPS[kind] * cfg.capacity_scale
        lo, hi = BASELINE_UTILIZATION[kind]
        util[mask] = lo + util_draw[mask] * (hi - lo)
    arrays.link_capacity = capacity
    arrays.link_util = util

    # AS-link table + exchange index: one AS link per edge, exchange
    # link ids grouped per edge in creation order.
    arrays.aslink_a = edge_a_arr + 1
    arrays.aslink_b = edge_b_arr + 1
    arrays.aslink_rel = np.asarray(edge_rel, dtype=np.int8)
    arrays.aslink_city_indptr = ec_indptr
    arrays.aslink_city_idx = ec_flat.astype(np.int32)
    arrays.exch_pair_a = arrays.aslink_a
    arrays.exch_pair_b = arrays.aslink_b
    arrays.exch_indptr = ec_indptr
    arrays.exch_link_ids = (n_trunk + n_metro + np.arange(n_ec)).astype(np.int32)
    return arrays


# The preset dispatchers (``generate_topology_at_scale`` /
# ``build_topology``) live in :mod:`repro.topology.generator`: the
# ``paper-*`` presets route to the object generator, and importing it
# from here would cycle the layer.

"""Static Internet topology: geography, ASes, routers, links, hosts.

Public entry points:

* :func:`repro.topology.generate_topology` — build a seeded internetwork.
* :func:`repro.topology.place_hosts` — attach measurement hosts.
* :class:`repro.topology.TopologyConfig` — generation parameters / presets.
"""

from repro.topology.addressing import AddressPlan, AddressingError, RouterAddress
from repro.topology.asys import (
    ASLink,
    ASTier,
    AutonomousSystem,
    IGPStyle,
    LOCAL_PREF,
    Relationship,
)
from repro.topology.columnar import ColumnarError, TopologyArrays, from_topology
from repro.topology.export import TopologyStats, as_graph, router_graph, topology_stats
from repro.topology.generator import (
    TopologyConfig,
    build_topology,
    generate_topology,
    generate_topology_at_scale,
    place_hosts,
)
from repro.topology.geography import (
    CITIES,
    City,
    UnknownCityError,
    cities_in_region,
    get_city,
    great_circle_km,
    mean_pairwise_distance_km,
    north_american_cities,
    propagation_delay_ms,
    world_cities,
)
from repro.topology.links import Link, LinkKind
from repro.topology.network import Topology, TopologyError
from repro.topology.router import Host, Router, RouterRole
from repro.topology.scale import SCALE_PRESETS, ScaleConfig, ScaleError, resolve_preset

__all__ = [
    "ASLink",
    "ASTier",
    "AddressPlan",
    "AddressingError",
    "AutonomousSystem",
    "CITIES",
    "City",
    "ColumnarError",
    "Host",
    "IGPStyle",
    "LOCAL_PREF",
    "Link",
    "LinkKind",
    "Relationship",
    "Router",
    "RouterAddress",
    "RouterRole",
    "SCALE_PRESETS",
    "ScaleConfig",
    "ScaleError",
    "Topology",
    "TopologyArrays",
    "TopologyConfig",
    "TopologyError",
    "TopologyStats",
    "UnknownCityError",
    "as_graph",
    "build_topology",
    "cities_in_region",
    "from_topology",
    "generate_topology",
    "generate_topology_at_scale",
    "get_city",
    "great_circle_km",
    "mean_pairwise_distance_km",
    "north_american_cities",
    "place_hosts",
    "propagation_delay_ms",
    "resolve_preset",
    "router_graph",
    "topology_stats",
    "world_cities",
]

"""Static Internet topology: geography, ASes, routers, links, hosts.

Public entry points:

* :func:`repro.topology.generate_topology` — build a seeded internetwork.
* :func:`repro.topology.place_hosts` — attach measurement hosts.
* :class:`repro.topology.TopologyConfig` — generation parameters / presets.
"""

from repro.topology.addressing import AddressPlan, AddressingError, RouterAddress
from repro.topology.asys import (
    ASLink,
    ASTier,
    AutonomousSystem,
    IGPStyle,
    LOCAL_PREF,
    Relationship,
)
from repro.topology.export import TopologyStats, as_graph, router_graph, topology_stats
from repro.topology.generator import TopologyConfig, generate_topology, place_hosts
from repro.topology.geography import (
    CITIES,
    City,
    UnknownCityError,
    cities_in_region,
    get_city,
    great_circle_km,
    mean_pairwise_distance_km,
    north_american_cities,
    propagation_delay_ms,
    world_cities,
)
from repro.topology.links import Link, LinkKind
from repro.topology.network import Topology, TopologyError
from repro.topology.router import Host, Router, RouterRole

__all__ = [
    "ASLink",
    "ASTier",
    "AddressPlan",
    "AddressingError",
    "AutonomousSystem",
    "CITIES",
    "City",
    "Host",
    "IGPStyle",
    "LOCAL_PREF",
    "Link",
    "LinkKind",
    "Relationship",
    "Router",
    "RouterAddress",
    "RouterRole",
    "Topology",
    "TopologyConfig",
    "TopologyError",
    "TopologyStats",
    "UnknownCityError",
    "as_graph",
    "cities_in_region",
    "generate_topology",
    "get_city",
    "great_circle_km",
    "mean_pairwise_distance_km",
    "north_american_cities",
    "place_hosts",
    "propagation_delay_ms",
    "router_graph",
    "topology_stats",
    "world_cities",
]

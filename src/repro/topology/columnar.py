"""Columnar topology backend: the whole internetwork as flat arrays.

The object :class:`~repro.topology.network.Topology` keeps one Python
object per AS, router, link, and host.  That representation is ideal for
the paper-scale topologies (a few hundred ASes) but collapses two to
three orders of magnitude earlier than the hardware does: at 100k ASes
the object graph alone costs gigabytes and every traversal pays pointer-
chasing and dict-hashing overhead.

:class:`TopologyArrays` stores the same information column-wise:

* one numpy array per attribute (ASN, tier code, link delay, ...),
  indexed by the same dense ids the object model uses;
* ragged per-entity lists (an AS's cities, an AS link's exchange
  cities) in CSR form (``indptr`` + flat index array);
* the AS graph, the per-relationship Gao-Rexford adjacency, and the
  intra-AS router graph as CSR adjacency (see
  :mod:`repro.routing.columnar` for the solvers that consume them).

The two representations convert losslessly in both directions:
:func:`from_topology` reads an object topology into arrays, and
:meth:`TopologyArrays.to_topology` replays the arrays through the object
construction API so the result is *byte-identical* under :mod:`pickle`
to the original (same derived-index ordering, same object sharing).
The object path stays authoritative at paper scale — differential tests
hold the columnar backend to it route-for-route.

Enum attributes are stored as small integer codes; the ``*_CODES`` /
``*_FROM_CODE`` tables below define the mapping and are part of the
on-disk/shared-memory contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import runtime as obs

from repro.topology.asys import ASLink, ASTier, AutonomousSystem, IGPStyle, Relationship
from repro.topology.geography import City
from repro.topology.links import Link, LinkKind
from repro.topology.network import Topology
from repro.topology.router import Host, Router, RouterRole

#: Stable enum -> int8 code tables (part of the columnar contract).
TIER_FROM_CODE: tuple[ASTier, ...] = (ASTier.TIER1, ASTier.TRANSIT, ASTier.STUB)
IGP_FROM_CODE: tuple[IGPStyle, ...] = (IGPStyle.HOP_COUNT, IGPStyle.DELAY_METRIC)
ROLE_FROM_CODE: tuple[RouterRole, ...] = (
    RouterRole.CORE,
    RouterRole.BORDER,
    RouterRole.ACCESS,
)
KIND_FROM_CODE: tuple[LinkKind, ...] = (
    LinkKind.BACKBONE,
    LinkKind.METRO,
    LinkKind.EXCHANGE,
    LinkKind.ACCESS,
)
REL_FROM_CODE: tuple[Relationship, ...] = (
    Relationship.CUSTOMER,
    Relationship.PROVIDER,
    Relationship.PEER,
    Relationship.SIBLING,
)

TIER_CODES = {member: i for i, member in enumerate(TIER_FROM_CODE)}
IGP_CODES = {member: i for i, member in enumerate(IGP_FROM_CODE)}
ROLE_CODES = {member: i for i, member in enumerate(ROLE_FROM_CODE)}
KIND_CODES = {member: i for i, member in enumerate(KIND_FROM_CODE)}
REL_CODES = {member: i for i, member in enumerate(REL_FROM_CODE)}


class ColumnarError(RuntimeError):
    """Raised on invalid columnar topology operations."""


@dataclass(frozen=True, slots=True)
class RelationshipArrays:
    """The Gao-Rexford relationship index as typed arrays.

    The columnar analog of
    :class:`~repro.topology.network.ASRelationshipIndex`: per-AS
    customer/provider/peer neighbor lists in CSR form (all indices are
    dense AS *indices*, not ASNs), plus the customers-first topological
    levels of the provider hierarchy that the vectorized solver
    schedules by.

    Attributes:
        customers_indptr / customers: CSR of each AS's customers,
            neighbor lists sorted by neighbor ASN.
        providers_indptr / providers: CSR of each AS's providers.
        peers_indptr / peers: CSR of each AS's peers.
        has_siblings: Whether any SIBLING adjacency exists (columnar
            solving is refused; the object fixpoint is the fallback).
        levels: ``levels[i]`` is the customer-DAG depth of AS ``i`` (0
            for ASes without customers), or -1 everywhere when the
            customer/provider graph has a cycle (no valid hierarchy).
        down_levels: provider-DAG depth (0 for ASes without providers),
            the stage-3 schedule; -1 everywhere on a cycle.
    """

    customers_indptr: np.ndarray
    customers: np.ndarray
    providers_indptr: np.ndarray
    providers: np.ndarray
    peers_indptr: np.ndarray
    peers: np.ndarray
    has_siblings: bool
    levels: np.ndarray
    down_levels: np.ndarray

    @property
    def acyclic(self) -> bool:
        """Whether the customer->provider hierarchy is a DAG."""
        return bool(self.levels.size == 0 or self.levels[0] != -1 or self.levels.max() >= 0)


def _csr_from_lists(lists: list[list[int]], dtype=np.int32) -> tuple[np.ndarray, np.ndarray]:
    indptr = np.zeros(len(lists) + 1, dtype=np.int64)
    for i, row in enumerate(lists):
        indptr[i + 1] = indptr[i] + len(row)
    flat = np.empty(int(indptr[-1]), dtype=dtype)
    for i, row in enumerate(lists):
        flat[indptr[i]: indptr[i + 1]] = row
    return indptr, flat


@dataclass
class TopologyArrays:
    """A complete internetwork in columnar (struct-of-arrays) form.

    Row ``i`` of the AS table is the AS registered ``i``-th; router and
    link rows are indexed by the same dense ``router_id`` / ``link_id``
    the object model uses.  City rows are unique cities in order of
    first appearance.  See the module docstring for the conversion
    contract.
    """

    # -- city table --------------------------------------------------------
    city_names: list[str] = field(default_factory=list)
    city_lat: np.ndarray = field(default_factory=lambda: np.empty(0))
    city_lon: np.ndarray = field(default_factory=lambda: np.empty(0))
    city_regions: list[str] = field(default_factory=list)
    city_weight: np.ndarray = field(default_factory=lambda: np.empty(0))

    # -- AS table ----------------------------------------------------------
    as_asn: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    as_names: list[str] = field(default_factory=list)
    as_tier: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    as_igp: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    as_early_exit: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))
    as_city_indptr: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    as_city_idx: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))

    # -- router table (row = router_id) ------------------------------------
    router_asn: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    router_city: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    router_role: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))

    # -- link table (row = link_id) ----------------------------------------
    link_u: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    link_v: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    link_kind: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    link_prop_ms: np.ndarray = field(default_factory=lambda: np.empty(0))
    link_capacity: np.ndarray = field(default_factory=lambda: np.empty(0))
    link_util: np.ndarray = field(default_factory=lambda: np.empty(0))

    # -- AS-link table (row = registration order) --------------------------
    aslink_a: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    aslink_b: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    aslink_rel: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    aslink_city_indptr: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    aslink_city_idx: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))

    # -- exchange-link index (pair rows in key-insertion order) ------------
    exch_pair_a: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    exch_pair_b: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    exch_indptr: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    exch_link_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))

    # -- host table (row = host_id) ----------------------------------------
    host_names: list[str] = field(default_factory=list)
    host_city: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    host_asn: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    host_access_router: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    host_access_link: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    host_rate_limit: np.ndarray = field(default_factory=lambda: np.empty(0))

    # -- derived (lazily built, never pickled as part of the contract) -----
    _asn_index: np.ndarray | None = field(default=None, repr=False, compare=False)
    _rel_arrays: RelationshipArrays | None = field(default=None, repr=False, compare=False)
    _as_routers: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    # -- sizes -------------------------------------------------------------

    @property
    def n_as(self) -> int:
        """Number of autonomous systems."""
        return len(self.as_asn)

    @property
    def n_routers(self) -> int:
        """Number of routers."""
        return len(self.router_asn)

    @property
    def n_links(self) -> int:
        """Number of router-level links."""
        return len(self.link_u)

    @property
    def n_hosts(self) -> int:
        """Number of measurement hosts."""
        return len(self.host_names)

    def summary(self) -> dict[str, int]:
        """Size counters matching :meth:`Topology.summary`."""
        return {
            "ases": self.n_as,
            "as_links": len(self.aslink_a),
            "routers": self.n_routers,
            "links": self.n_links,
            "hosts": self.n_hosts,
        }

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_asn_index"] = None
        state["_rel_arrays"] = None
        state["_as_routers"] = None
        return state

    # -- lookups -----------------------------------------------------------

    def asn_index(self) -> np.ndarray:
        """Dense ASN -> AS-index lookup array (-1 for unknown ASNs)."""
        if self._asn_index is None:
            size = int(self.as_asn.max()) + 1 if self.n_as else 1
            index = np.full(size, -1, dtype=np.int64)
            index[self.as_asn] = np.arange(self.n_as, dtype=np.int64)
            self._asn_index = index
        return self._asn_index

    def as_cities(self, as_idx: int) -> np.ndarray:
        """City indices of one AS, in its cities-list order."""
        return self.as_city_idx[
            self.as_city_indptr[as_idx]: self.as_city_indptr[as_idx + 1]
        ]

    def routers_by_as(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR of router ids grouped by AS index (ids ascending per AS)."""
        if self._as_routers is None:
            owner = self.asn_index()[self.router_asn]
            order = np.argsort(owner, kind="stable")
            counts = np.bincount(owner, minlength=self.n_as)
            indptr = np.zeros(self.n_as + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._as_routers = (indptr, order.astype(np.int32))
        return self._as_routers

    def relationship_arrays(self) -> RelationshipArrays:
        """The typed-array Gao-Rexford index (cached)."""
        if self._rel_arrays is None:
            self._rel_arrays = _build_relationship_arrays(self)
        return self._rel_arrays

    # -- conversion --------------------------------------------------------

    def to_topology(self) -> Topology:
        """Rebuild the object :class:`Topology` by replaying construction.

        Every ``add_*`` call is replayed in the original registration
        order, so derived indices (adjacency lists, core-router map,
        exchange index) come out in the same iteration order and the
        result pickles byte-identically to the topology the arrays were
        built from.
        """
        with obs.span("topology.columnar.to_topology") as sp:
            sp.set("ases", self.n_as)
            topo = Topology()
            cities = [
                City(
                    name=self.city_names[i],
                    lat=float(self.city_lat[i]),
                    lon=float(self.city_lon[i]),
                    region=self.city_regions[i],
                    population_weight=float(self.city_weight[i]),
                )
                for i in range(len(self.city_names))
            ]
            as_city_idx = self.as_city_idx.tolist()
            as_city_indptr = self.as_city_indptr.tolist()
            for i in range(self.n_as):
                topo.add_as(
                    AutonomousSystem(
                        asn=int(self.as_asn[i]),
                        name=self.as_names[i],
                        tier=TIER_FROM_CODE[self.as_tier[i]],
                        cities=[
                            cities[c]
                            for c in as_city_idx[as_city_indptr[i]: as_city_indptr[i + 1]]
                        ],
                        igp_style=IGP_FROM_CODE[self.as_igp[i]],
                        early_exit=bool(self.as_early_exit[i]),
                    )
                )
            # Routers and links replay through the raw containers (the
            # construction helpers recompute defaults we already store);
            # derived adjacency is maintained exactly as add_router /
            # add_link would.
            router_asn = self.router_asn.tolist()
            router_city = self.router_city.tolist()
            router_role = self.router_role.tolist()
            for rid in range(self.n_routers):
                asn = router_asn[rid]
                router = Router(
                    router_id=rid,
                    asn=asn,
                    city=cities[router_city[rid]],
                    role=ROLE_FROM_CODE[router_role[rid]],
                )
                topo.routers.append(router)
                topo._as_routers[asn].append(rid)
                if router.role is RouterRole.CORE:
                    topo._core_router[(asn, router.city.name)] = rid
            link_u = self.link_u.tolist()
            link_v = self.link_v.tolist()
            link_kind = self.link_kind.tolist()
            link_prop = self.link_prop_ms.tolist()
            link_cap = self.link_capacity.tolist()
            link_util = self.link_util.tolist()
            for lid in range(self.n_links):
                link = Link(
                    link_id=lid,
                    u=link_u[lid],
                    v=link_v[lid],
                    kind=KIND_FROM_CODE[link_kind[lid]],
                    prop_delay_ms=link_prop[lid],
                    capacity_mbps=link_cap[lid],
                    base_utilization=link_util[lid],
                )
                topo.links.append(link)
                topo._router_adj[link.u].append(link)
                topo._router_adj[link.v].append(link)
            aslink_city_idx = self.aslink_city_idx.tolist()
            aslink_city_indptr = self.aslink_city_indptr.tolist()
            for i in range(len(self.aslink_a)):
                lo, hi = aslink_city_indptr[i], aslink_city_indptr[i + 1]
                topo.add_as_link(
                    ASLink(
                        a=int(self.aslink_a[i]),
                        b=int(self.aslink_b[i]),
                        rel_ab=REL_FROM_CODE[self.aslink_rel[i]],
                        exchange_cities=tuple(
                            cities[c].name for c in aslink_city_idx[lo:hi]
                        ),
                    )
                )
            exch_indptr = self.exch_indptr.tolist()
            exch_link_ids = self.exch_link_ids.tolist()
            for i in range(len(self.exch_pair_a)):
                key = frozenset((int(self.exch_pair_a[i]), int(self.exch_pair_b[i])))
                topo._exchange_links[key] = exch_link_ids[
                    exch_indptr[i]: exch_indptr[i + 1]
                ]
            for h in range(self.n_hosts):
                topo.add_host(
                    Host(
                        host_id=h,
                        name=self.host_names[h],
                        city=cities[self.host_city[h]],
                        asn=int(self.host_asn[h]),
                        access_router=int(self.host_access_router[h]),
                        access_link=int(self.host_access_link[h]),
                        icmp_rate_limit_per_min=float(self.host_rate_limit[h]),
                    )
                )
            # Construction replay dirties the route cache repeatedly;
            # leave the rebuilt topology exactly as a fresh build: empty
            # caches, no relationship index.
            topo._route_cache.clear()
            topo._rel_index = None
        obs.count("topology.columnar.to_topology")
        return topo


def from_topology(topo: Topology) -> TopologyArrays:
    """Read an object :class:`Topology` into :class:`TopologyArrays`.

    The inverse of :meth:`TopologyArrays.to_topology`; see the module
    docstring for the round-trip contract.
    """
    with obs.span("topology.columnar.from_topology") as sp:
        sp.set("ases", len(topo.ases))
        arrays = TopologyArrays()
        city_index: dict[str, int] = {}

        def city_id(city: City) -> int:
            idx = city_index.get(city.name)
            if idx is None:
                idx = len(arrays.city_names)
                city_index[city.name] = idx
                arrays.city_names.append(city.name)
                arrays.city_regions.append(city.region)
                _city_lat.append(city.lat)
                _city_lon.append(city.lon)
                _city_weight.append(city.population_weight)
            return idx

        _city_lat: list[float] = []
        _city_lon: list[float] = []
        _city_weight: list[float] = []

        ases = list(topo.ases.values())
        as_city_lists = [[city_id(c) for c in a.cities] for a in ases]
        arrays.as_asn = np.array([a.asn for a in ases], dtype=np.int64)
        arrays.as_names = [a.name for a in ases]
        arrays.as_tier = np.array([TIER_CODES[a.tier] for a in ases], dtype=np.int8)
        arrays.as_igp = np.array([IGP_CODES[a.igp_style] for a in ases], dtype=np.int8)
        arrays.as_early_exit = np.array([a.early_exit for a in ases], dtype=np.bool_)
        arrays.as_city_indptr, arrays.as_city_idx = _csr_from_lists(as_city_lists)

        arrays.router_asn = np.array(
            [r.asn for r in topo.routers], dtype=np.int32
        ).reshape(-1)
        arrays.router_city = np.array(
            [city_id(r.city) for r in topo.routers], dtype=np.int32
        ).reshape(-1)
        arrays.router_role = np.array(
            [ROLE_CODES[r.role] for r in topo.routers], dtype=np.int8
        ).reshape(-1)

        arrays.link_u = np.array([k.u for k in topo.links], dtype=np.int32).reshape(-1)
        arrays.link_v = np.array([k.v for k in topo.links], dtype=np.int32).reshape(-1)
        arrays.link_kind = np.array(
            [KIND_CODES[k.kind] for k in topo.links], dtype=np.int8
        ).reshape(-1)
        arrays.link_prop_ms = np.array([k.prop_delay_ms for k in topo.links])
        arrays.link_capacity = np.array([k.capacity_mbps for k in topo.links])
        arrays.link_util = np.array([k.base_utilization for k in topo.links])

        arrays.aslink_a = np.array([al.a for al in topo.as_links], dtype=np.int64)
        arrays.aslink_b = np.array([al.b for al in topo.as_links], dtype=np.int64)
        arrays.aslink_rel = np.array(
            [REL_CODES[al.rel_ab] for al in topo.as_links], dtype=np.int8
        )
        arrays.aslink_city_indptr, arrays.aslink_city_idx = _csr_from_lists(
            [[city_index[name] for name in al.exchange_cities] for al in topo.as_links]
        )

        pairs = list(topo._exchange_links.items())
        pair_lists = []
        pair_a: list[int] = []
        pair_b: list[int] = []
        for key, link_ids in pairs:
            a, b = sorted(key)
            pair_a.append(a)
            pair_b.append(b)
            pair_lists.append(list(link_ids))
        arrays.exch_pair_a = np.array(pair_a, dtype=np.int64)
        arrays.exch_pair_b = np.array(pair_b, dtype=np.int64)
        arrays.exch_indptr, arrays.exch_link_ids = _csr_from_lists(pair_lists)

        arrays.host_names = [h.name for h in topo.hosts]
        arrays.host_city = np.array(
            [city_id(h.city) for h in topo.hosts], dtype=np.int32
        ).reshape(-1)
        arrays.host_asn = np.array([h.asn for h in topo.hosts], dtype=np.int32).reshape(-1)
        arrays.host_access_router = np.array(
            [h.access_router for h in topo.hosts], dtype=np.int32
        ).reshape(-1)
        arrays.host_access_link = np.array(
            [h.access_link for h in topo.hosts], dtype=np.int32
        ).reshape(-1)
        arrays.host_rate_limit = np.array(
            [h.icmp_rate_limit_per_min for h in topo.hosts]
        )

        arrays.city_lat = np.array(_city_lat)
        arrays.city_lon = np.array(_city_lon)
        arrays.city_weight = np.array(_city_weight)
    obs.count("topology.columnar.from_topology")
    return arrays


def _build_relationship_arrays(arrays: TopologyArrays) -> RelationshipArrays:
    """Classify AS adjacency by relationship and level the hierarchy."""
    n = arrays.n_as
    asn_index = arrays.asn_index()
    a_idx = asn_index[arrays.aslink_a] if len(arrays.aslink_a) else np.empty(0, np.int64)
    b_idx = asn_index[arrays.aslink_b] if len(arrays.aslink_b) else np.empty(0, np.int64)
    rel = arrays.aslink_rel
    has_siblings = bool((rel == REL_CODES[Relationship.SIBLING]).any())

    # Edge direction convention: rel_ab is b's relationship from a's
    # viewpoint, so rel_ab == CUSTOMER means b is a's customer.
    cust_code = REL_CODES[Relationship.CUSTOMER]
    prov_code = REL_CODES[Relationship.PROVIDER]
    peer_code = REL_CODES[Relationship.PEER]
    is_cust = rel == cust_code
    is_prov = rel == prov_code
    is_peer = rel == peer_code
    # (owner, neighbor) pairs for each classified list.
    cust_owner = np.concatenate([a_idx[is_cust], b_idx[is_prov]])
    cust_nbr = np.concatenate([b_idx[is_cust], a_idx[is_prov]])
    prov_owner = np.concatenate([a_idx[is_prov], b_idx[is_cust]])
    prov_nbr = np.concatenate([b_idx[is_prov], a_idx[is_cust]])
    peer_owner = np.concatenate([a_idx[is_peer], b_idx[is_peer]])
    peer_nbr = np.concatenate([b_idx[is_peer], a_idx[is_peer]])

    def csr(owner: np.ndarray, nbr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Sort by (owner, neighbor ASN) so per-owner lists match the
        # object index's sorted-tuple convention.
        nbr_asn = arrays.as_asn[nbr] if len(nbr) else nbr
        order = np.lexsort((nbr_asn, owner))
        owner = owner[order]
        nbr = nbr[order]
        counts = np.bincount(owner, minlength=n) if len(owner) else np.zeros(n, np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, nbr.astype(np.int32)

    customers_indptr, customers = csr(cust_owner, cust_nbr)
    providers_indptr, providers = csr(prov_owner, prov_nbr)
    peers_indptr, peers = csr(peer_owner, peer_nbr)

    # Customer-DAG levels by Kahn over customer->provider edges
    # (edge c -> p for every "c is p's customer" pair).
    levels = np.zeros(n, dtype=np.int32)
    indegree = np.diff(customers_indptr).astype(np.int64)
    edge_src = customers  # provider row -> its customers
    # Build provider list per customer for propagation: reuse the
    # providers CSR (for each AS, who are its providers).
    ready = list(np.nonzero(indegree == 0)[0])
    seen = 0
    head = 0
    ready_arr = ready
    remaining = indegree.copy()
    while head < len(ready_arr):
        x = ready_arr[head]
        head += 1
        seen += 1
        for p in providers[providers_indptr[x]: providers_indptr[x + 1]]:
            p = int(p)
            if levels[p] < levels[x] + 1:
                levels[p] = levels[x] + 1
            remaining[p] -= 1
            if remaining[p] == 0:
                ready_arr.append(p)
    del edge_src
    if seen != n:
        levels = np.full(n, -1, dtype=np.int32)
        down_levels = np.full(n, -1, dtype=np.int32)
    else:
        down_levels = np.zeros(n, dtype=np.int32)
        remaining = np.diff(providers_indptr).astype(np.int64)
        ready_arr = list(np.nonzero(remaining == 0)[0])
        head = 0
        while head < len(ready_arr):
            x = ready_arr[head]
            head += 1
            for c in customers[customers_indptr[x]: customers_indptr[x + 1]]:
                c = int(c)
                if down_levels[c] < down_levels[x] + 1:
                    down_levels[c] = down_levels[x] + 1
                remaining[c] -= 1
                if remaining[c] == 0:
                    ready_arr.append(c)
    return RelationshipArrays(
        customers_indptr=customers_indptr,
        customers=customers,
        providers_indptr=providers_indptr,
        providers=providers,
        peers_indptr=peers_indptr,
        peers=peers,
        has_siblings=has_siblings,
        levels=levels,
        down_levels=down_levels,
    )

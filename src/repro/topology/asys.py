"""Autonomous-system model: AS records and business relationships.

Section 3 of the paper describes the two-level Internet routing hierarchy:
autonomous systems (ASes) running an IGP internally and BGP between each
other, with per-AS routing *policies* driven by commercial relationships.
This module provides the static AS-level objects: the AS itself, its tier in
the provider hierarchy, and the typed relationships (customer/provider,
peer/peer, sibling) that drive valley-free route export in
:mod:`repro.routing.bgp`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.topology.geography import City


class ASTier(enum.Enum):
    """Position of an AS in the provider hierarchy.

    ``TIER1`` ASes form the default-free core (the paper's era: Sprint, MCI,
    UUNET, ...).  ``TRANSIT`` ASes are regional providers that buy transit
    from tier-1s and sell it to stubs.  ``STUB`` ASes (universities,
    enterprises) originate hosts and buy transit.
    """

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"


class Relationship(enum.Enum):
    """Business relationship of a neighbor, from the local AS's viewpoint.

    The relationship determines both route *preference* (customer routes are
    revenue, so they are preferred over peer routes, which are preferred over
    provider routes) and route *export* (the valley-free rule).
    """

    CUSTOMER = "customer"   # neighbor pays us
    PROVIDER = "provider"   # we pay neighbor
    PEER = "peer"           # settlement-free exchange
    SIBLING = "sibling"     # same organization; exchange everything

    def inverse(self) -> "Relationship":
        """The relationship as seen from the other side of the link."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self


#: Local-preference classes used by the BGP decision process, higher is
#: preferred.  Routes learned from customers beat peers beat providers.
LOCAL_PREF: dict[Relationship, int] = {
    Relationship.CUSTOMER: 300,
    Relationship.SIBLING: 250,
    Relationship.PEER: 200,
    Relationship.PROVIDER: 100,
}


class IGPStyle(enum.Enum):
    """How an AS assigns metrics to its internal links (paper §3).

    Small ASes often use raw hop counts; large ones set static metrics that
    track propagation delay to avoid long detours.
    """

    HOP_COUNT = "hop-count"
    DELAY_METRIC = "delay-metric"


@dataclass(slots=True)
class AutonomousSystem:
    """An autonomous system in the simulated Internet.

    Attributes:
        asn: Autonomous system number, unique within a topology.
        name: Human-readable name, e.g. ``"backbone-3"``.
        tier: Place in the provider hierarchy.
        cities: Cities where this AS operates a POP.
        igp_style: Internal routing metric style.
        early_exit: Whether this AS practices early-exit (hot-potato)
            routing when handing traffic to a neighbor reachable at several
            exchange points.  The paper (§3) describes this as "a very
            common policy for large network service providers".
    """

    asn: int
    name: str
    tier: ASTier
    cities: list[City] = field(default_factory=list)
    igp_style: IGPStyle = IGPStyle.HOP_COUNT
    early_exit: bool = True

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise ValueError(f"asn must be non-negative, got {self.asn}")
        if not self.cities:
            # Will be populated by the generator; an AS with no POP is only
            # legal transiently during construction.
            pass

    def has_pop_in(self, city: City) -> bool:
        """Whether this AS operates a POP in ``city``."""
        return any(c.name == city.name for c in self.cities)

    def __hash__(self) -> int:
        return hash(self.asn)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"AS{self.asn}({self.name}, {self.tier.value}, {len(self.cities)} POPs)"


@dataclass(frozen=True, slots=True)
class ASLink:
    """A BGP adjacency between two ASes.

    Attributes:
        a: Lower-numbered AS of the adjacency.
        b: Higher-numbered AS of the adjacency.
        rel_ab: Relationship of ``b`` from ``a``'s point of view; e.g.
            ``Relationship.CUSTOMER`` means *b is a's customer*.
        exchange_cities: Cities where the two ASes interconnect.  Multiple
            exchange points make early-exit routing meaningful.
    """

    a: int
    b: int
    rel_ab: Relationship
    exchange_cities: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("an AS cannot link to itself")
        if not self.exchange_cities:
            raise ValueError("an AS link needs at least one exchange city")

    def relationship_from(self, asn: int) -> Relationship:
        """The relationship of the *other* AS as seen from ``asn``.

        Raises:
            ValueError: if ``asn`` is not an endpoint of this link.
        """
        if asn == self.a:
            return self.rel_ab
        if asn == self.b:
            return self.rel_ab.inverse()
        raise ValueError(f"AS{asn} is not on link AS{self.a}-AS{self.b}")

    def other(self, asn: int) -> int:
        """The ASN at the other end of the adjacency.

        Raises:
            ValueError: if ``asn`` is not an endpoint of this link.
        """
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValueError(f"AS{asn} is not on link AS{self.a}-AS{self.b}")

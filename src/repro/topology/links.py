"""Physical link model: delay, capacity, and link kinds.

Links are the unit at which the dynamic simulator (:mod:`repro.netsim`)
applies utilization, queuing delay, and loss.  A link here is a
*unidirectional-symmetric* physical adjacency: the same object is used for
both directions, but the netsim layer draws independent utilization per
direction, since real congestion is direction-dependent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LinkKind(enum.Enum):
    """What role a link plays in the topology.

    The kind determines default capacity and how the congestion model
    treats it: exchange points in the late-1990s Internet were famously
    congested (the paper's §7.1 mentions "congested exchange points"), while
    backbone trunks were typically better provisioned.
    """

    BACKBONE = "backbone"       # intra-AS long-haul trunk
    METRO = "metro"             # intra-AS same-city interconnect
    EXCHANGE = "exchange"       # inter-AS interconnect (NAP / private peering)
    ACCESS = "access"           # host attachment (campus / enterprise)


#: Default capacity in Mbit/s by link kind, late-1990s technology: DS3/OC-3
#: backbones, FDDI/100M exchange fabrics, Ethernet-class access.
DEFAULT_CAPACITY_MBPS: dict[LinkKind, float] = {
    LinkKind.BACKBONE: 155.0,
    LinkKind.METRO: 100.0,
    LinkKind.EXCHANGE: 45.0,
    LinkKind.ACCESS: 10.0,
}

#: Baseline utilization ranges (lo, hi) by link kind.  Exchange points run
#: hot; access links are mostly idle.  The topology generator draws each
#: link's baseline uniformly from its kind's range.
BASELINE_UTILIZATION: dict[LinkKind, tuple[float, float]] = {
    LinkKind.BACKBONE: (0.10, 0.45),
    LinkKind.METRO: (0.10, 0.40),
    LinkKind.EXCHANGE: (0.30, 0.78),
    LinkKind.ACCESS: (0.05, 0.30),
}


@dataclass(frozen=True, slots=True)
class Link:
    """A physical adjacency between two routers.

    Attributes:
        link_id: Dense integer id, index into netsim state arrays.
        u: Router id of one endpoint (lower id by convention).
        v: Router id of the other endpoint.
        kind: Role of the link.
        prop_delay_ms: One-way propagation delay in milliseconds.
        capacity_mbps: Nominal capacity in Mbit/s.
        base_utilization: Long-term average utilization in [0, 1), before
            diurnal modulation.
    """

    link_id: int
    u: int
    v: int
    kind: LinkKind
    prop_delay_ms: float
    capacity_mbps: float
    base_utilization: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError("a link cannot connect a router to itself")
        if self.prop_delay_ms <= 0:
            raise ValueError(f"prop_delay_ms must be positive, got {self.prop_delay_ms}")
        if self.capacity_mbps <= 0:
            raise ValueError(f"capacity_mbps must be positive, got {self.capacity_mbps}")
        if not 0.0 <= self.base_utilization < 1.0:
            raise ValueError(
                f"base_utilization must be in [0, 1), got {self.base_utilization}"
            )

    def other(self, router_id: int) -> int:
        """The router at the other end of the link.

        Raises:
            ValueError: if ``router_id`` is not an endpoint.
        """
        if router_id == self.u:
            return self.v
        if router_id == self.v:
            return self.u
        raise ValueError(f"router {router_id} is not on link {self.link_id}")

    @property
    def transmission_delay_ms(self) -> float:
        """Serialization delay for a 1500-byte packet on this link, in ms."""
        bits = 1500 * 8
        return bits / (self.capacity_mbps * 1000.0)

"""Diurnal and weekly load modulation.

"Many different parts of the Internet see higher load during weekday
working hours and lower load during other times" (paper §4.1, citing
Thompson et al.).  Every link's baseline utilization is modulated by a
profile of its local (solar) time of day and day of week.  The profile is
piecewise-linear through anchor points and normalized so its weekday mean
is 1.0, keeping each link's configured ``base_utilization`` interpretable
as a long-term weekday average.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, day_of_week

#: (local hour, multiplier) anchor points for weekdays.  Linearly
#: interpolated and periodic in 24 h.  Shape: quiet overnight, steep
#: morning ramp, sustained working-hours plateau, evening decay.
WEEKDAY_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.0, 0.55),
    (5.0, 0.45),
    (8.0, 0.95),
    (10.0, 1.30),
    (13.0, 1.35),
    (16.0, 1.25),
    (19.0, 1.05),
    (22.0, 0.75),
    (24.0, 0.55),
)

#: Flat weekend multiplier relative to the weekday mean.
WEEKEND_LEVEL = 0.65


def _interp_anchors(hour: float, anchors: tuple[tuple[float, float], ...]) -> float:
    hours = [a[0] for a in anchors]
    idx = bisect.bisect_right(hours, hour) - 1
    idx = max(0, min(idx, len(anchors) - 2))
    h0, v0 = anchors[idx]
    h1, v1 = anchors[idx + 1]
    if h1 == h0:
        return v0
    frac = (hour - h0) / (h1 - h0)
    return v0 + frac * (v1 - v0)


def _weekday_mean(anchors: tuple[tuple[float, float], ...]) -> float:
    # Trapezoidal mean over 24 h.
    total = 0.0
    for (h0, v0), (h1, v1) in zip(anchors, anchors[1:]):
        total += (h1 - h0) * (v0 + v1) / 2.0
    return total / 24.0


_WEEKDAY_NORM = _weekday_mean(WEEKDAY_ANCHORS)


def load_multiplier(t: float, utc_offset_hours: float) -> float:
    """Load multiplier at simulation time ``t`` for a given local offset.

    Normalized so the weekday 24-hour mean is 1.0.
    """
    local = t + utc_offset_hours * SECONDS_PER_HOUR
    if day_of_week(local) >= 5:
        return WEEKEND_LEVEL / _WEEKDAY_NORM
    hour = (local % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    return _interp_anchors(hour, WEEKDAY_ANCHORS) / _WEEKDAY_NORM


def load_multiplier_array(t: float, utc_offsets: np.ndarray) -> np.ndarray:
    """Vectorized :func:`load_multiplier` over an array of local offsets.

    Args:
        t: Simulation time in seconds.
        utc_offsets: Per-link local-time offsets in hours.

    Returns:
        Array of multipliers, same shape as ``utc_offsets``.
    """
    local = t + utc_offsets * SECONDS_PER_HOUR
    dow = (local // SECONDS_PER_DAY).astype(np.int64) % 7
    hours = (local % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    xs = np.array([a[0] for a in WEEKDAY_ANCHORS])
    ys = np.array([a[1] for a in WEEKDAY_ANCHORS])
    weekday_vals = np.interp(hours, xs, ys) / _WEEKDAY_NORM
    weekend_val = WEEKEND_LEVEL / _WEEKDAY_NORM
    return np.where(dow >= 5, weekend_val, weekday_vals)

"""Probe sampling over flapping routes.

:class:`DynamicPathSampler` is the netsim-side half of route dynamics:
it has the same probing interface as
:class:`~repro.netsim.conditions.PathSampler` but owns two underlying
samplers (primary and secondary round trips, index-aligned) and consults
a :class:`~repro.routing.dynamics.RouteFlapModel` per (pair, time) to
decide which route each probe sees.

It lives here rather than next to the flap model because it is a
sampler: routing decides *which* paths exist and when they flap, netsim
decides *what a probe experiences* on them.  (Historically it sat in
``repro.routing.dynamics``, which made routing import netsim — an upward
edge the ARCH rules now reject.)
"""

from __future__ import annotations

import numpy as np

from repro.netsim.conditions import (
    BUCKET_SECONDS,
    BucketProbeMixin,
    NetworkConditions,
    PathSampler,
    SamplerView,
)
from repro.routing.dynamics import FLAP_WINDOW_S, RouteFlapModel
from repro.routing.forwarding import RoundTripPath


class DynamicPathSampler(BucketProbeMixin):
    """Samples probes over flapping routes.

    Drop-in replacement for :class:`PathSampler` in the collector: it owns
    two underlying samplers (primary and secondary paths, index-aligned)
    and consults the flap model per (pair, time).  The flap decisions are
    pure functions of (pair, window), so the per-window secondary masks
    and the flappy-pair set are computed once and cached; blended bucket
    views come from the shared :class:`BucketProbeMixin` cache.

    Correctness of both caches requires the flap window to be a whole
    multiple of the congestion bucket — otherwise a bucket view straddles
    a route change and probes silently sample the wrong route.  The
    window length is read from the model's ``window_s`` attribute
    (default :data:`FLAP_WINDOW_S`) and validated at construction; a
    scenario whose ``for=`` durations imply a misaligned window is
    rejected here with a clear error instead of mis-bucketing.
    """

    def __init__(
        self,
        conditions: NetworkConditions,
        primaries: list[RoundTripPath],
        secondaries: list[RoundTripPath],
        flap_model: RouteFlapModel,
    ) -> None:
        if len(primaries) != len(secondaries):
            raise ValueError("primary/secondary path lists must align")
        window_s = float(getattr(flap_model, "window_s", FLAP_WINDOW_S))
        if window_s <= 0 or window_s % BUCKET_SECONDS != 0.0:
            raise ValueError(
                f"flap window ({window_s:g} s) must be a positive whole "
                f"multiple of the congestion bucket ({BUCKET_SECONDS:g} s); "
                "a bucket must never straddle a route change"
            )
        self._window_s = window_s
        self._primary = PathSampler(conditions, primaries)
        self._secondary = PathSampler(conditions, secondaries)
        self.flap_model = flap_model
        self._flappy: np.ndarray | None = None
        self._mask_cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._primary)

    def _active_mask(self, t: float) -> np.ndarray:
        window = int(t // self._window_s)
        mask = self._mask_cache.get(window)
        if mask is None:
            if self._flappy is None:
                self._flappy = np.fromiter(
                    (self.flap_model.is_flappy(i) for i in range(len(self))),
                    dtype=bool,
                    count=len(self),
                )
            if len(self._mask_cache) > 256:
                self._mask_cache.clear()
            mask = np.zeros(len(self), dtype=bool)
            window_t = window * self._window_s
            for i in np.flatnonzero(self._flappy):
                mask[i] = self.flap_model.on_secondary(int(i), window_t)
            self._mask_cache[window] = mask
        return mask

    def prop_delays(self) -> np.ndarray:
        """Primary-route propagation delays (static reference)."""
        return self._primary.prop_delays()

    def view(self, t: float) -> SamplerView:
        """Blended congestion view: per pair, the active route's state."""
        pv = self._primary.view(t)
        sv = self._secondary.view(t)
        mask = self._active_mask(t)
        return SamplerView(
            t=t,
            prop=np.where(mask, sv.prop, pv.prop),
            qsum=np.where(mask, sv.qsum, pv.qsum),
            ploss=np.where(mask, sv.ploss, pv.ploss),
        )

"""Time-varying network conditions and vectorized path sampling.

:class:`NetworkConditions` owns per-link state as flat numpy arrays and
answers "what is every link's utilization / queuing delay / loss
probability at time *t*?".  Conditions are **deterministic in (seed, t)**:
stochastic variation is generated from counter-based draws keyed on the
time bucket, so any query order yields identical results — essential for
reproducible datasets and for the UW4-A requirement that simultaneous
probes of different paths see the *same* congestion state on shared links.

:class:`PathSampler` layers per-path aggregation on top: given round-trip
paths (sequences of link ids), it samples probe RTTs and losses for many
paths at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.netsim.congestion import (
    loss_probability_array,
    mean_queue_delay_ms_array,
    queuing_scale_ms,
)
from repro.netsim.diurnal import load_multiplier_array
from repro.netsim.clock import solar_offset_hours
from repro.topology.network import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.forwarding import RoundTripPath

#: Congestion state is redrawn every bucket; within a bucket it is frozen.
#: Five minutes matches the timescale over which Internet congestion is
#: strongly autocorrelated.
BUCKET_SECONDS = 300.0

#: Utilization bounds after modulation.
MIN_UTILIZATION = 0.02
MAX_UTILIZATION = 0.96

#: Fixed per-probe endhost overhead (kernel, ICMP generation), ms.
HOST_OVERHEAD_MS = 0.4

#: Fraction of the path's queuing delay used as the scale of per-probe
#: exponential jitter.
JITTER_FRACTION = 0.35

#: Probability that a probe hits a heavy-tail event — a transient route
#: flap, router CPU stall, or deep-buffer episode.  The paper's §6.2
#: names exactly these ("upgrades to the network infrastructure, path
#: changes, ... congestion") as the variance sources behind its wide
#: confidence intervals.
TAIL_PROB = 0.04

#: Range of the extra delay from a tail event, as a multiple of the
#: probe's nominal RTT.
TAIL_EXTRA_RANGE = (0.5, 4.0)

#: Fraction of links with chronic, load-independent loss (dirty fiber,
#: duplex mismatches, failing line cards — endemic in the 1990s).  Chronic
#: loss keeps a loss signal alive off-peak, which is why the paper sees
#: loss-superior alternates "regardless of the time of day" (section 6.3).
CHRONIC_LOSS_FRACTION = 0.05

#: Chronic loss probability range for affected links.
CHRONIC_LOSS_RANGE = (0.005, 0.03)


def _apply_tail(rtt: float, rng: np.random.Generator) -> float:
    """Occasionally inflate a probe RTT with a heavy-tail event."""
    if rng.random() < TAIL_PROB:
        lo, hi = TAIL_EXTRA_RANGE
        return rtt * (1.0 + rng.uniform(lo, hi))
    return rtt


class NetworkConditions:
    """Per-link dynamic state for one topology."""

    def __init__(self, topo: Topology, *, seed: int = 0) -> None:
        self._topo = topo
        self.seed = seed
        n = len(topo.links)
        self.prop_delay_ms = np.array([l.prop_delay_ms for l in topo.links])
        self.base_utilization = np.array([l.base_utilization for l in topo.links])
        self.queue_scale_ms = np.array([queuing_scale_ms(l) for l in topo.links])
        # A link's diurnal phase follows the mean longitude of its endpoints.
        offsets = np.empty(n)
        for link in topo.links:
            lon_u = topo.routers[link.u].city.lon
            lon_v = topo.routers[link.v].city.lon
            offsets[link.link_id] = solar_offset_hours((lon_u + lon_v) / 2.0)
        self.utc_offsets = offsets
        chronic_rng = np.random.default_rng((seed, 0xC4801C))
        chronic = chronic_rng.random(n) < CHRONIC_LOSS_FRACTION
        lo, hi = CHRONIC_LOSS_RANGE
        self.chronic_loss = np.where(
            chronic, chronic_rng.uniform(lo, hi, size=n), 0.0
        )
        self._bucket_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def n_links(self) -> int:
        """Number of links under simulation."""
        return len(self.prop_delay_ms)

    # -- per-bucket stochastic state ----------------------------------------

    def _bucket_noise(self, bucket: int) -> tuple[np.ndarray, np.ndarray]:
        """(utilization noise, queue burstiness factor) for one time bucket.

        Both arrays have mean approximately 1 and are drawn from a
        generator seeded by (seed, bucket), making them reproducible and
        order-independent.
        """
        cached = self._bucket_cache.get(bucket)
        if cached is not None:
            return cached
        rng = np.random.default_rng((self.seed, 0xB0C4E7, bucket))
        util_noise = rng.lognormal(mean=-0.02, sigma=0.20, size=self.n_links)
        queue_factor = rng.gamma(shape=2.0, scale=0.5, size=self.n_links)
        if len(self._bucket_cache) > 64:
            self._bucket_cache.clear()
        self._bucket_cache[bucket] = (util_noise, queue_factor)
        return util_noise, queue_factor

    # -- public queries ------------------------------------------------------

    def utilization(self, t: float) -> np.ndarray:
        """Per-link utilization at time ``t`` (array of length n_links)."""
        bucket = int(t // BUCKET_SECONDS)
        util_noise, _ = self._bucket_noise(bucket)
        mult = load_multiplier_array(t, self.utc_offsets)
        return np.clip(
            self.base_utilization * mult * util_noise,
            MIN_UTILIZATION,
            MAX_UTILIZATION,
        )

    def queue_delay_ms(self, t: float) -> np.ndarray:
        """Per-link instantaneous queuing delay at time ``t``, in ms."""
        bucket = int(t // BUCKET_SECONDS)
        _, queue_factor = self._bucket_noise(bucket)
        mean_q = mean_queue_delay_ms_array(self.utilization(t), self.queue_scale_ms)
        return mean_q * queue_factor

    def loss_probability(self, t: float) -> np.ndarray:
        """Per-link loss probability at time ``t``.

        Combines congestion loss (utilization-driven) with each link's
        chronic loss floor, assuming independence.
        """
        congestion = loss_probability_array(self.utilization(t))
        return 1.0 - (1.0 - congestion) * (1.0 - self.chronic_loss)

    def link_state(self, link_id: int, t: float) -> dict[str, float]:
        """Convenience single-link snapshot (utilization, queue, loss)."""
        return {
            "utilization": float(self.utilization(t)[link_id]),
            "queue_delay_ms": float(self.queue_delay_ms(t)[link_id]),
            "loss_probability": float(self.loss_probability(t)[link_id]),
        }


@dataclass(frozen=True, slots=True)
class SamplerView:
    """Frozen per-bucket congestion state for a :class:`PathSampler`.

    Collection campaigns probe hundreds of thousands of times; computing
    per-link state per probe would dominate runtime.  A view captures the
    per-path queuing sums and loss probabilities of one time bucket so
    individual probes reduce to a couple of scalar random draws.

    Attributes:
        t: Time the view was taken.
        prop: Per-path round-trip propagation delay (ms).
        qsum: Per-path total queuing delay (ms) in this bucket.
        ploss: Per-path round-trip loss probability in this bucket.
    """

    t: float
    prop: np.ndarray
    qsum: np.ndarray
    ploss: np.ndarray

    def probe_pair(self, index: int, rng: np.random.Generator) -> float:
        """One probe along path ``index``; returns RTT in ms or NaN if lost."""
        if rng.random() < self.ploss[index]:
            return float("nan")
        q = self.qsum[index]
        jitter = rng.exponential() * (JITTER_FRACTION * q + HOST_OVERHEAD_MS)
        rtt = float(self.prop[index] + q + jitter + HOST_OVERHEAD_MS)
        return _apply_tail(rtt, rng)


@dataclass(frozen=True, slots=True)
class ProbeBatch:
    """Result of probing a set of paths once each.

    Attributes:
        rtt_ms: Round-trip times; NaN where the probe was lost.
        lost: Boolean mask of lost probes.
    """

    rtt_ms: np.ndarray
    lost: np.ndarray


class PathSampler:
    """Samples probe RTTs and losses over a fixed set of round-trip paths.

    The constructor flattens each path's link ids into a CSR-style layout
    so that per-probe sampling is a handful of vectorized operations
    regardless of how many paths are probed together.
    """

    def __init__(
        self, conditions: NetworkConditions, paths: "list[RoundTripPath]"
    ) -> None:
        self._cond = conditions
        self.paths = list(paths)
        flat: list[int] = []
        offsets: list[int] = [0]
        for rt in self.paths:
            flat.extend(rt.link_ids)
            offsets.append(len(flat))
        self._flat = np.array(flat, dtype=np.int64)
        self._offsets = np.array(offsets, dtype=np.int64)
        self._prop = np.array(
            [rt.rtt_prop_ms for rt in self.paths]
        )

    def __len__(self) -> int:
        return len(self.paths)

    def _path_sums(self, per_link: np.ndarray) -> np.ndarray:
        """Sum a per-link quantity over each path's links."""
        if len(self._flat) == 0:
            return np.zeros(len(self.paths))
        gathered = per_link[self._flat]
        return np.add.reduceat(gathered, self._offsets[:-1])

    def queue_delay_sums(self, t: float) -> np.ndarray:
        """Per-path total queuing delay (both directions) at time ``t``."""
        return self._path_sums(self._cond.queue_delay_ms(t))

    def loss_probabilities(self, t: float) -> np.ndarray:
        """Per-path round-trip loss probability at time ``t``.

        Per-link losses are independent; a probe survives only if it
        survives every link in both directions.
        """
        per_link = self._cond.loss_probability(t)
        log_survive = self._path_sums(np.log1p(-per_link))
        return 1.0 - np.exp(log_survive)

    def prop_delays(self) -> np.ndarray:
        """Per-path round-trip propagation delay (static)."""
        return self._prop.copy()

    def view(self, t: float) -> SamplerView:
        """Capture this bucket's congestion state for fast scalar probing."""
        return SamplerView(
            t=t,
            prop=self._prop,
            qsum=self.queue_delay_sums(t),
            ploss=self.loss_probabilities(t),
        )

    def probe(
        self,
        t: float,
        rng: np.random.Generator,
        indices: np.ndarray | None = None,
    ) -> ProbeBatch:
        """Send one probe along each selected path at time ``t``.

        Args:
            t: Simulation time of the probes.
            rng: Generator for per-probe randomness (jitter, loss draws).
            indices: Path indices to probe; all paths when None.

        Returns:
            A :class:`ProbeBatch` aligned with ``indices``.
        """
        qsum = self.queue_delay_sums(t)
        ploss = self.loss_probabilities(t)
        if indices is not None:
            qsum = qsum[indices]
            ploss = ploss[indices]
            prop = self._prop[indices]
        else:
            prop = self._prop
        jitter = rng.exponential(scale=1.0, size=len(prop)) * (
            JITTER_FRACTION * qsum + HOST_OVERHEAD_MS
        )
        rtt = prop + qsum + jitter + HOST_OVERHEAD_MS
        tail = rng.random(len(prop)) < TAIL_PROB
        lo, hi = TAIL_EXTRA_RANGE
        rtt = np.where(tail, rtt * (1.0 + rng.uniform(lo, hi, size=len(prop))), rtt)
        lost = rng.random(len(prop)) < ploss
        rtt = np.where(lost, np.nan, rtt)
        return ProbeBatch(rtt_ms=rtt, lost=lost)

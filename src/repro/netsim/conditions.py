"""Time-varying network conditions and vectorized path sampling.

:class:`NetworkConditions` owns per-link state as flat numpy arrays and
answers "what is every link's utilization / queuing delay / loss
probability at time *t*?".  Conditions are **deterministic in (seed, t)**:
stochastic variation is generated from counter-based draws keyed on the
time bucket, so any query order yields identical results — essential for
reproducible datasets and for the UW4-A requirement that simultaneous
probes of different paths see the *same* congestion state on shared links.

:class:`PathSampler` layers per-path aggregation on top: given round-trip
paths (sequences of link ids), it samples probe RTTs and losses for many
paths at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.netsim.congestion import (
    loss_probability_array,
    mean_queue_delay_ms_array,
    queuing_scale_ms,
)
from repro.netsim.diurnal import load_multiplier_array
from repro.netsim.clock import solar_offset_hours
from repro.topology.network import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.forwarding import RoundTripPath

#: Congestion state is redrawn every bucket; within a bucket it is frozen.
#: Five minutes matches the timescale over which Internet congestion is
#: strongly autocorrelated.
BUCKET_SECONDS = 300.0

#: Utilization bounds after modulation.
MIN_UTILIZATION = 0.02
MAX_UTILIZATION = 0.96

#: Fixed per-probe endhost overhead (kernel, ICMP generation), ms.
HOST_OVERHEAD_MS = 0.4

#: Fraction of the path's queuing delay used as the scale of per-probe
#: exponential jitter.
JITTER_FRACTION = 0.35

#: Probability that a probe hits a heavy-tail event — a transient route
#: flap, router CPU stall, or deep-buffer episode.  The paper's §6.2
#: names exactly these ("upgrades to the network infrastructure, path
#: changes, ... congestion") as the variance sources behind its wide
#: confidence intervals.
TAIL_PROB = 0.04

#: Range of the extra delay from a tail event, as a multiple of the
#: probe's nominal RTT.
TAIL_EXTRA_RANGE = (0.5, 4.0)

#: Fraction of links with chronic, load-independent loss (dirty fiber,
#: duplex mismatches, failing line cards — endemic in the 1990s).  Chronic
#: loss keeps a loss signal alive off-peak, which is why the paper sees
#: loss-superior alternates "regardless of the time of day" (section 6.3).
CHRONIC_LOSS_FRACTION = 0.05

#: Chronic loss probability range for affected links.
CHRONIC_LOSS_RANGE = (0.005, 0.03)


#: Uniform draws consumed per probe, in order: loss, jitter, tail flag,
#: tail magnitude.  Every probe consumes exactly this many draws whether
#: or not it is lost or hits a tail event, so a batched ``random((n, 4))``
#: block consumes the identical generator stream as ``n`` scalar probes —
#: the invariant behind the batched/scalar differential tests.
DRAWS_PER_PROBE = 4


# hotpath
def _sample_probe_rtts(
    prop: np.ndarray,
    qsum: np.ndarray,
    ploss: np.ndarray,
    u: np.ndarray,
) -> np.ndarray:
    """Turn per-probe path state and uniform draws into RTTs (NaN = lost).

    ``u`` has shape (n, DRAWS_PER_PROBE).  The jitter draw goes through
    the exponential inverse CDF rather than the generator's ziggurat
    sampler so the draw count per probe is fixed.
    """
    scale = JITTER_FRACTION * qsum + HOST_OVERHEAD_MS
    jitter = -np.log1p(-u[:, 1]) * scale
    rtt = prop + qsum + jitter + HOST_OVERHEAD_MS
    lo, hi = TAIL_EXTRA_RANGE
    tail_mult = 1.0 + (lo + (hi - lo) * u[:, 3])
    rtt = np.where(u[:, 2] < TAIL_PROB, rtt * tail_mult, rtt)
    return np.where(u[:, 0] < ploss, np.nan, rtt)


class NetworkConditions:
    """Per-link dynamic state for one topology."""

    def __init__(self, topo: Topology, *, seed: int = 0) -> None:
        self._topo = topo
        self.seed = seed
        n = len(topo.links)
        self.prop_delay_ms = np.array([l.prop_delay_ms for l in topo.links])
        self.base_utilization = np.array([l.base_utilization for l in topo.links])
        self.queue_scale_ms = np.array([queuing_scale_ms(l) for l in topo.links])
        # A link's diurnal phase follows the mean longitude of its endpoints.
        offsets = np.empty(n)
        for link in topo.links:
            lon_u = topo.routers[link.u].city.lon
            lon_v = topo.routers[link.v].city.lon
            offsets[link.link_id] = solar_offset_hours((lon_u + lon_v) / 2.0)
        self.utc_offsets = offsets
        chronic_rng = np.random.default_rng((seed, 0xC4801C))
        chronic = chronic_rng.random(n) < CHRONIC_LOSS_FRACTION
        lo, hi = CHRONIC_LOSS_RANGE
        self.chronic_loss = np.where(
            chronic, chronic_rng.uniform(lo, hi, size=n), 0.0
        )
        self._bucket_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def n_links(self) -> int:
        """Number of links under simulation."""
        return len(self.prop_delay_ms)

    # -- per-bucket stochastic state ----------------------------------------

    def _bucket_noise(self, bucket: int) -> tuple[np.ndarray, np.ndarray]:
        """(utilization noise, queue burstiness factor) for one time bucket.

        Both arrays have mean approximately 1 and are drawn from a
        generator seeded by (seed, bucket), making them reproducible and
        order-independent.
        """
        cached = self._bucket_cache.get(bucket)
        if cached is not None:
            return cached
        rng = np.random.default_rng((self.seed, 0xB0C4E7, bucket))
        util_noise = rng.lognormal(mean=-0.02, sigma=0.20, size=self.n_links)
        queue_factor = rng.gamma(shape=2.0, scale=0.5, size=self.n_links)
        if len(self._bucket_cache) > 64:
            self._bucket_cache.clear()
        self._bucket_cache[bucket] = (util_noise, queue_factor)
        return util_noise, queue_factor

    # -- public queries ------------------------------------------------------

    def utilization(self, t: float) -> np.ndarray:
        """Per-link utilization at time ``t`` (array of length n_links)."""
        bucket = int(t // BUCKET_SECONDS)
        util_noise, _ = self._bucket_noise(bucket)
        mult = load_multiplier_array(t, self.utc_offsets)
        return np.clip(
            self.base_utilization * mult * util_noise,
            MIN_UTILIZATION,
            MAX_UTILIZATION,
        )

    def queue_delay_ms(self, t: float) -> np.ndarray:
        """Per-link instantaneous queuing delay at time ``t``, in ms."""
        bucket = int(t // BUCKET_SECONDS)
        _, queue_factor = self._bucket_noise(bucket)
        mean_q = mean_queue_delay_ms_array(self.utilization(t), self.queue_scale_ms)
        return mean_q * queue_factor

    def loss_probability(self, t: float) -> np.ndarray:
        """Per-link loss probability at time ``t``.

        Combines congestion loss (utilization-driven) with each link's
        chronic loss floor, assuming independence.
        """
        congestion = loss_probability_array(self.utilization(t))
        return 1.0 - (1.0 - congestion) * (1.0 - self.chronic_loss)

    def link_state(self, link_id: int, t: float) -> dict[str, float]:
        """Convenience single-link snapshot (utilization, queue, loss)."""
        return {
            "utilization": float(self.utilization(t)[link_id]),
            "queue_delay_ms": float(self.queue_delay_ms(t)[link_id]),
            "loss_probability": float(self.loss_probability(t)[link_id]),
        }


@dataclass(frozen=True, slots=True)
class SamplerView:
    """Frozen per-bucket congestion state for a :class:`PathSampler`.

    Collection campaigns probe hundreds of thousands of times; computing
    per-link state per probe would dominate runtime.  A view captures the
    per-path queuing sums and loss probabilities of one time bucket so
    individual probes reduce to a couple of scalar random draws.

    Attributes:
        t: Time the view was taken.
        prop: Per-path round-trip propagation delay (ms).
        qsum: Per-path total queuing delay (ms) in this bucket.
        ploss: Per-path round-trip loss probability in this bucket.
    """

    t: float
    prop: np.ndarray
    qsum: np.ndarray
    ploss: np.ndarray

    def probe_pair(self, index: int, rng: np.random.Generator) -> float:
        """One probe along path ``index``; returns RTT in ms or NaN if lost.

        Consumes exactly :data:`DRAWS_PER_PROBE` uniforms, making a loop
        of scalar probes stream-equivalent to one :meth:`probe_block`.
        """
        u = rng.random(DRAWS_PER_PROBE).reshape(1, DRAWS_PER_PROBE)
        rtt = _sample_probe_rtts(
            self.prop[index : index + 1],
            self.qsum[index : index + 1],
            self.ploss[index : index + 1],
            u,
        )
        return float(rtt[0])

    # hotpath
    def probe_block(
        self, rng: np.random.Generator, indices: np.ndarray | None = None
    ) -> "ProbeBatch":
        """Probe every selected path once, in one vectorized pass.

        Byte-identical to calling :meth:`probe_pair` per index in order
        with the same generator.
        """
        if indices is None:
            prop, qsum, ploss = self.prop, self.qsum, self.ploss
        else:
            idx = np.asarray(indices, dtype=np.int64)
            prop = self.prop[idx]
            qsum = self.qsum[idx]
            ploss = self.ploss[idx]
        u = rng.random((len(prop), DRAWS_PER_PROBE))
        rtt = _sample_probe_rtts(prop, qsum, ploss, u)
        return ProbeBatch(rtt_ms=rtt, lost=np.isnan(rtt))


@dataclass(frozen=True, slots=True)
class ProbeBatch:
    """Result of probing a set of paths once each.

    Attributes:
        rtt_ms: Round-trip times; NaN where the probe was lost.
        lost: Boolean mask of lost probes.
    """

    rtt_ms: np.ndarray
    lost: np.ndarray


class BucketProbeMixin:
    """Bucket-frozen probing fast path shared by path samplers.

    Subclasses provide ``view(t)`` (exact-time congestion state) and
    ``__len__``; the mixin adds a bounded per-bucket view cache plus the
    scalar and batched probe entry points built on it.  Congestion is
    already frozen per :data:`BUCKET_SECONDS` bucket, so evaluating each
    bucket's view once (at mid-bucket, where the collector has always
    taken it) and reusing it turns per-probe cost into a dict lookup and
    a few vectorized draws.
    """

    _MAX_CACHED_VIEWS = 256

    def bucket_view(self, t: float) -> SamplerView:
        """The cached congestion view of ``t``'s bucket (mid-bucket state)."""
        bucket = int(t // BUCKET_SECONDS)
        cache: dict[int, SamplerView] | None = getattr(self, "_bucket_views", None)
        if cache is None:
            cache = {}
            self._bucket_views = cache
        view = cache.get(bucket)
        if view is None:
            if len(cache) > self._MAX_CACHED_VIEWS:
                cache.clear()
            view = self.view((bucket + 0.5) * BUCKET_SECONDS)
            cache[bucket] = view
        return view

    def probe(
        self,
        t: float,
        rng: np.random.Generator,
        indices: np.ndarray | None = None,
    ) -> ProbeBatch:
        """Send one probe along each selected path at time ``t``.

        Args:
            t: Simulation time of the probes (selects the bucket view).
            rng: Generator for per-probe randomness (loss, jitter, tails).
            indices: Path indices to probe; all paths when None.

        Returns:
            A :class:`ProbeBatch` aligned with ``indices``.
        """
        return self.bucket_view(t).probe_block(rng, indices)

    # hotpath
    def gather_bucket_state(
        self, ts: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-probe (prop, qsum, ploss) taken from each time's bucket view.

        ``ts`` and ``indices`` align element-wise; views are computed once
        per distinct bucket.  Consumes no randomness.
        """
        ts = np.asarray(ts, dtype=np.float64)
        idx = np.asarray(indices, dtype=np.int64)
        if ts.shape != idx.shape:
            raise ValueError("ts and indices must align")
        n = len(ts)
        prop = np.empty(n)
        qsum = np.empty(n)
        ploss = np.empty(n)
        buckets = (ts // BUCKET_SECONDS).astype(np.int64)
        for bucket in np.unique(buckets):
            sel = buckets == bucket
            view = self.bucket_view(float(bucket) * BUCKET_SECONDS)
            pidx = idx[sel]
            prop[sel] = view.prop[pidx]
            qsum[sel] = view.qsum[pidx]
            ploss[sel] = view.ploss[pidx]
        return prop, qsum, ploss

    # hotpath
    def probe_batch(
        self,
        ts: np.ndarray,
        rng: np.random.Generator,
        indices: np.ndarray,
    ) -> np.ndarray:
        """Generate a whole episode of probes in one numpy pass.

        Each probe ``k`` samples path ``indices[k]`` under the bucket view
        of ``ts[k]``.  Byte-identical to the scalar reference
        ``[self.bucket_view(t).probe_pair(i, rng) for t, i in zip(ts, indices)]``
        with the same generator.

        Returns:
            RTTs in ms aligned with the inputs; NaN marks lost probes.
        """
        prop, qsum, ploss = self.gather_bucket_state(ts, indices)
        u = rng.random((len(prop), DRAWS_PER_PROBE))
        return _sample_probe_rtts(prop, qsum, ploss, u)


class PathSampler(BucketProbeMixin):
    """Samples probe RTTs and losses over a fixed set of round-trip paths.

    The constructor flattens each path's link ids into a CSR-style layout
    so that per-probe sampling is a handful of vectorized operations
    regardless of how many paths are probed together.
    """

    def __init__(
        self, conditions: NetworkConditions, paths: "list[RoundTripPath]"
    ) -> None:
        self._cond = conditions
        self.paths = list(paths)
        flat: list[int] = []
        offsets: list[int] = [0]
        for rt in self.paths:
            flat.extend(rt.link_ids)
            offsets.append(len(flat))
        self._flat = np.array(flat, dtype=np.int64)
        self._offsets = np.array(offsets, dtype=np.int64)
        self._prop = np.array(
            [rt.rtt_prop_ms for rt in self.paths]
        )

    def __len__(self) -> int:
        return len(self.paths)

    # hotpath
    def _path_sums(self, per_link: np.ndarray) -> np.ndarray:
        """Sum a per-link quantity over each path's links."""
        if len(self._flat) == 0:
            return np.zeros(len(self.paths))
        gathered = per_link[self._flat]
        return np.add.reduceat(gathered, self._offsets[:-1])

    def queue_delay_sums(self, t: float) -> np.ndarray:
        """Per-path total queuing delay (both directions) at time ``t``."""
        return self._path_sums(self._cond.queue_delay_ms(t))

    def loss_probabilities(self, t: float) -> np.ndarray:
        """Per-path round-trip loss probability at time ``t``.

        Per-link losses are independent; a probe survives only if it
        survives every link in both directions.
        """
        per_link = self._cond.loss_probability(t)
        log_survive = self._path_sums(np.log1p(-per_link))
        return 1.0 - np.exp(log_survive)

    def prop_delays(self) -> np.ndarray:
        """Per-path round-trip propagation delay (static)."""
        return self._prop.copy()

    def view(self, t: float) -> SamplerView:
        """Capture the exact-time congestion state for all paths."""
        return SamplerView(
            t=t,
            prop=self._prop,
            qsum=self.queue_delay_sums(t),
            ploss=self.loss_probabilities(t),
        )

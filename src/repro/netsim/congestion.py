"""Queuing-delay and loss models driven by link utilization.

The mapping from utilization to delay follows the M/M/1 mean-queue shape
``u / (1 - u)`` scaled by a per-link service-time constant, capped to
reflect finite router buffers (beyond the cap, packets are dropped rather
than queued).  Loss turns on above a utilization knee and grows
quadratically, which is a reasonable stand-in for drop-tail behaviour
under bursty TCP cross-traffic.
"""

from __future__ import annotations

import numpy as np

from repro.topology.links import Link, LinkKind

#: Burstiness factor by link kind: multiplies packet serialization time to
#: obtain the queuing-delay scale.  Public exchange fabrics queued deeply
#: in this era; access links had shallow buffers.
BURST_FACTOR: dict[LinkKind, float] = {
    LinkKind.BACKBONE: 6.0,
    LinkKind.METRO: 4.0,
    LinkKind.EXCHANGE: 20.0,
    LinkKind.ACCESS: 3.0,
}

#: Cap on the ``u/(1-u)`` occupancy term (finite buffers).
MAX_OCCUPANCY = 12.0

#: Utilization above which loss begins.
LOSS_KNEE = 0.78

#: Loss probability as utilization approaches 1.
LOSS_AT_SATURATION = 0.06

#: Hard ceiling on any single link's loss probability.
MAX_LINK_LOSS = 0.12


def queuing_scale_ms(link: Link) -> float:
    """Per-link queuing-delay scale (ms per unit of occupancy)."""
    return link.transmission_delay_ms * BURST_FACTOR[link.kind]


def mean_queue_delay_ms(utilization: float, scale_ms: float) -> float:
    """Mean queuing delay at the given utilization.

    Args:
        utilization: Link utilization in [0, 1).
        scale_ms: Output of :func:`queuing_scale_ms`.
    """
    u = min(max(utilization, 0.0), 0.999)
    occupancy = min(u / (1.0 - u), MAX_OCCUPANCY)
    return scale_ms * occupancy


def loss_probability(utilization: float) -> float:
    """Loss probability of a single link at the given utilization."""
    u = min(max(utilization, 0.0), 1.0)
    if u <= LOSS_KNEE:
        return 0.0
    frac = (u - LOSS_KNEE) / (1.0 - LOSS_KNEE)
    return min(LOSS_AT_SATURATION * frac * frac, MAX_LINK_LOSS)


def mean_queue_delay_ms_array(utilization: np.ndarray, scale_ms: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mean_queue_delay_ms`."""
    u = np.clip(utilization, 0.0, 0.999)
    occupancy = np.minimum(u / (1.0 - u), MAX_OCCUPANCY)
    return scale_ms * occupancy


def loss_probability_array(utilization: np.ndarray) -> np.ndarray:
    """Vectorized :func:`loss_probability`."""
    u = np.clip(utilization, 0.0, 1.0)
    frac = np.clip((u - LOSS_KNEE) / (1.0 - LOSS_KNEE), 0.0, None)
    return np.minimum(LOSS_AT_SATURATION * frac * frac, MAX_LINK_LOSS)

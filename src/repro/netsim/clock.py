"""Simulation calendar and time utilities.

The simulator measures time in seconds from a fixed origin defined to be a
**Monday 00:00 UTC**.  The paper bins data by Pacific Standard Time (its
hosts were coordinated from Seattle), so conversion helpers for arbitrary
fixed offsets are provided, plus local solar time by longitude, which
drives each link's diurnal load phase.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Offset of Pacific Standard Time from UTC, in hours.
PST_UTC_OFFSET_HOURS = -8.0


def day_of_week(t: float) -> int:
    """Day index for simulation time ``t`` (0=Monday ... 6=Sunday)."""
    return int(t // SECONDS_PER_DAY) % 7


def is_weekend(t: float, utc_offset_hours: float = 0.0) -> bool:
    """Whether ``t`` falls on Saturday/Sunday in the given fixed offset."""
    local = t + utc_offset_hours * SECONDS_PER_HOUR
    return day_of_week(local) >= 5


def hour_of_day(t: float, utc_offset_hours: float = 0.0) -> float:
    """Local hour in [0, 24) at simulation time ``t``."""
    local = t + utc_offset_hours * SECONDS_PER_HOUR
    return (local % SECONDS_PER_DAY) / SECONDS_PER_HOUR


def solar_offset_hours(longitude_deg: float) -> float:
    """Approximate local-time offset from UTC implied by longitude.

    Each 15 degrees of longitude is one hour; this is how the simulator
    decides when a given link's region is in its working day.
    """
    return longitude_deg / 15.0


def pst_hour(t: float) -> float:
    """Hour of day in PST — the paper's Figures 9/10 binning."""
    return hour_of_day(t, PST_UTC_OFFSET_HOURS)


def pst_is_weekend(t: float) -> bool:
    """Weekend test in PST."""
    return is_weekend(t, PST_UTC_OFFSET_HOURS)


def format_sim_time(t: float) -> str:
    """Human-readable rendering, e.g. ``"day 3 (Thu) 14:05 UTC"``."""
    names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    day = int(t // SECONDS_PER_DAY)
    rem = t % SECONDS_PER_DAY
    hh = int(rem // SECONDS_PER_HOUR)
    mm = int((rem % SECONDS_PER_HOUR) // SECONDS_PER_MINUTE)
    return f"day {day} ({names[day % 7]}) {hh:02d}:{mm:02d} UTC"

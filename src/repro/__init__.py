"""repro: reproduction of "The End-to-End Effects of Internet Path
Selection" (Savage, Collins, Hoffman, Snell, Anderson - SIGCOMM 1999).

The package is organized bottom-up:

* :mod:`repro.topology` - a seeded model of the late-1990s Internet:
  geography, autonomous systems, routers, links, measurement hosts.
* :mod:`repro.routing` - intra-AS IGP and inter-AS BGP policy routing
  (valley-free export, local-pref, early-exit), plus host-to-host path
  resolution and a policy-free optimal baseline.
* :mod:`repro.netsim` - time-varying conditions: diurnal load, queuing
  delay, loss; vectorized path sampling.
* :mod:`repro.measurement` - traceroute / TCP-transfer measurement tools,
  request schedulers, ICMP rate limiting and its detection, and the
  campaign collector.
* :mod:`repro.datasets` - dataset containers, the per-paper-dataset
  builders (D2, N2, UW1, UW3, UW4-A/B and the -NA subsets), JSONL I/O.
* :mod:`repro.core` - the paper's contribution: synthetic alternate-path
  construction and every analysis in Sections 5-7.
* :mod:`repro.experiments` - regeneration of Tables 1-3 and Figures 1-16.
* :mod:`repro.obs` - zero-dependency run-wide tracing and metrics.
* :mod:`repro.api` - the :class:`~repro.api.ReproSession` facade over
  the whole pipeline.

Quick start::

    from repro import ReproSession

    session = ReproSession(seed=1999, scale=0.2)
    session.build(only=["UW3"])
    result = session.analyze("UW3", "rtt")
    print(f"{result.fraction_improved():.0%} of pairs have a better alternate")
"""

__version__ = "1.0.0"

from repro.api import ReproSession
from repro.core import Metric, analyze, analyze_bandwidth
from repro.datasets import BuildConfig, Dataset

__all__ = [
    "BuildConfig",
    "Dataset",
    "Metric",
    "ReproSession",
    "__version__",
    "analyze",
    "analyze_bandwidth",
]


def __getattr__(name: str) -> object:
    if name == "build_all":
        # Removed deprecated alias: point old callers at the replacements
        # instead of a bare AttributeError.
        raise AttributeError(
            "repro.build_all was deprecated and is no longer exported; "
            "use repro.ReproSession(...).build() or repro.datasets.build_all"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

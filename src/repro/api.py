"""The stable high-level facade: :class:`ReproSession`.

One object covers the common workflow end to end::

    from repro import ReproSession

    session = ReproSession(seed=1999, scale=0.1)
    datasets = session.build(only=["UW3"])      # provision (cached)
    result = session.analyze("UW3")             # alternate-path analysis
    artifacts = session.reproduce(only={"table1"})
    print(session.report.summary())             # last build's report

With ``trace=True`` every call runs under one session-wide capture
(:mod:`repro.obs`), so spans from build/analyze/reproduce accumulate
into a single :class:`~repro.obs.artifact.RunTrace`::

    session = ReproSession(seed=1999, scale=0.05, trace=True)
    session.build()
    session.save_trace("out.json")              # + metrics.json sidecar

The facade wraps :func:`repro.experiments.runner.provision_datasets`,
:func:`repro.core.analyze`, and :func:`repro.experiments.reproduce.run_all`;
those remain public for callers that need the full keyword surface.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

from contextlib import contextmanager, nullcontext

from repro.obs import runtime as obs
from repro.obs.artifact import RunTrace, write_run_trace
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer

if TYPE_CHECKING:
    from repro.core import AnalysisResult, Metric
    from repro.datasets import BuildConfig, BuildReport, Dataset


class ReproSession:
    """A seeded, scaled reproduction session with optional tracing.

    Args:
        seed: Master seed; every derived artifact is deterministic in it.
        scale: Fraction of the paper's 7-day collection to simulate.
        jobs: Dataset build worker processes (default: one per CPU).
        trace: Accumulate spans/metrics across all calls on this session;
            read them back with :meth:`trace` or :meth:`save_trace`.
        use_cache: Read/write the on-disk dataset cache.
    """

    def __init__(
        self,
        seed: int = 1999,
        scale: float = 1.0,
        *,
        jobs: int | None = None,
        trace: bool = False,
        use_cache: bool = True,
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.jobs = jobs
        self.use_cache = use_cache
        self._tracing = trace
        self._tracer = Tracer() if trace else None
        self._metrics = Metrics() if trace else None
        self._datasets: dict[str, "Dataset"] = {}
        self._report: "BuildReport | None" = None

    def __repr__(self) -> str:
        return (
            f"ReproSession(seed={self.seed}, scale={self.scale}, "
            f"jobs={self.jobs}, trace={self._tracing}, "
            f"use_cache={self.use_cache})"
        )

    @property
    def config(self) -> "BuildConfig":
        """The session's :class:`~repro.datasets.BuildConfig`."""
        from repro.datasets import BuildConfig

        return BuildConfig(seed=self.seed, scale=self.scale)

    @property
    def report(self) -> "BuildReport | None":
        """The most recent build's report, or None before any build."""
        return self._report

    @contextmanager
    def _observed(self) -> Iterator[None]:
        """Run a method under the session's capture (no-op when untraced)."""
        if self._tracer is None or self._metrics is None:
            ctx = nullcontext()
        else:
            ctx = obs.activate(self._tracer, self._metrics)
        with ctx:
            yield

    # -- pipeline stages ---------------------------------------------------

    def build(
        self,
        only: Sequence[str] | None = None,
        **kwargs,
    ) -> dict[str, "Dataset"]:
        """Provision Table 1 datasets (cached); returns name -> Dataset.

        Args:
            only: Dataset names to provision (default: all of Table 1);
                whole build groups are the unit, so siblings come along.
            **kwargs: Forwarded to
                :func:`repro.experiments.runner.provision_datasets`
                (``fault_plan``, ``build_timeout``, ``keep_going``, ...).
        """
        from repro.datasets import BuildReport
        from repro.experiments.runner import provision_datasets

        report = kwargs.pop("report", None) or BuildReport()
        with self._observed():
            datasets = provision_datasets(
                self.config,
                use_cache=kwargs.pop("use_cache", self.use_cache),
                jobs=kwargs.pop("jobs", self.jobs),
                report=report,
                only=only,
                **kwargs,
            )
        self._report = report
        self._datasets.update(datasets)
        return datasets

    def dataset(self, name: str) -> "Dataset":
        """One named dataset, building its group on first access."""
        if name not in self._datasets:
            self.build(only=[name])
        return self._datasets[name]

    def analyze(
        self,
        dataset: "str | Dataset" = "UW3",
        metric: "Metric | str" = "rtt",
        *,
        min_samples: int | None = None,
        **kwargs,
    ) -> "AnalysisResult":
        """Alternate-path analysis of one dataset under one metric.

        Args:
            dataset: A Table 1 dataset name (built on demand) or an
                already-built :class:`~repro.datasets.Dataset`.
            metric: A :class:`~repro.core.Metric` or its string value.
            min_samples: Per-pair sample floor; defaults to the paper's
                30 scaled by the session's ``scale`` (floor 4).
            **kwargs: Forwarded to :func:`repro.core.analyze`.
        """
        from repro.core import Metric, analyze

        target = self.dataset(dataset) if isinstance(dataset, str) else dataset
        if min_samples is None:
            min_samples = max(4, int(round(30 * self.scale)))
        with self._observed():
            return analyze(
                target, Metric(metric), min_samples=min_samples, **kwargs
            )

    def reproduce(self, only: "set[str] | None" = None, **kwargs) -> dict:
        """Regenerate the paper's tables/figures; returns name -> artifact.

        Args:
            only: Artifact names (``table1`` ... ``figure16``) to run;
                default all.
            **kwargs: Forwarded to
                :func:`repro.experiments.reproduce.run_all`.
        """
        from repro.experiments.reproduce import run_all
        from repro.experiments.runner import last_build_report

        with self._observed():
            artifacts = run_all(
                self.scale,
                self.seed,
                only,
                jobs=kwargs.pop("jobs", self.jobs),
                **kwargs,
            )
        self._report = last_build_report()
        return artifacts

    def whatif(self, plan: str = "", *, n_hosts: int = 12, **kwargs):
        """Run a network-failure scenario; returns (dataset, report).

        Args:
            plan: A scenario spec string (clauses joined with ``;``, e.g.
                ``"link-down:6-11:at=600:for=900"``) or an already-parsed
                :class:`~repro.scenario.plan.ScenarioPlan`.  Empty = a
                plain measurement run on a calm network.
            n_hosts: Measurement host pool size.
            **kwargs: Forwarded to
                :class:`~repro.scenario.run.ScenarioRun`
                (``mean_interval_s``, ``trailing_buckets``,
                ``reconverge``).

        Raises:
            ScenarioPlanError: for a malformed spec string.
        """
        from repro.scenario import ScenarioPlan, ScenarioRun

        parsed = ScenarioPlan.parse(plan) if isinstance(plan, str) else plan
        with self._observed():
            run = ScenarioRun(
                parsed, seed=self.seed, n_hosts=n_hosts, **kwargs
            )
            return run.execute()

    def serve(
        self,
        strategies: Sequence[str] | None = None,
        *,
        plan: str = "",
        n_hosts: int = 12,
        n_pairs: int = 6,
        **kwargs,
    ):
        """Run the online Detour service; returns an EvaluationReport.

        Every strategy replays the identical environment (topology,
        scenario timeline, probe draws, request schedule), so the
        resulting :class:`~repro.service.evaluate.EvaluationReport`
        table compares them — and the paper's oracle alternates —
        apples to apples.

        Args:
            strategies: Strategy names to evaluate in order (default:
                every registered strategy; see
                :func:`repro.service.strategy_names`).
            plan: Scenario spec string or parsed
                :class:`~repro.scenario.plan.ScenarioPlan` driving
                failover events (empty = calm network).
            n_hosts: Measurement host pool size.
            n_pairs: Number of (src, dst) client pairs to serve.
            **kwargs: Forwarded to
                :class:`~repro.service.DetourService` (``duration_s``,
                ``probe_interval_s``, ``relays_per_pair``, ...).

        Raises:
            ScenarioPlanError: for a malformed spec string.
            StrategyError: for an unknown strategy name.
            ServiceError: for invalid service parameters.
        """
        from repro.scenario import ScenarioPlan
        from repro.service import DetourService, evaluate_strategies

        parsed = ScenarioPlan.parse(plan) if isinstance(plan, str) else plan
        with self._observed():
            service = DetourService(
                parsed,
                seed=self.seed,
                n_hosts=n_hosts,
                n_pairs=n_pairs,
                **kwargs,
            )
            return evaluate_strategies(
                service,
                tuple(strategies) if strategies is not None else None,
            )

    # -- observability -----------------------------------------------------

    @property
    def tracing(self) -> bool:
        """Whether this session records spans and metrics."""
        return self._tracing

    def trace(self) -> RunTrace:
        """The session's capture so far, frozen into a :class:`RunTrace`.

        Raises:
            ValueError: the session was created with ``trace=False``.
        """
        if self._tracer is None or self._metrics is None:
            raise ValueError(
                "session was created with trace=False; "
                "use ReproSession(..., trace=True)"
            )
        return RunTrace(
            meta=self._meta(),
            spans=self._tracer.export(),
            metrics=self._metrics.export(),
        )

    def save_trace(self, path: "str | Path") -> "tuple[Path, Path]":
        """Write the RunTrace JSON plus its ``metrics.json`` sidecar.

        Returns (trace_path, metrics_path).

        Raises:
            ValueError: the session was created with ``trace=False``.
        """
        if self._tracer is None or self._metrics is None:
            raise ValueError(
                "session was created with trace=False; "
                "use ReproSession(..., trace=True)"
            )
        cap = obs.Capture(self._tracer, self._metrics)
        return write_run_trace(cap, self._meta(), path)

    def _meta(self) -> dict:
        return {
            "command": "session",
            "seed": self.seed,
            "scale": self.scale,
            "jobs": self.jobs,
        }

"""repro.quality: determinism-and-invariant static analysis.

An AST-based checker that enforces the coding discipline the repo's
bit-identity promise rests on: derived ``default_rng((seed, tag))``
streams, no wall-clock or set-ordering leakage into results, fail-loud
exception handling.  See docs/STATIC_ANALYSIS.md for the rule catalog.

Run it as ``repro check`` or ``python -m repro.quality``.
"""

from repro.quality.baseline import Baseline, BaselineEntry
from repro.quality.engine import (
    CheckResult,
    analyze_source,
    find_root,
    run_check,
)
from repro.quality.findings import Finding, Severity
from repro.quality.reporters import render_json, render_text
from repro.quality.rules import RULES, RULESET_VERSION, Rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CheckResult",
    "Finding",
    "RULES",
    "RULESET_VERSION",
    "Rule",
    "Severity",
    "analyze_source",
    "find_root",
    "render_json",
    "render_text",
    "run_check",
]

"""The analysis engine: file discovery, caching, suppressions, gating.

The engine parses each file once, runs every in-scope rule, drops
findings suppressed by an inline ``# repro: ignore[RULE]`` comment, and
partitions the rest against the committed baseline.  Per-file results are
cached keyed by content hash (plus the ruleset version), so a repeat run
over an unchanged tree re-analyzes nothing.
"""

from __future__ import annotations

import ast
import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.quality.baseline import Baseline, BaselineEntry
from repro.quality.findings import (
    Finding,
    Severity,
    assign_fingerprints,
    suppressed_rules,
)
from repro.quality.rules import RULES, RULESET_VERSION, FileContext, Rule

#: Rule id reserved for unparseable files (always an error, never cached
#: away by suppressions since the suppression itself can't be parsed).
PARSE_ERROR_RULE = "E000"

#: Default baseline location, relative to the analysis root.
DEFAULT_BASELINE = "quality-baseline.json"

#: Default cache location, relative to the analysis root (gitignored).
DEFAULT_CACHE = ".repro-quality-cache.json"

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", "build", "dist"}

def find_root(start: Path | None = None) -> Path:
    """The analysis root: nearest ancestor with a pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def iter_python_files(root: Path, paths: list[str]) -> list[Path]:
    """Every .py file under the given paths (resolved against root)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.relative_to(path).parts)
                if parts & _SKIP_DIRS or any(
                    p.endswith(".egg-info") for p in sub.parts
                ):
                    continue
                files.append(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while preserving deterministic sorted order.
    unique = sorted(set(files))
    return unique


def analyze_source(
    source: str, relpath: str, rules: list[Rule] | None = None
) -> list[Finding]:
    """Run every in-scope rule over one file's source text."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        ]
    ctx = FileContext.build(relpath, tree, lines)
    findings: list[Finding] = []
    for rule in rules if rules is not None else RULES.values():
        if rule.applies(relpath):
            findings.extend(rule.check(ctx))
    kept: list[Finding] = []
    for finding in findings:
        suppressed = suppressed_rules(ctx.source_line(finding.line))
        if suppressed is not None and (not suppressed or finding.rule in suppressed):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    assign_fingerprints(kept)
    return kept


@dataclass(slots=True)
class CheckResult:
    """Everything one engine run learned."""

    root: Path
    files_checked: int = 0
    cache_hits: int = 0
    new_findings: list[Finding] = field(default_factory=list)
    baselined_findings: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: Whether the whole-program (--deep) pass ran, and whether its
    #: result came out of the cache (one hit per unchanged tree).
    deep: bool = False
    deep_cache_hit: bool = False

    @property
    def new_errors(self) -> list[Finding]:
        return [f for f in self.new_findings if f.severity is Severity.ERROR]

    @property
    def new_warnings(self) -> list[Finding]:
        return [f for f in self.new_findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 = clean; 1 = findings gate the run."""
        if self.new_errors:
            return 1
        if strict and (self.new_warnings or self.stale_baseline):
            return 1
        return 0


class ResultCache:
    """Findings cache keyed by content hash and ruleset version.

    Two sections: per-file results keyed by each file's content hash,
    and one whole-program (``--deep``) result keyed by the project
    digest — a hash over every module's path and content plus the
    architecture manifest, so any rename, edit, or manifest change
    invalidates it.
    """

    def __init__(self, path: Path | None):
        self.path = path
        self._files: dict[str, dict] = {}
        self._deep: dict | None = None
        self._dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            if (
                isinstance(data, dict)
                and data.get("ruleset") == RULESET_VERSION
                and isinstance(data.get("files"), dict)
            ):
                self._files = data["files"]
                deep = data.get("deep")
                if isinstance(deep, dict) and "digest" in deep:
                    self._deep = deep

    def get(self, relpath: str, digest: str) -> list[Finding] | None:
        entry = self._files.get(relpath)
        if entry is None or entry.get("hash") != digest:
            return None
        return [Finding.from_dict(raw) for raw in entry.get("findings", [])]

    def put(self, relpath: str, digest: str, findings: list[Finding]) -> None:
        self._files[relpath] = {
            "hash": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def get_deep(self, digest: str) -> list[Finding] | None:
        if self._deep is None or self._deep.get("digest") != digest:
            return None
        return [Finding.from_dict(raw) for raw in self._deep.get("findings", [])]

    def put_deep(self, digest: str, findings: list[Finding]) -> None:
        self._deep = {
            "digest": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload: dict = {"ruleset": RULESET_VERSION, "files": self._files}
        if self._deep is not None:
            payload["deep"] = self._deep
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)


def changed_python_files(root: Path) -> list[str]:
    """Python files touched relative to HEAD (staged, unstaged, untracked).

    Powers ``repro check --changed``: a diff-scoped run over just the
    files this change touches.  Deleted files are skipped.  Raises
    :class:`RuntimeError` when ``root`` is not inside a git work tree.
    """
    def _git(*args: str) -> list[str]:
        proc = subprocess.run(
            ["git", *args],
            cwd=root,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(args)} failed: {proc.stderr.strip() or 'not a git repository?'}"
            )
        return [line for line in proc.stdout.splitlines() if line]

    names = set(_git("diff", "--name-only", "HEAD"))
    names.update(_git("ls-files", "--others", "--exclude-standard"))
    return sorted(
        name
        for name in names
        if name.endswith(".py") and (root / name).is_file()
    )


def run_check(
    paths: list[str],
    root: Path | None = None,
    baseline_path: Path | None = None,
    cache_path: Path | None = None,
    use_cache: bool = True,
    deep: bool = False,
    manifest_path: Path | None = None,
) -> CheckResult:
    """Analyze the given paths and gate them against the baseline.

    With ``deep=True`` the whole-program pass (ARCH/PAR/PERF over the
    full ``src/repro`` tree) runs as well, regardless of ``paths`` —
    project-wide properties cannot be judged from a file subset.  Deep
    findings join the same baseline partition as per-file ones.
    """
    root = (root or find_root()).resolve()
    result = CheckResult(root=root)
    cache = ResultCache(
        (cache_path or root / DEFAULT_CACHE) if use_cache else None
    )
    all_findings: list[Finding] = []
    for path in iter_python_files(root, paths):
        try:
            relpath = path.resolve().relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        source = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        findings = cache.get(relpath, digest)
        if findings is None:
            findings = analyze_source(source, relpath)
            cache.put(relpath, digest, findings)
        else:
            result.cache_hits += 1
        all_findings.extend(findings)
        result.files_checked += 1
    if deep:
        # Imported here so the per-file path never pays for the graph
        # machinery (and to keep module initialization acyclic).
        from repro.quality.graph import analyze_project, project_digest

        digest = project_digest(root, manifest_path=manifest_path)
        deep_findings = cache.get_deep(digest)
        if deep_findings is None:
            deep_findings = analyze_project(root, manifest_path=manifest_path)
            cache.put_deep(digest, deep_findings)
        else:
            result.deep_cache_hit = True
        result.deep = True
        all_findings.extend(deep_findings)
    cache.save()
    baseline = Baseline.load(baseline_path or root / DEFAULT_BASELINE)
    new, baselined, stale = baseline.partition(all_findings)
    result.new_findings = new
    result.baselined_findings = baselined
    result.stale_baseline = stale
    return result

"""The analysis engine: file discovery, caching, suppressions, gating.

The engine parses each file once, runs every in-scope rule, drops
findings suppressed by an inline ``# repro: ignore[RULE]`` comment, and
partitions the rest against the committed baseline.  Per-file results are
cached keyed by content hash (plus the ruleset version), so a repeat run
over an unchanged tree re-analyzes nothing.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.quality.baseline import Baseline, BaselineEntry
from repro.quality.findings import Finding, Severity, assign_fingerprints
from repro.quality.rules import RULES, RULESET_VERSION, FileContext, Rule

#: Rule id reserved for unparseable files (always an error, never cached
#: away by suppressions since the suppression itself can't be parsed).
PARSE_ERROR_RULE = "E000"

#: Default baseline location, relative to the analysis root.
DEFAULT_BASELINE = "quality-baseline.json"

#: Default cache location, relative to the analysis root (gitignored).
DEFAULT_CACHE = ".repro-quality-cache.json"

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", "build", "dist"}

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def find_root(start: Path | None = None) -> Path:
    """The analysis root: nearest ancestor with a pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def iter_python_files(root: Path, paths: list[str]) -> list[Path]:
    """Every .py file under the given paths (resolved against root)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.relative_to(path).parts)
                if parts & _SKIP_DIRS or any(
                    p.endswith(".egg-info") for p in sub.parts
                ):
                    continue
                files.append(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while preserving deterministic sorted order.
    unique = sorted(set(files))
    return unique


def suppressed_rules(line: str) -> set[str] | None:
    """Rules suppressed by the line's comment.

    Returns None for no suppression, an empty set for a blanket
    ``# repro: ignore``, or the set of rule ids inside the brackets.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip().upper() for r in rules.split(",") if r.strip()}


def analyze_source(
    source: str, relpath: str, rules: list[Rule] | None = None
) -> list[Finding]:
    """Run every in-scope rule over one file's source text."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        ]
    ctx = FileContext.build(relpath, tree, lines)
    findings: list[Finding] = []
    for rule in rules if rules is not None else RULES.values():
        if rule.applies(relpath):
            findings.extend(rule.check(ctx))
    kept: list[Finding] = []
    for finding in findings:
        suppressed = suppressed_rules(ctx.source_line(finding.line))
        if suppressed is not None and (not suppressed or finding.rule in suppressed):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    assign_fingerprints(kept)
    return kept


@dataclass(slots=True)
class CheckResult:
    """Everything one engine run learned."""

    root: Path
    files_checked: int = 0
    cache_hits: int = 0
    new_findings: list[Finding] = field(default_factory=list)
    baselined_findings: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def new_errors(self) -> list[Finding]:
        return [f for f in self.new_findings if f.severity is Severity.ERROR]

    @property
    def new_warnings(self) -> list[Finding]:
        return [f for f in self.new_findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 = clean; 1 = findings gate the run."""
        if self.new_errors:
            return 1
        if strict and (self.new_warnings or self.stale_baseline):
            return 1
        return 0


class ResultCache:
    """Per-file findings cache keyed by content hash and ruleset version."""

    def __init__(self, path: Path | None):
        self.path = path
        self._files: dict[str, dict] = {}
        self._dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            if (
                isinstance(data, dict)
                and data.get("ruleset") == RULESET_VERSION
                and isinstance(data.get("files"), dict)
            ):
                self._files = data["files"]

    def get(self, relpath: str, digest: str) -> list[Finding] | None:
        entry = self._files.get(relpath)
        if entry is None or entry.get("hash") != digest:
            return None
        return [Finding.from_dict(raw) for raw in entry.get("findings", [])]

    def put(self, relpath: str, digest: str, findings: list[Finding]) -> None:
        self._files[relpath] = {
            "hash": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {"ruleset": RULESET_VERSION, "files": self._files}
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)


def run_check(
    paths: list[str],
    root: Path | None = None,
    baseline_path: Path | None = None,
    cache_path: Path | None = None,
    use_cache: bool = True,
) -> CheckResult:
    """Analyze the given paths and gate them against the baseline."""
    root = (root or find_root()).resolve()
    result = CheckResult(root=root)
    cache = ResultCache(
        (cache_path or root / DEFAULT_CACHE) if use_cache else None
    )
    all_findings: list[Finding] = []
    for path in iter_python_files(root, paths):
        try:
            relpath = path.resolve().relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        source = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        findings = cache.get(relpath, digest)
        if findings is None:
            findings = analyze_source(source, relpath)
            cache.put(relpath, digest, findings)
        else:
            result.cache_hits += 1
        all_findings.extend(findings)
        result.files_checked += 1
    cache.save()
    baseline = Baseline.load(baseline_path or root / DEFAULT_BASELINE)
    new, baselined, stale = baseline.partition(all_findings)
    result.new_findings = new
    result.baselined_findings = baselined
    result.stale_baseline = stale
    return result

"""``python -m repro.quality`` entry point."""

import sys

from repro.quality.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""The committed findings baseline.

A baseline entry grandfathers one existing finding (matched by
fingerprint) with a recorded reason, so ``repro check`` can gate on *new*
findings while legacy ones are burned down deliberately.  Entries whose
finding has disappeared are *stale*: they are reported so the baseline
shrinks monotonically, and ``--update-baseline`` expires them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.quality.findings import Finding

BASELINE_SCHEMA_VERSION = 1

#: Reason recorded for entries added by --update-baseline without an
#: explicit reason edit.
DEFAULT_REASON = "grandfathered by --update-baseline; burn down or justify"


class BaselineError(ValueError):
    """Raised for unreadable or schema-incompatible baseline files."""


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
        }


@dataclass(slots=True)
class Baseline:
    """An ordered set of grandfathered findings."""

    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_SCHEMA_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported schema "
                f"{data.get('version') if isinstance(data, dict) else data!r}"
            )
        baseline = cls()
        for raw in data.get("entries", []):
            entry = BaselineEntry(
                fingerprint=raw["fingerprint"],
                rule=raw["rule"],
                path=raw["path"],
                reason=raw.get("reason", ""),
            )
            baseline.entries[entry.fingerprint] = entry
        return baseline

    def save(self, path: Path) -> None:
        ordered = sorted(
            self.entries.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
        )
        payload = {
            "version": BASELINE_SCHEMA_VERSION,
            "entries": [entry.to_dict() for entry in ordered],
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        tmp.replace(path)

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (new, baselined) and list stale entries."""
        seen: set[str] = set()
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            if finding.fingerprint in self.entries:
                seen.add(finding.fingerprint)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in self.entries.items()
            if fingerprint not in seen
        ]
        stale.sort(key=lambda e: (e.path, e.rule, e.fingerprint))
        return new, baselined, stale

    def updated(self, findings: list[Finding]) -> "Baseline":
        """The baseline after --update-baseline: current findings only.

        Existing reasons survive; new entries get :data:`DEFAULT_REASON`;
        stale entries expire.
        """
        fresh = Baseline()
        for finding in findings:
            existing = self.entries.get(finding.fingerprint)
            fresh.entries[finding.fingerprint] = BaselineEntry(
                fingerprint=finding.fingerprint,
                rule=finding.rule,
                path=finding.path,
                reason=existing.reason if existing else DEFAULT_REASON,
            )
        return fresh

"""CLI for the quality engine.

Two equivalent front doors::

    repro check [paths...] [--deep] [--changed] [--strict] [--format json] ...
    PYTHONPATH=src python -m repro.quality [paths...] [--deep] ...

Exit codes: 0 clean, 1 gated findings (new errors; plus warnings and
stale baseline entries under ``--strict``), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.quality.baseline import Baseline, BaselineError
from repro.quality.engine import (
    DEFAULT_BASELINE,
    DEFAULT_CACHE,
    changed_python_files,
    find_root,
    run_check,
)
from repro.quality.graph.manifest import ManifestError
from repro.quality.reporters import render_json, render_rules, render_text

#: Paths checked when none are given (relative to the analysis root).
DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the check options (shared by `repro check` and __main__)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="analysis root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on warnings and stale baseline entries",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the per-file result cache",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help=f"cache file (default: <root>/{DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help=(
            "also run the whole-program pass (ARCH layer DAG, PAR "
            "process-boundary safety, PERF hot-path purity) over src/repro"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "check only python files changed relative to HEAD "
            "(staged, unstaged, and untracked); per-file rules only"
        ),
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="architecture manifest for --deep (default: <root>/docs/architecture.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a configured check (shared by `repro check` and __main__)."""
    if args.list_rules:
        print(render_rules())
        return 0
    root = Path(args.root).resolve() if args.root else find_root()
    baseline_path = (
        Path(args.baseline).resolve() if args.baseline else root / DEFAULT_BASELINE
    )
    cache_path = (
        Path(args.cache_file).resolve() if args.cache_file else root / DEFAULT_CACHE
    )
    if args.changed:
        if args.paths:
            print(
                "repro check: --changed and explicit paths are mutually "
                "exclusive",
                file=sys.stderr,
            )
            return 2
        try:
            paths = changed_python_files(root)
        except RuntimeError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2
        if not paths and not args.deep:
            print("repro check: no changed python files")
            return 0
    else:
        paths = args.paths or [p for p in DEFAULT_PATHS if (root / p).exists()]
    manifest_path = Path(args.manifest).resolve() if args.manifest else None
    try:
        result = run_check(
            paths,
            root=root,
            baseline_path=baseline_path,
            cache_path=cache_path,
            use_cache=not args.no_cache,
            deep=args.deep,
            manifest_path=manifest_path,
        )
    except FileNotFoundError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    except (BaselineError, ManifestError) as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        baseline = Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
        all_findings = result.new_findings + result.baselined_findings
        baseline.updated(all_findings).save(baseline_path)
        print(
            f"baseline updated: {len(all_findings)} entr(ies), "
            f"{len(result.stale_baseline)} expired -> {baseline_path}"
        )
        return 0
    if args.format == "json":
        print(json.dumps(render_json(result, strict=args.strict), indent=2))
    else:
        print(render_text(result, strict=args.strict))
    return result.exit_code(strict=args.strict)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.quality",
        description="Determinism-and-invariant static analysis for the repro tree",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())

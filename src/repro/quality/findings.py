"""Finding primitives shared by the quality-engine rules and reporters.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* identifies the violation stably across unrelated edits: it
hashes the rule id, the file path, the stripped source line, and an
occurrence index (so two identical lines in one file get distinct
fingerprints) -- but **not** the line number, which drifts whenever code
above the finding moves.  Baseline entries match on fingerprints.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from enum import Enum

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def suppressed_rules(line: str) -> set[str] | None:
    """Rules suppressed by the line's comment.

    Returns None for no suppression, an empty set for a blanket
    ``# repro: ignore``, or the set of rule ids inside the brackets.
    Lives here (not in the engine) so both the per-file and the
    whole-program passes can honor inline ignores without importing
    each other.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip().upper() for r in rules.split(",") if r.strip()}


class Severity(str, Enum):
    """How a finding gates the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings fail only under
    ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str  # POSIX-style path relative to the analysis root
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    snippet: str = ""
    fingerprint: str = field(default="")

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            snippet=data.get("snippet", ""),
            fingerprint=data.get("fingerprint", ""),
        )


def assign_fingerprints(findings: list[Finding]) -> None:
    """Fill in stable fingerprints for a batch of findings (in place).

    Findings are grouped by ``(rule, path, stripped snippet)``; within a
    group the occurrence index follows source order, so the fingerprint
    survives line-number drift but distinguishes repeated identical lines.
    """
    groups: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (finding.rule, finding.path, finding.snippet.strip())
        index = groups.get(key, 0)
        groups[key] = index + 1
        payload = "|".join((finding.rule, finding.path, finding.snippet.strip(), str(index)))
        finding.fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

"""Text and JSON renderings of a :class:`~repro.quality.engine.CheckResult`."""

from __future__ import annotations

from repro.quality.engine import CheckResult
from repro.quality.graph.analyzer import DEEP_RULES
from repro.quality.rules import RULES, RULESET_VERSION

#: Schema version of the JSON report (bump on breaking shape changes).
REPORT_SCHEMA_VERSION = 2


def _rule_name(rule_id: str) -> str:
    if rule_id in RULES:
        return RULES[rule_id].name
    if rule_id in DEEP_RULES:
        return DEEP_RULES[rule_id].name
    return "parse"


def render_text(result: CheckResult, strict: bool = False) -> str:
    """Human-oriented report, grouped by file."""
    lines: list[str] = []
    by_path: dict[str, list] = {}
    for finding in result.new_findings:
        by_path.setdefault(finding.path, []).append(finding)
    for path in sorted(by_path):
        lines.append(path)
        for f in sorted(by_path[path], key=lambda f: (f.line, f.col, f.rule)):
            lines.append(
                f"  {f.line}:{f.col + 1}  {f.severity.value:<7} "
                f"{f.rule} [{_rule_name(f.rule)}]  "
                f"{f.message}"
            )
        lines.append("")
    if result.stale_baseline:
        lines.append("stale baseline entries (finding no longer present):")
        for entry in result.stale_baseline:
            lines.append(
                f"  {entry.fingerprint}  {entry.rule}  {entry.path}  -- {entry.reason}"
            )
        lines.append("  run with --update-baseline to expire them")
        lines.append("")
    deep_note = ""
    if result.deep:
        deep_note = (
            f", deep pass {'cached' if result.deep_cache_hit else 'ran'}"
        )
    summary = (
        f"{result.files_checked} file(s) checked "
        f"({result.cache_hits} cached){deep_note}, "
        f"{len(result.new_errors)} error(s), "
        f"{len(result.new_warnings)} warning(s), "
        f"{len(result.baselined_findings)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(ies)"
    )
    lines.append(summary)
    verdict = "FAIL" if result.exit_code(strict=strict) else "OK"
    lines.append(f"repro check: {verdict}")
    return "\n".join(lines)


def render_json(result: CheckResult, strict: bool = False) -> dict:
    """Machine-oriented report with a stable schema."""
    findings = [
        {**f.to_dict(), "baselined": False} for f in result.new_findings
    ] + [{**f.to_dict(), "baselined": True} for f in result.baselined_findings]
    findings.sort(key=lambda f: (f["path"], f["line"], f["col"], f["rule"]))
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "ruleset_version": RULESET_VERSION,
        "root": str(result.root),
        "strict": strict,
        "exit_code": result.exit_code(strict=strict),
        "summary": {
            "files_checked": result.files_checked,
            "cache_hits": result.cache_hits,
            "new_errors": len(result.new_errors),
            "new_warnings": len(result.new_warnings),
            "baselined": len(result.baselined_findings),
            "stale_baseline": len(result.stale_baseline),
            "deep": result.deep,
            "deep_cache_hit": result.deep_cache_hit,
        },
        "findings": findings,
        "stale_baseline": [entry.to_dict() for entry in result.stale_baseline],
    }


def render_rules() -> str:
    """The --list-rules table: per-file rules, then deep (--deep) rules."""
    lines = [f"ruleset {RULESET_VERSION}", ""]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        scope = ", ".join(rule.scopes) if rule.scopes else "all checked files"
        lines.append(f"{rule.id}  {rule.name}  ({rule.severity.value}; {scope})")
        lines.append(f"    {rule.description}")
        lines.append(f"    protects: {rule.protects}")
        lines.append("")
    lines.append("whole-program rules (require --deep):")
    lines.append("")
    for rule_id in sorted(DEEP_RULES):
        rule = DEEP_RULES[rule_id]
        lines.append(f"{rule.id}  {rule.name}  ({rule.severity.value})")
        lines.append(f"    {rule.description}")
        lines.append(f"    protects: {rule.protects}")
        lines.append("")
    return "\n".join(lines).rstrip()

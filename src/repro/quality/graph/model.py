"""The project model: every module of the program, parsed once.

:func:`build_project_model` walks a package root (``src/repro``), parses
each file, and distills what the deep rules need:

* a **module table** (dotted name -> :class:`ModuleInfo`) with source
  lines kept for snippet/suppression handling;
* an **import graph** of :class:`ImportEdge` records, each classified as
  runtime or typing-only (``if TYPE_CHECKING:`` blocks never execute, so
  they cannot create runtime cycles and are exempt from layering);
* per-function :class:`FunctionInfo` summaries — qualified name,
  resolved project-local calls, ``global`` mutations, nested defs, local
  constructor types — enough to trace a callable submitted to a process
  pool back to its definition and walk its transitive callees.

The model is deliberately syntactic: no imports are executed, so
analysis cost stays proportional to source size and the analyzer can run
on a tree that does not even import cleanly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Directories never descended into while discovering modules.
_SKIP_DIRS = {"__pycache__"}

#: Comment marker that opts a function (def line or the line above it)
#: or a whole module (a marker line within the first MODULE_MARKER_LINES
#: lines) into the PERF hot-path purity rules.
HOTPATH_MARKER = "# hotpath"

#: How far into a file a module-level ``# hotpath`` marker may appear.
MODULE_MARKER_LINES = 10


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One import statement, as an edge in the module import graph.

    Attributes:
        src: Importing module (dotted name).
        dst: Imported module (dotted name, normalized to the module that
            actually resolves — ``from repro.x import y`` maps to
            ``repro.x`` unless ``repro.x.y`` is itself a module).
        lineno: Line of the import statement.
        typing_only: True when the import sits under ``if TYPE_CHECKING:``
            (erased at runtime; exempt from cycle/layer checks).
        function_level: True when the import executes inside a function
            body (lazy import; still a runtime edge).
    """

    src: str
    dst: str
    lineno: int
    typing_only: bool = False
    function_level: bool = False


@dataclass(slots=True)
class FunctionInfo:
    """Summary of one function or method.

    Attributes:
        qualname: ``module:Class.method`` or ``module:function``.
        module: Owning module's dotted name.
        name: Bare name.
        lineno: Definition line.
        params: Positional/keyword parameter names, in order.
        nested: True for a def nested inside another function (a closure
            candidate — not addressable at module level).
        hotpath: True when the function carries the ``# hotpath`` marker
            (directly or via a module-level marker).
        calls: Call descriptions ``(dotted, node)`` where ``dotted`` is
            the resolved dotted name ("repro.faults.injection.activate",
            "self._parallel_round", "local:table.method", or the bare
            name) — consumers re-resolve against the project.
        global_writes: ``(name, lineno)`` for names declared ``global``
            and assigned in the body.
        local_types: Local variable -> dotted class name, for locals
            assigned from a constructor call (``x = BGPTable(...)``).
        local_defs: Name -> lineno for defs nested in this function and
            for locals bound to a lambda — closure candidates that are
            not addressable (picklable) at module level.
    """

    qualname: str
    module: str
    name: str
    lineno: int
    params: list[str] = field(default_factory=list)
    nested: bool = False
    hotpath: bool = False
    node: ast.AST | None = None
    calls: list[tuple[str, ast.Call]] = field(default_factory=list)
    global_writes: list[tuple[str, int]] = field(default_factory=list)
    local_types: dict[str, str] = field(default_factory=dict)
    local_defs: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module of the program."""

    name: str  # dotted name, e.g. "repro.routing.bgp"
    relpath: str  # POSIX path relative to the analysis root
    tree: ast.Module
    lines: list[str]
    #: Alias -> imported module ("np" -> "numpy").
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: Imported name -> dotted origin ("span" -> "repro.obs.runtime.span").
    imported_names: dict[str, str] = field(default_factory=dict)
    #: Names bound at module level (functions, classes, assignments).
    module_level_names: set[str] = field(default_factory=set)
    #: Module-level function name -> FunctionInfo.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: "Class.method" -> FunctionInfo (methods of module-level classes).
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class name -> base-class dotted names (for method resolution).
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    imports: list[ImportEdge] = field(default_factory=list)
    hotpath_module: bool = False

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain against this module's imports."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.imported_names:
            parts.append(self.imported_names[root])
        elif root in self.module_aliases:
            parts.append(self.module_aliases[root])
        else:
            parts.append(root)
        return ".".join(reversed(parts))


@dataclass(slots=True)
class ProjectModel:
    """Every module of the program plus derived lookup tables."""

    root: Path
    package: str  # top-level package name, e.g. "repro"
    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def module_of(self, dotted: str) -> str | None:
        """The project module a dotted name belongs to, if any.

        ``repro.obs.runtime.span`` -> ``repro.obs.runtime``;
        ``repro.routing`` -> ``repro.routing`` (the package __init__).
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def function(self, dotted: str) -> FunctionInfo | None:
        """Look up ``module.func`` or ``module.Class.method``."""
        mod = self.module_of(dotted)
        if mod is None or dotted == mod:
            return None
        rest = dotted[len(mod) + 1 :]
        info = self.modules[mod]
        if rest in info.functions:
            return info.functions[rest]
        if rest in info.methods:
            return info.methods[rest]
        # Method on a class whose def we can find: Class.method.
        if "." in rest:
            cls, _, meth = rest.partition(".")
            resolved = self._method_on_class(info, cls, meth)
            if resolved is not None:
                return resolved
        return None

    def _method_on_class(
        self, info: ModuleInfo, cls: str, meth: str, _depth: int = 0
    ) -> FunctionInfo | None:
        """``cls.meth`` in ``info``, walking project-local base classes."""
        if _depth > 8:
            return None
        key = f"{cls}.{meth}"
        if key in info.methods:
            return info.methods[key]
        for base in info.class_bases.get(cls, []):
            base_mod = self.module_of(base)
            if base_mod is None:
                continue
            base_info = self.modules[base_mod]
            base_cls = base.rsplit(".", 1)[1] if "." in base else base
            found = self._method_on_class(base_info, base_cls, meth, _depth + 1)
            if found is not None:
                return found
        return None


def _module_name_for(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to the source root."""
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _normalize_import_target(
    dotted: str, known_modules: set[str]
) -> str | None:
    """Map an import target onto the project module it lands in."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in known_modules:
            return candidate
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """Single walk that fills a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo, package: str) -> None:
        self.info = info
        self.package = package
        self._typing_depth = 0
        self._function_stack: list[FunctionInfo] = []
        self._class_stack: list[str] = []

    # -- imports -----------------------------------------------------------

    def _record_import(self, target: str, lineno: int) -> None:
        self.info.imports.append(
            ImportEdge(
                src=self.info.name,
                dst=target,
                lineno=lineno,
                typing_only=self._typing_depth > 0,
                function_level=bool(self._function_stack),
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
            if not self._function_stack:
                self.info.module_level_names.add(
                    alias.asname or alias.name.split(".")[0]
                )
            if alias.name.split(".")[0] == self.package:
                self._record_import(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Relative import: resolve against the containing package
            # (the module itself when this file is an __init__.py).
            pkg = self.info.name.split(".")
            if not self.info.relpath.endswith("__init__.py"):
                pkg = pkg[:-1]
            anchor = pkg[: len(pkg) - (node.level - 1)]
            module = ".".join(anchor + (node.module.split(".") if node.module else []))
        else:
            module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            self.info.imported_names[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )
            if not self._function_stack:
                self.info.module_level_names.add(alias.asname or alias.name)
        if module.split(".")[0] == self.package:
            # Record per imported name: ``from repro.faults import
            # injection`` depends on the submodule, not the package
            # __init__.  Normalization later cuts each target down to
            # the module that actually exists.
            recorded = False
            for alias in node.names:
                if alias.name != "*":
                    self._record_import(
                        f"{module}.{alias.name}", node.lineno
                    )
                    recorded = True
            if not recorded:
                self._record_import(module, node.lineno)

    def visit_If(self, node: ast.If) -> None:
        """Track ``if TYPE_CHECKING:`` so imports under it are typing-only."""
        test = node.test
        is_typing_guard = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (
            isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING"
        )
        if is_typing_guard:
            self._typing_depth += 1
            for child in node.body:
                self.visit(child)
            self._typing_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- defs --------------------------------------------------------------

    def _has_hotpath_marker(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 1)
        candidates = [lineno]
        # Decorators push the def line down; the marker may sit on the
        # line above the first decorator.
        first = min(
            [lineno]
            + [d.lineno for d in getattr(node, "decorator_list", [])]
        )
        candidates.extend([first, first - 1])
        # A marker is a comment line or a trailing comment — a docstring
        # that merely mentions "# hotpath" must not opt a function in.
        for n in candidates:
            line = self.info.source_line(n)
            if HOTPATH_MARKER not in line:
                continue
            if line.strip().startswith("#") or line.rstrip().endswith(
                HOTPATH_MARKER
            ):
                return True
        return False

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionInfo:
        nested = bool(self._function_stack)
        if self._class_stack and not nested:
            qual = f"{'.'.join(self._class_stack)}.{node.name}"
        else:
            qual = node.name
        args = node.args
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        fn = FunctionInfo(
            qualname=f"{self.info.name}:{qual}",
            module=self.info.name,
            name=node.name,
            lineno=node.lineno,
            params=params,
            nested=nested,
            hotpath=self.info.hotpath_module or self._has_hotpath_marker(node),
            node=node,
        )
        if nested:
            # Closures are recorded on their parent for PAR resolution.
            self._function_stack[-1].local_defs[node.name] = node.lineno
        elif self._class_stack:
            self.info.methods[qual] = fn
        else:
            self.info.functions[node.name] = fn
            self.info.module_level_names.add(node.name)
        return fn

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        fn = self._enter_function(node)
        self._function_stack.append(fn)
        declared_global: set[str] = set()
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, ast.Global):
                    declared_global.update(sub.names)
        if declared_global:
            for child in node.body:
                for sub in ast.walk(child):
                    if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for target in targets:
                            for name_node in ast.walk(target):
                                if (
                                    isinstance(name_node, ast.Name)
                                    and name_node.id in declared_global
                                ):
                                    fn.global_writes.append(
                                        (name_node.id, sub.lineno)
                                    )
        for child in node.body:
            self.visit(child)
        self._function_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._function_stack:
            self.info.module_level_names.add(node.name)
            bases = []
            for base in node.bases:
                dotted = self.info.resolve(base)
                if dotted is not None:
                    bases.append(dotted)
            self.info.class_bases[node.name] = bases
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    # -- statements inside functions ---------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._function_stack and not self._class_stack:
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        self.info.module_level_names.add(name_node.id)
        if self._function_stack and isinstance(node.value, ast.Call):
            dotted = self.info.resolve(node.value.func)
            if dotted is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._function_stack[-1].local_types[target.id] = dotted
        if self._function_stack and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._function_stack[-1].local_defs[target.id] = node.lineno
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            not self._function_stack
            and not self._class_stack
            and isinstance(node.target, ast.Name)
        ):
            self.info.module_level_names.add(node.target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_stack:
            fn = self._function_stack[-1]
            dotted = self.info.resolve(node.func)
            if dotted is None and isinstance(node.func, ast.Attribute):
                # obj.method() where obj is a typed local: tag for
                # project-level re-resolution.
                base = node.func.value
                if isinstance(base, ast.Name) and base.id in fn.local_types:
                    dotted = f"local:{base.id}.{node.func.attr}"
            if dotted is not None:
                fn.calls.append((dotted, node))
        self.generic_visit(node)


def iter_project_files(src_root: Path, package: str) -> list[Path]:
    """Every .py file of the package, sorted for determinism."""
    pkg_root = src_root / package
    files = []
    for path in sorted(pkg_root.rglob("*.py")):
        if set(path.relative_to(pkg_root).parts) & _SKIP_DIRS:
            continue
        files.append(path)
    return files


def build_project_model(
    root: Path, *, src_dir: str = "src", package: str = "repro"
) -> ProjectModel:
    """Parse the whole program under ``<root>/<src_dir>/<package>``.

    Unparseable files are skipped here — the per-file pass already
    reports E000 for them, and a partial model is more useful than none.
    """
    root = root.resolve()
    src_root = root / src_dir
    model = ProjectModel(root=root, package=package)
    infos: list[ModuleInfo] = []
    for path in iter_project_files(src_root, package):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        name = _module_name_for(path, src_root)
        lines = source.splitlines()
        info = ModuleInfo(
            name=name,
            relpath=path.relative_to(root).as_posix(),
            tree=tree,
            lines=lines,
        )
        # Module markers must be comment lines: a docstring merely
        # *mentioning* "# hotpath" must not opt a whole module in.
        info.hotpath_module = any(
            line.strip().startswith("#") and HOTPATH_MARKER in line
            for line in lines[:MODULE_MARKER_LINES]
        )
        infos.append(info)
        model.modules[name] = info
    known = set(model.modules)
    for info in infos:
        _ModuleVisitor(info, package).visit(info.tree)
        # Normalize import targets onto actual project modules, drop
        # self-imports introduced by package __init__ re-exports, and
        # dedupe (one ``from x import a, b`` records an edge per name).
        normalized: list[ImportEdge] = []
        seen_edges: set[tuple[str, int, bool]] = set()
        for edge in info.imports:
            target = _normalize_import_target(edge.dst, known)
            if target is None or target == edge.src:
                continue
            key = (target, edge.lineno, edge.typing_only)
            if key in seen_edges:
                continue
            seen_edges.add(key)
            normalized.append(
                ImportEdge(
                    src=edge.src,
                    dst=target,
                    lineno=edge.lineno,
                    typing_only=edge.typing_only,
                    function_level=edge.function_level,
                )
            )
        info.imports = normalized
    return model

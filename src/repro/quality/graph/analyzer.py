"""The whole-program analysis pass behind ``repro check --deep``.

Per-file rules see one file at a time; these rules see the program.
:func:`analyze_project` parses every module once into a
:class:`~repro.quality.graph.model.ProjectModel` and runs the three deep
rule families over it — ARCH (layer DAG), PAR (process-boundary safety),
PERF (hot-path purity).  Findings re-enter the ordinary machinery:
inline ``# repro: ignore[RULE]`` comments on the flagged line suppress,
fingerprints make baselining work, and reporters need no changes.

:func:`project_digest` condenses the whole input of the pass — every
module's content plus the architecture manifest — into one hash, which
the engine uses to cache the deep result exactly the way per-file
results are cached by file hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.quality.findings import (
    Finding,
    Severity,
    assign_fingerprints,
    suppressed_rules,
)
from repro.quality.graph.arch import check_cycles, check_layering
from repro.quality.graph.manifest import (
    DEFAULT_MANIFEST,
    ArchitectureManifest,
    load_manifest,
)
from repro.quality.graph.model import (
    ProjectModel,
    build_project_model,
    iter_project_files,
)
from repro.quality.graph.par import check_process_safety
from repro.quality.graph.perf import check_hot_paths


@dataclass(frozen=True, slots=True)
class DeepRule:
    """Catalog entry for one whole-program rule (for docs and reports)."""

    id: str
    name: str
    severity: Severity
    description: str
    protects: str


#: The deep-rule catalog, keyed by rule id.
DEEP_RULES: dict[str, DeepRule] = {
    rule.id: rule
    for rule in (
        DeepRule(
            id="ARCH001",
            name="import-cycle",
            severity=Severity.ERROR,
            description=(
                "Runtime import cycle between modules (typing-only "
                "imports exempt)."
            ),
            protects=(
                "Initialization order must not be load-bearing; any layer "
                "must be extractable."
            ),
        ),
        DeepRule(
            id="ARCH002",
            name="undeclared-layer-import",
            severity=Severity.ERROR,
            description=(
                "Import edge not declared in docs/architecture.toml "
                "(upward or sideways dependency)."
            ),
            protects=(
                "The layer DAG: topology -> routing -> netsim -> "
                "measurement -> datasets, with obs/faults/quality as "
                "leaf-only cross-cutting layers."
            ),
        ),
        DeepRule(
            id="ARCH003",
            name="unknown-layer",
            severity=Severity.ERROR,
            description="Module belongs to no layer declared in the manifest.",
            protects=(
                "Manifest totality: new subpackages take a DAG position "
                "before code lands in them."
            ),
        ),
        DeepRule(
            id="PAR001",
            name="non-module-level-worker",
            severity=Severity.ERROR,
            description=(
                "Lambda, closure, or bound method submitted to a process "
                "pool (traced through parameter forwarding)."
            ),
            protects=(
                "Fork-boundary picklability: workers must be addressable "
                "module-level functions."
            ),
        ),
        DeepRule(
            id="PAR002",
            name="forbidden-capture",
            severity=Severity.ERROR,
            description=(
                "Tracer/Metrics/lock objects passed as process-pool "
                "arguments."
            ),
            protects=(
                "Observability integrity: fork-inherited tracers silently "
                "bifurcate; pickled locks guard nothing."
            ),
        ),
        DeepRule(
            id="PAR003",
            name="worker-global-mutation",
            severity=Severity.ERROR,
            description=(
                "Module-global rebinding in code reachable from a "
                "pool-submitted worker."
            ),
            protects=(
                "Cross-process determinism: worker-side globals diverge "
                "between processes."
            ),
        ),
        DeepRule(
            id="PERF001",
            name="per-element-loop",
            severity=Severity.ERROR,
            description=(
                "Per-element Python loop over a numpy array in a "
                "``# hotpath`` function."
            ),
            protects="Vectorized kernels stay vectorized.",
        ),
        DeepRule(
            id="PERF002",
            name="scalar-rng-in-loop",
            severity=Severity.ERROR,
            description=(
                "Scalar RNG draw inside a loop in a ``# hotpath`` function."
            ),
            protects=(
                "Batch-draw protocol (DRAWS_PER_PROBE): fixed draw counts "
                "keep RNG streams aligned across code paths."
            ),
        ),
        DeepRule(
            id="PERF003",
            name="allocation-in-loop",
            severity=Severity.WARNING,
            description=(
                "numpy allocation inside a loop in a ``# hotpath`` "
                "function."
            ),
            protects="Hot paths preallocate; loops fill slices.",
        ),
    )
}


def project_digest(
    root: Path,
    *,
    src_dir: str = "src",
    package: str = "repro",
    manifest_path: Path | None = None,
) -> str:
    """One hash over everything the deep pass reads.

    Any module content change, module add/remove/rename, or manifest
    edit changes the digest — the cache key for the whole-program result.
    """
    root = root.resolve()
    src_root = root / src_dir
    hasher = hashlib.sha256()
    for path in iter_project_files(src_root, package):
        rel = path.relative_to(root).as_posix()
        content = hashlib.sha256(path.read_bytes()).hexdigest()
        hasher.update(f"{rel}\x00{content}\x00".encode("utf-8"))
    manifest = manifest_path or root / DEFAULT_MANIFEST
    if manifest.is_file():
        hasher.update(b"manifest\x00")
        hasher.update(manifest.read_bytes())
    return hasher.hexdigest()


def _apply_suppressions(
    model: ProjectModel, findings: list[Finding]
) -> list[Finding]:
    """Drop findings whose flagged line carries a matching inline ignore."""
    by_relpath = {info.relpath: info for info in model.modules.values()}
    kept: list[Finding] = []
    for finding in findings:
        info = by_relpath.get(finding.path)
        if info is not None:
            suppressed = suppressed_rules(info.source_line(finding.line))
            if suppressed is not None and (
                not suppressed or finding.rule in suppressed
            ):
                continue
        kept.append(finding)
    return kept


def analyze_project(
    root: Path,
    *,
    src_dir: str = "src",
    package: str = "repro",
    manifest_path: Path | None = None,
    model: ProjectModel | None = None,
    manifest: ArchitectureManifest | None = None,
) -> list[Finding]:
    """Run every deep rule over the program under ``root``.

    Raises :class:`~repro.quality.graph.manifest.ManifestError` when the
    architecture manifest is missing or invalid — a broken manifest must
    fail loudly, not skip the ARCH family.
    """
    if model is None:
        model = build_project_model(root, src_dir=src_dir, package=package)
    if manifest is None:
        manifest = load_manifest(manifest_path or root / DEFAULT_MANIFEST)
    findings: list[Finding] = []
    findings.extend(check_cycles(model))
    findings.extend(check_layering(model, manifest))
    findings.extend(check_process_safety(model))
    findings.extend(check_hot_paths(model))
    findings = _apply_suppressions(model, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    assign_fingerprints(findings)
    return findings

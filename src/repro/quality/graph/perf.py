"""PERF rules: hot-path purity for the vectorized kernels.

The measurement and routing kernels earn their speed by staying inside
numpy: batch RNG draws, boolean-mask selection, whole-array arithmetic.
A per-element Python loop quietly reintroduced into one of them is a
100x regression that no unit test notices — results stay identical,
wall-clock does not.  These rules are the tripwire, and they are
**opt-in**: a function (or module) marked ``# hotpath`` promises to stay
vectorized, and only marked code is checked.

* **PERF001** — per-element loop over a numpy array: iterating
  ``range(len(arr))`` or subscripting an array with the loop variable.
  Replace with whole-array ops or boolean masks.
* **PERF002** — scalar RNG draw inside a loop.  Per-element draws both
  crawl and break the fixed-draw-count protocol (``DRAWS_PER_PROBE``)
  that keeps streams aligned across code paths; draw the whole batch
  before the loop with ``size=``.
* **PERF003** — numpy array allocation inside a loop.  Repeated
  ``np.zeros``/``np.concatenate`` in a loop is quadratic churn;
  preallocate outside and fill slices.

Only names the model can *prove* array-like are considered: locals
assigned from a ``numpy.*`` call and parameters annotated as ndarray.
Dict/list loops in marked functions stay legal.
"""

from __future__ import annotations

import ast

from repro.quality.findings import Finding, Severity
from repro.quality.graph.model import FunctionInfo, ModuleInfo, ProjectModel

#: numpy callables whose result is (or contains) a fresh array.
_ARRAY_PRODUCERS_PREFIX = "numpy."

#: numpy callables that allocate, flagged by PERF003 when inside a loop.
_ALLOCATORS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.arange",
    "numpy.linspace",
    "numpy.array",
    "numpy.concatenate",
    "numpy.append",
    "numpy.vstack",
    "numpy.hstack",
    "numpy.stack",
    "numpy.tile",
    "numpy.repeat",
}

#: Generator draw methods whose un-``size=``d form returns a scalar.
_RNG_DRAW_METHODS = {
    "random",
    "normal",
    "uniform",
    "exponential",
    "lognormal",
    "integers",
    "standard_normal",
    "poisson",
    "binomial",
    "choice",
}


def _finding(
    model: ProjectModel,
    rule: str,
    severity: Severity,
    module: str,
    node: ast.AST,
    message: str,
) -> Finding:
    info = model.modules[module]
    lineno = getattr(node, "lineno", 1)
    return Finding(
        rule=rule,
        severity=severity,
        path=info.relpath,
        line=lineno,
        col=getattr(node, "col_offset", 0),
        message=message,
        snippet=info.source_line(lineno).strip(),
    )


def _annotation_is_ndarray(node: ast.expr | None) -> bool:
    if node is None:
        return False
    text = ast.unparse(node)
    return "ndarray" in text or "NDArray" in text


def _array_names(info: ModuleInfo, fn: FunctionInfo) -> set[str]:
    """Names provably bound to numpy arrays inside ``fn``.

    Sources: parameters annotated ndarray, and locals assigned from a
    resolved ``numpy.*`` call (``x = np.zeros(...)``, ``u = np.unique(b)``).
    """
    names: set[str] = set()
    node = fn.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_is_ndarray(arg.annotation):
                names.add(arg.arg)
    for local, dotted in fn.local_types.items():
        if dotted.startswith(_ARRAY_PRODUCERS_PREFIX):
            names.add(local)
    return names


def _is_range_len(call: ast.expr, array_names: set[str]) -> str | None:
    """The array name when ``call`` is ``range(len(arr))`` over an array."""
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and len(call.args) == 1
    ):
        return None
    inner = call.args[0]
    if (
        isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Name)
        and inner.func.id == "len"
        and len(inner.args) == 1
        and isinstance(inner.args[0], ast.Name)
        and inner.args[0].id in array_names
    ):
        return inner.args[0].id
    return None


def _loop_target_names(target: ast.expr) -> set[str]:
    return {
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    }


def _rng_receiver(info: ModuleInfo, fn: FunctionInfo, func: ast.expr) -> str | None:
    """The receiver name when ``func`` is a draw method on an rng object."""
    if not (
        isinstance(func, ast.Attribute) and func.attr in _RNG_DRAW_METHODS
    ):
        return None
    base = func.value
    if isinstance(base, ast.Name):
        dotted = fn.local_types.get(base.id, "")
        if dotted.startswith("numpy.random") or "rng" in base.id.lower():
            return base.id
    if isinstance(base, ast.Attribute) and "rng" in base.attr.lower():
        return ast.unparse(base)
    return None


def _check_function(
    model: ProjectModel, info: ModuleInfo, fn: FunctionInfo
) -> list[Finding]:
    findings: list[Finding] = []
    if fn.node is None:
        return findings
    array_names = _array_names(info, fn)
    for loop in ast.walk(fn.node):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        loop_vars: set[str] = set()
        if isinstance(loop, ast.For):
            loop_vars = _loop_target_names(loop.target)
            arr = _is_range_len(loop.iter, array_names)
            if arr is not None:
                findings.append(
                    _finding(
                        model,
                        "PERF001",
                        Severity.ERROR,
                        info.name,
                        loop,
                        f"hot path iterates range(len({arr})) over a numpy "
                        "array; vectorize with whole-array ops or a boolean "
                        "mask",
                    )
                )
        body = loop.body + getattr(loop, "orelse", [])
        for stmt in body:
            for sub in ast.walk(stmt):
                # arr[i] with i a loop variable: per-element access.
                if (
                    isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id in array_names
                    and isinstance(sub.slice, ast.Name)
                    and sub.slice.id in loop_vars
                ):
                    findings.append(
                        _finding(
                            model,
                            "PERF001",
                            Severity.ERROR,
                            info.name,
                            sub,
                            f"hot path indexes numpy array "
                            f"'{sub.value.id}' element-by-element inside a "
                            "loop; vectorize the access",
                        )
                    )
                if not isinstance(sub, ast.Call):
                    continue
                receiver = _rng_receiver(info, fn, sub.func)
                if receiver is not None and not any(
                    kw.arg == "size" for kw in sub.keywords
                ):
                    findings.append(
                        _finding(
                            model,
                            "PERF002",
                            Severity.ERROR,
                            info.name,
                            sub,
                            f"scalar {receiver}.{sub.func.attr}() draw "
                            "inside a loop; draw the whole batch before the "
                            "loop with size= (fixed draw count per probe "
                            "keeps RNG streams aligned)",
                        )
                    )
                dotted = info.resolve(sub.func)
                if dotted in _ALLOCATORS:
                    findings.append(
                        _finding(
                            model,
                            "PERF003",
                            Severity.WARNING,
                            info.name,
                            sub,
                            f"{dotted}() allocates inside a loop on a hot "
                            "path; preallocate outside the loop and fill "
                            "slices",
                        )
                    )
    return findings


def check_hot_paths(model: ProjectModel) -> list[Finding]:
    """Run PERF001/PERF002/PERF003 over every ``# hotpath`` function."""
    findings: list[Finding] = []
    for name in sorted(model.modules):
        info = model.modules[name]
        for fn in list(info.functions.values()) + list(info.methods.values()):
            if fn.hotpath:
                findings.extend(_check_function(model, info, fn))
    return findings

"""ARCH rules: enforce the declared layer DAG over the import graph.

* **ARCH001** — runtime import cycle between modules.  Cycles make
  initialization order load-bearing (whichever module happens to be
  imported first wins) and block extracting any involved layer.
* **ARCH002** — import not declared in ``docs/architecture.toml``:
  either upward (a lower layer reaching into a higher one) or simply
  undeclared.  Either way the manifest diff, not the import, is the
  place the decision gets reviewed.
* **ARCH003** — module outside any declared layer.  Keeps the manifest
  total: a new subpackage must take a position in the DAG before code
  can land in it.

Typing-only imports (under ``if TYPE_CHECKING:``) are exempt from all
three: they are erased at runtime, so they can neither cycle nor
actually couple layers.
"""

from __future__ import annotations

from repro.quality.findings import Finding, Severity
from repro.quality.graph.manifest import ArchitectureManifest
from repro.quality.graph.model import ImportEdge, ProjectModel


def _finding(
    rule: str, model: ProjectModel, module: str, lineno: int, message: str
) -> Finding:
    info = model.modules[module]
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=info.relpath,
        line=lineno,
        col=0,
        message=message,
        snippet=info.source_line(lineno).strip(),
    )


def _runtime_edges(model: ProjectModel) -> list[ImportEdge]:
    edges = []
    for name in sorted(model.modules):
        for edge in model.modules[name].imports:
            if not edge.typing_only:
                edges.append(edge)
    return edges


def check_cycles(model: ProjectModel) -> list[Finding]:
    """ARCH001: strongly connected components of the runtime import graph."""
    graph: dict[str, set[str]] = {name: set() for name in model.modules}
    for edge in _runtime_edges(model):
        graph[edge.src].add(edge.dst)

    # Tarjan's SCC, iterative (the module graph is small but recursion
    # depth should not depend on program shape).
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for start in sorted(graph):
        if start in index_of:
            continue
        work: list[tuple[str, list[str], int]] = [
            (start, sorted(graph[start]), 0)
        ]
        index_of[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, succs, i = work.pop()
            advanced = False
            while i < len(succs):
                succ = succs[i]
                i += 1
                if succ not in index_of:
                    work.append((node, succs, i))
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph[succ]), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            if low[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    findings: list[Finding] = []
    for scc in sorted(sccs):
        members = set(scc)
        label = " <-> ".join(scc)
        for edge in _runtime_edges(model):
            if edge.src in members and edge.dst in members:
                findings.append(
                    _finding(
                        "ARCH001",
                        model,
                        edge.src,
                        edge.lineno,
                        f"import of {edge.dst} participates in an import "
                        f"cycle ({label}); break the cycle by moving the "
                        "shared pieces into the lower layer",
                    )
                )
    return findings


def check_layering(
    model: ProjectModel, manifest: ArchitectureManifest
) -> list[Finding]:
    """ARCH002/ARCH003: undeclared cross-layer imports, unknown layers."""
    findings: list[Finding] = []
    for name in sorted(model.modules):
        layer = manifest.layer_of(name)
        if layer is None:
            findings.append(
                _finding(
                    "ARCH003",
                    model,
                    name,
                    1,
                    f"module {name} belongs to no declared layer; add its "
                    "subpackage to docs/architecture.toml with the layers "
                    "it may import",
                )
            )
            continue
        for edge in model.modules[name].imports:
            if edge.typing_only:
                continue
            dst_layer = manifest.layer_of(edge.dst)
            if dst_layer is None:
                continue  # ARCH003 already fires on the module itself
            if not manifest.allowed(layer, dst_layer):
                direction = (
                    "imports the application shell"
                    if dst_layer == "__toplevel__"
                    else f"imports layer '{dst_layer}'"
                )
                findings.append(
                    _finding(
                        "ARCH002",
                        model,
                        name,
                        edge.lineno,
                        f"layer '{layer}' {direction} "
                        f"({edge.dst}), which docs/architecture.toml does "
                        "not allow; move the shared code down a layer or "
                        "declare the edge in the manifest",
                    )
                )
    return findings

"""PAR rules: process-boundary safety for pool-submitted work.

The repo's parallelism is fork-based ``ProcessPoolExecutor`` fan-out
(routing batch convergence, supervised dataset builds).  Its bit-identity
promise survives only if what crosses the process boundary is a
module-level callable with picklable, state-free arguments — the static
analogue of a race detector for our parallel call-sites:

* **PAR001** — the submitted callable (or pool ``initializer``) must
  resolve to a module-level function.  Lambdas, defs nested in the
  submitting function, and bound methods either fail to pickle or drag
  an entire captured object graph into the worker.  Callables forwarded
  through parameters (``supervisor.run(task, ...)``) are traced to the
  call sites that supply them, across functions and methods.
* **PAR002** — submitted arguments must not reference tracers, metrics,
  or locks.  A fork-inherited ``Tracer``/``Metrics`` silently bifurcates
  (worker spans never reach the parent), and a pickled lock guards
  nothing.
* **PAR003** — code reachable from a worker callable must not mutate
  module globals (``global X`` plus assignment).  Worker-global state
  diverges from the coordinator's and from other workers', making
  results depend on which process ran what.  Deliberate per-process
  protocols (fault-plan activation, capture swaps) carry an inline
  justified ignore.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.quality.findings import Finding, Severity
from repro.quality.graph.model import FunctionInfo, ModuleInfo, ProjectModel

#: Dotted names that construct a process pool.
_POOL_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}

#: Pool methods that take a worker callable as their first argument.
_SUBMIT_METHODS = {"submit", "map", "imap", "imap_unordered", "apply_async"}

#: Resolved dotted-name suffixes that must never cross a fork as an
#: argument (PAR002).
_FORBIDDEN_CAPTURES = (
    "repro.obs.tracer.Tracer",
    "repro.obs.metrics.Metrics",
    "repro.obs.runtime.Capture",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
)

#: How many parameter-forwarding hops to trace when resolving a
#: submitted callable back to its definition.
_MAX_FORWARD_DEPTH = 6


@dataclass(frozen=True, slots=True)
class _SubmitSite:
    """One pool call-site handing a callable to worker processes."""

    module: str
    function: FunctionInfo
    call: ast.Call
    callable_expr: ast.expr
    arg_exprs: tuple[ast.expr, ...]
    kind: str  # "submit" or "initializer"


def _finding(
    model: ProjectModel,
    rule: str,
    module: str,
    node: ast.AST,
    message: str,
) -> Finding:
    info = model.modules[module]
    lineno = getattr(node, "lineno", 1)
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=info.relpath,
        line=lineno,
        col=getattr(node, "col_offset", 0),
        message=message,
        snippet=info.source_line(lineno).strip(),
    )


def _pool_locals(info: ModuleInfo, fn: FunctionInfo) -> set[str]:
    """Local names in ``fn`` bound to a process pool.

    Covers ``pool = ProcessPoolExecutor(...)`` (tracked in local_types)
    and ``with ProcessPoolExecutor(...) as pool:``.
    """
    names = {
        local
        for local, dotted in fn.local_types.items()
        if dotted in _POOL_CONSTRUCTORS
    }
    if fn.node is None:
        return names
    for node in ast.walk(fn.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and info.resolve(ctx.func) in _POOL_CONSTRUCTORS
                and isinstance(item.optional_vars, ast.Name)
            ):
                names.add(item.optional_vars.id)
    return names


def find_submit_sites(model: ProjectModel) -> list[_SubmitSite]:
    """Every pool ``submit``/``map`` call and pool ``initializer=``."""
    sites: list[_SubmitSite] = []
    for name in sorted(model.modules):
        info = model.modules[name]
        fns = list(info.functions.values()) + list(info.methods.values())
        for fn in fns:
            if fn.node is None:
                continue
            pools = _pool_locals(info, fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                # pool.submit(worker, *args) on a known pool local.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pools
                    and node.args
                ):
                    sites.append(
                        _SubmitSite(
                            module=name,
                            function=fn,
                            call=node,
                            callable_expr=node.args[0],
                            arg_exprs=tuple(node.args[1:]),
                            kind="submit",
                        )
                    )
                # ProcessPoolExecutor(..., initializer=fn, initargs=...)
                if (
                    info.resolve(node.func) in _POOL_CONSTRUCTORS
                ):
                    for kw in node.keywords:
                        if kw.arg == "initializer" and kw.value is not None:
                            sites.append(
                                _SubmitSite(
                                    module=name,
                                    function=fn,
                                    call=node,
                                    callable_expr=kw.value,
                                    arg_exprs=(),
                                    kind="initializer",
                                )
                            )
    return sites


def _resolve_method_target(
    model: ProjectModel, info: ModuleInfo, fn: FunctionInfo, call: ast.Call
) -> FunctionInfo | None:
    """The FunctionInfo a call resolves to, if it is project-local."""
    func = call.func
    if isinstance(func, ast.Name):
        dotted = info.resolve(func)
        if dotted is None:
            return None
        return model.function(dotted) or (
            model.function(f"{info.name}.{dotted}")
            if "." not in dotted
            else None
        )
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name) and base.id == "self":
            cls = fn.qualname.split(":", 1)[1].rsplit(".", 1)[0]
            return model._method_on_class(info, cls, func.attr)
        if isinstance(base, ast.Name) and base.id in fn.local_types:
            cls_dotted = fn.local_types[base.id]
            cls_mod = model.module_of(cls_dotted)
            if cls_mod is not None and cls_dotted != cls_mod:
                cls_name = cls_dotted[len(cls_mod) + 1 :]
                return model._method_on_class(
                    model.modules[cls_mod], cls_name, func.attr
                )
        dotted = info.resolve(func)
        if dotted is not None:
            return model.function(dotted)
    return None


def _callers_passing_param(
    model: ProjectModel, target: FunctionInfo, param: str
) -> list[tuple[ModuleInfo, FunctionInfo, ast.Call, ast.expr]]:
    """Call sites of ``target`` with the expression bound to ``param``.

    Methods are matched through ``self.name(...)``, typed locals, and
    plain/module-qualified calls; the binding honors both positional
    order (skipping ``self``) and keyword use.
    """
    try:
        pos = target.params.index(param)
    except ValueError:
        return []
    is_method = bool(target.params) and target.params[0] in {"self", "cls"}
    out = []
    for name in sorted(model.modules):
        info = model.modules[name]
        fns = list(info.functions.values()) + list(info.methods.values())
        for fn in fns:
            for _dotted, call in fn.calls:
                resolved = _resolve_method_target(model, info, fn, call)
                if resolved is not target:
                    continue
                expr: ast.expr | None = None
                for kw in call.keywords:
                    if kw.arg == param:
                        expr = kw.value
                effective_pos = pos - (1 if is_method else 0)
                if expr is None and 0 <= effective_pos < len(call.args):
                    candidate = call.args[effective_pos]
                    if not isinstance(candidate, ast.Starred):
                        expr = candidate
                if expr is not None:
                    out.append((info, fn, call, expr))
    return out


def _classify_callable(
    model: ProjectModel,
    info: ModuleInfo,
    fn: FunctionInfo,
    expr: ast.expr,
    origin: _SubmitSite,
    findings: list[Finding],
    depth: int = 0,
    seen: set[str] | None = None,
) -> list[FunctionInfo]:
    """Validate one submitted-callable expression; return worker entries.

    Emits PAR001 findings for lambdas/closures/bound methods at the
    site that supplies the bad callable; returns the resolved
    module-level worker functions for reachability analysis.
    """
    where = (
        "pool initializer" if origin.kind == "initializer" else "process pool"
    )
    if isinstance(expr, ast.Lambda):
        findings.append(
            _finding(
                model,
                "PAR001",
                info.name,
                expr,
                f"lambda submitted to a {where} cannot be pickled by "
                "reference; define a module-level worker function",
            )
        )
        return []
    if isinstance(expr, ast.Name):
        local = expr.id
        if local in fn.local_defs:
            findings.append(
                _finding(
                    model,
                    "PAR001",
                    info.name,
                    expr,
                    f"'{local}' is defined inside {fn.name}() and closes "
                    f"over its locals; a {where} worker must be a "
                    "module-level function",
                )
            )
            return []
        if local in fn.params:
            if depth >= _MAX_FORWARD_DEPTH:
                return []
            key = f"{fn.qualname}:{local}"
            seen = seen or set()
            if key in seen:
                return []
            seen.add(key)
            workers: list[FunctionInfo] = []
            for c_info, c_fn, _call, c_expr in _callers_passing_param(
                model, fn, local
            ):
                workers.extend(
                    _classify_callable(
                        model,
                        c_info,
                        c_fn,
                        c_expr,
                        origin,
                        findings,
                        depth + 1,
                        seen,
                    )
                )
            return workers
        dotted = info.resolve(expr)
        if dotted is not None:
            target = model.function(dotted) or model.function(
                f"{info.name}.{dotted}" if "." not in dotted else dotted
            )
            if target is not None:
                if target.nested:
                    findings.append(
                        _finding(
                            model,
                            "PAR001",
                            info.name,
                            expr,
                            f"'{local}' resolves to a nested function; a "
                            f"{where} worker must be module-level",
                        )
                    )
                    return []
                return [target]
        return []
    if isinstance(expr, ast.Attribute):
        dotted = info.resolve(expr)
        if dotted is not None:
            mod = model.module_of(dotted)
            if mod is not None and dotted != mod:
                rest = dotted[len(mod) + 1 :]
                if "." not in rest:
                    # module.function through a module alias: module-level.
                    target = model.function(dotted)
                    if target is not None and not target.nested:
                        return [target]
        base = expr.value
        if isinstance(base, ast.Name) and (
            base.id == "self" or base.id in fn.local_types or base.id in fn.params
        ):
            findings.append(
                _finding(
                    model,
                    "PAR001",
                    info.name,
                    expr,
                    f"bound method '{ast.unparse(expr)}' submitted to a "
                    f"{where} pickles its whole instance into the worker; "
                    "submit a module-level function taking plain data",
                )
            )
            return []
        # Attribute on a module alias that didn't resolve to a project
        # function (stdlib or third-party callable): out of scope.
        return []
    return []


def _check_arg_captures(
    model: ProjectModel, site: _SubmitSite, findings: list[Finding]
) -> None:
    """PAR002: forbidden objects referenced by submitted arguments."""
    info = model.modules[site.module]
    fn = site.function
    for arg in site.arg_exprs:
        for sub in ast.walk(arg):
            dotted: str | None = None
            if isinstance(sub, ast.Name):
                dotted = fn.local_types.get(sub.id)
            elif isinstance(sub, (ast.Attribute, ast.Call)):
                target = sub.func if isinstance(sub, ast.Call) else sub
                dotted = info.resolve(target)
            if dotted is None:
                continue
            for forbidden in _FORBIDDEN_CAPTURES:
                if dotted == forbidden or dotted.endswith("." + forbidden):
                    findings.append(
                        _finding(
                            model,
                            "PAR002",
                            site.module,
                            arg,
                            f"argument references {dotted} across the "
                            "process boundary; tracers/metrics/locks must "
                            "stay in the coordinating process (export a "
                            "blob and graft it instead)",
                        )
                    )
                    break


def _reachable_functions(
    model: ProjectModel, entries: list[FunctionInfo]
) -> list[FunctionInfo]:
    """Project-local functions reachable from the worker entry points."""
    seen: dict[str, FunctionInfo] = {}
    frontier = list(entries)
    while frontier:
        fn = frontier.pop()
        if fn.qualname in seen:
            continue
        seen[fn.qualname] = fn
        info = model.modules.get(fn.module)
        if info is None:
            continue
        for _dotted, call in fn.calls:
            target = _resolve_method_target(model, info, fn, call)
            if target is not None and target.qualname not in seen:
                frontier.append(target)
    return sorted(seen.values(), key=lambda f: f.qualname)


def check_process_safety(model: ProjectModel) -> list[Finding]:
    """Run PAR001/PAR002/PAR003 over every pool call-site."""
    findings: list[Finding] = []
    workers: dict[str, FunctionInfo] = {}
    sites = find_submit_sites(model)
    for site in sites:
        info = model.modules[site.module]
        resolved = _classify_callable(
            model, info, site.function, site.callable_expr, site, findings
        )
        if site.kind == "submit":
            # Initializers exist to set per-process state, so only the
            # submitted task's reachable code is held to PAR003.
            for worker in resolved:
                workers[worker.qualname] = worker
        _check_arg_captures(model, site, findings)
    for fn in _reachable_functions(model, sorted(workers.values(), key=lambda f: f.qualname)):
        for global_name, lineno in fn.global_writes:
            findings.append(
                _finding(
                    model,
                    "PAR003",
                    fn.module,
                    _LineAnchor(lineno),
                    f"{fn.name}() is reachable from a pool worker and "
                    f"rebinds module global '{global_name}'; worker-side "
                    "global state diverges across processes — pass state "
                    "as arguments or return it",
                )
            )
    return findings


class _LineAnchor:
    """Minimal AST-node stand-in carrying just a location."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset

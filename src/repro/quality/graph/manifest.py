"""The architecture manifest: the intended layer DAG, checked in.

``docs/architecture.toml`` declares which subpackage ("layer") of the
program may import which others.  The ARCH rules enforce it: an import
from a layer to one not in its ``deps`` list is an upward or undeclared
dependency, and the declared graph itself must be acyclic (a cyclic
manifest would make the check vacuous).

Keeping the manifest in a reviewed file — rather than hardcoding the DAG
in the rule — makes architectural drift an explicit diff: adding a new
dependency edge means editing ``architecture.toml`` in the same PR, where
a reviewer sees it.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: Manifest location relative to the analysis root.
DEFAULT_MANIFEST = "docs/architecture.toml"


class ManifestError(ValueError):
    """Raised for a missing, unparseable, or cyclic manifest."""


@dataclass(slots=True)
class ArchitectureManifest:
    """Declared layering for one top-level package.

    Attributes:
        package: The program's top-level package ("repro").
        layers: Layer name (subpackage under the top-level package) ->
            set of layer names it may import.
        toplevel: Top-of-the-world modules directly under the package
            (``cli``, ``api``, the package ``__init__``) that may import
            any layer — the application shell the DAG converges into.
    """

    package: str
    layers: dict[str, set[str]] = field(default_factory=dict)
    toplevel: set[str] = field(default_factory=set)

    def layer_of(self, module: str) -> str | None:
        """The layer a dotted module name belongs to.

        ``repro.routing.bgp`` -> ``routing``; ``repro.cli`` and the
        package root map to None only when unlisted (unknown layer).
        """
        parts = module.split(".")
        if parts[0] != self.package:
            return None
        if len(parts) == 1:
            return "__toplevel__"
        if parts[1] in self.layers:
            return parts[1]
        if parts[1] in self.toplevel:
            return "__toplevel__"
        return None

    def allowed(self, src_layer: str, dst_layer: str) -> bool:
        """Whether an import from ``src_layer`` to ``dst_layer`` is declared."""
        if src_layer == dst_layer or src_layer == "__toplevel__":
            return True
        if dst_layer == "__toplevel__":
            # Layers importing the application shell would invert the DAG.
            return False
        return dst_layer in self.layers.get(src_layer, set())

    def check_acyclic(self) -> None:
        """Raise :class:`ManifestError` if the declared DAG has a cycle."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {layer: WHITE for layer in self.layers}

        def visit(layer: str, stack: list[str]) -> None:
            color[layer] = GRAY
            stack.append(layer)
            for dep in sorted(self.layers.get(layer, set())):
                if dep not in color:
                    continue
                if color[dep] == GRAY:
                    cycle = " -> ".join(stack[stack.index(dep) :] + [dep])
                    raise ManifestError(
                        f"architecture manifest declares a cyclic layer "
                        f"dependency: {cycle}"
                    )
                if color[dep] == WHITE:
                    visit(dep, stack)
            stack.pop()
            color[layer] = BLACK

        for layer in sorted(self.layers):
            if color[layer] == WHITE:
                visit(layer, [])


def load_manifest(path: Path) -> ArchitectureManifest:
    """Load and validate an architecture manifest file."""
    if not path.is_file():
        raise ManifestError(
            f"architecture manifest not found: {path} "
            "(repro check --deep needs the declared layer DAG)"
        )
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise ManifestError(f"unreadable manifest {path}: {exc}") from exc
    package = data.get("package")
    if not isinstance(package, str) or not package:
        raise ManifestError(f"manifest {path} must set package = \"<name>\"")
    raw_layers = data.get("layers")
    if not isinstance(raw_layers, dict) or not raw_layers:
        raise ManifestError(f"manifest {path} must declare a [layers] table")
    layers: dict[str, set[str]] = {}
    for name, deps in raw_layers.items():
        if not isinstance(deps, list) or not all(
            isinstance(d, str) for d in deps
        ):
            raise ManifestError(
                f"manifest {path}: layers.{name} must be a list of layer names"
            )
        layers[name] = set(deps)
    for name, deps in sorted(layers.items()):
        unknown = sorted(deps - set(layers))
        if unknown:
            raise ManifestError(
                f"manifest {path}: layers.{name} depends on undeclared "
                f"layer(s) {', '.join(unknown)}"
            )
    toplevel = set(data.get("toplevel", {}).get("modules", []))
    manifest = ArchitectureManifest(
        package=package, layers=layers, toplevel=toplevel
    )
    manifest.check_acyclic()
    return manifest

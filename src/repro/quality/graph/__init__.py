"""Whole-program analysis: the project model and the deep rule families.

Where :mod:`repro.quality.rules` checks one file at a time, this package
parses all of ``src/repro`` once into a :class:`ProjectModel` (module
table, import graph, per-function call/symbol summaries) and runs three
rule families that need the whole program in view:

* **ARCH** — the intended layer DAG, declared in
  ``docs/architecture.toml``: no import cycles, no upward or undeclared
  cross-layer imports.
* **PAR**  — process-boundary safety for everything submitted to a
  ``ProcessPoolExecutor``: worker callables must be module-level,
  submitted arguments must not smuggle tracers/metrics/locks across the
  fork, and worker-reachable code must not mutate module globals.
* **PERF** — hot-path purity for ``# hotpath``-marked kernels: no
  per-element Python loops over arrays, no scalar RNG draws in loops,
  no allocation inside loops.

Surfaced as ``repro check --deep``; findings flow through the same
baseline / ``# repro: ignore[RULE]`` / reporter machinery as the
per-file rules.
"""

from repro.quality.graph.analyzer import (
    DEEP_RULES,
    analyze_project,
    project_digest,
)
from repro.quality.graph.manifest import (
    ArchitectureManifest,
    ManifestError,
    load_manifest,
)
from repro.quality.graph.model import (
    FunctionInfo,
    ImportEdge,
    ModuleInfo,
    ProjectModel,
    build_project_model,
)

__all__ = [
    "ArchitectureManifest",
    "DEEP_RULES",
    "FunctionInfo",
    "ImportEdge",
    "ManifestError",
    "ModuleInfo",
    "ProjectModel",
    "analyze_project",
    "build_project_model",
    "load_manifest",
    "project_digest",
]

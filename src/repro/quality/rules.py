"""The determinism-and-invariant rule set.

Every rule is an AST check registered in :data:`RULES`.  Rules are
deliberately project-specific: they encode the coding discipline that the
bit-identity promise of the simulation substrate rests on (derived
``np.random.default_rng((seed, tag))`` streams, no wall-clock or
set-ordering leakage into results) rather than general style.

Rules receive a :class:`FileContext` -- the parsed tree plus an import
alias map -- and return :class:`~repro.quality.findings.Finding` lists.
A rule only runs on files matching its ``scopes`` path prefixes (empty
scopes = every file).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.quality.findings import Finding, Severity

#: Bumped whenever a rule's behavior changes, to invalidate result caches.
RULESET_VERSION = "2026.08.3"


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    relpath: str  # POSIX path relative to the analysis root
    tree: ast.AST
    lines: list[str]
    #: ``import numpy as np`` -> {"np": "numpy"}
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: ``from numpy.random import default_rng as rng`` ->
    #: {"rng": "numpy.random.default_rng"}
    imported_names: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, relpath: str, tree: ast.AST, lines: list[str]) -> "FileContext":
        ctx = cls(relpath=relpath, tree=tree, lines=lines)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    ctx.imported_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return ctx

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted module path.

        ``np.random.seed`` (with ``import numpy as np``) resolves to
        ``"numpy.random.seed"``; unresolvable chains return ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.imported_names:
            parts.append(self.imported_names[root])
        elif root in self.module_aliases:
            parts.append(self.module_aliases[root])
        else:
            parts.append(root)
        return ".".join(reversed(parts))

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class: subclass, fill the class attributes, implement check()."""

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: The determinism/invariant contract the rule protects (shown by
    #: ``--list-rules`` and quoted in docs/STATIC_ANALYSIS.md).
    protects: str = ""
    #: Path prefixes (relative to the analysis root) the rule applies to;
    #: empty tuple means every checked file.
    scopes: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        if not self.scopes:
            return True
        return any(relpath.startswith(scope) for scope in self.scopes)

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.relpath,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=ctx.source_line(lineno).strip(),
        )


#: Registry: rule id -> rule instance, populated by @register.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def _mentions_seed(node: ast.expr) -> bool:
    """True if any Name/Attribute inside ``node`` mentions a seed."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


_NUMPY_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@register
class NumpyGlobalRngRule(Rule):
    id = "RNG001"
    name = "numpy-global-rng"
    severity = Severity.ERROR
    description = (
        "np.random.seed() and module-level numpy draws (np.random.rand, "
        "np.random.choice, ...) use the hidden global BitGenerator."
    )
    protects = (
        "Bit-identity across serial/parallel runs: the global numpy stream "
        "is shared mutable state whose draw order depends on execution "
        "order; every stream must be an explicit Generator instance."
    )
    scopes = ()  # everywhere, tests included

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                if (
                    dotted
                    and dotted.startswith("numpy.random.")
                    and dotted.rsplit(".", 1)[1] not in _NUMPY_RNG_CONSTRUCTORS
                ):
                    what = dotted.replace("numpy.", "np.")
                    if dotted == "numpy.random.seed":
                        msg = (
                            f"{what}() mutates the process-global RNG; derive a "
                            "stream with np.random.default_rng((seed, tag)) instead"
                        )
                    else:
                        msg = (
                            f"{what}() draws from the process-global RNG; use an "
                            "explicit Generator derived from the run seed"
                        )
                    findings.append(self.finding(ctx, node, msg))
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module == "numpy.random"
                and not node.level
            ):
                for alias in node.names:
                    if alias.name not in _NUMPY_RNG_CONSTRUCTORS:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"importing {alias.name!r} from numpy.random pulls "
                                "in the global-stream API; import a Generator "
                                "constructor instead",
                            )
                        )
        return findings


@register
class StdlibRandomRule(Rule):
    id = "RNG002"
    name = "stdlib-random"
    severity = Severity.ERROR
    description = (
        "Module-level stdlib random draws (random.random, random.choice, "
        "random.seed, ...) and unseeded random.Random() instances."
    )
    protects = (
        "No hidden global entropy: simulation code may only construct "
        "random.Random(seed_expr) instances whose seed expression visibly "
        "derives from a configured seed."
    )
    scopes = ("src/repro/",)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                if dotted == "random.Random":
                    if not node.args and not node.keywords:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "random.Random() without a seed is entropy-seeded; "
                                "pass an expression derived from the run seed",
                            )
                        )
                    elif not any(_mentions_seed(arg) for arg in node.args) and not any(
                        arg.value is not None and _mentions_seed(arg.value)
                        for arg in node.keywords
                    ):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "random.Random(...) seed expression does not "
                                "reference a seed name; derive it from the "
                                "configured run seed",
                            )
                        )
                elif dotted and dotted.startswith("random.") and dotted.count(".") == 1:
                    func = dotted.split(".", 1)[1]
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"random.{func}() uses the interpreter-global stdlib "
                            "RNG; use a seeded random.Random instance",
                        )
                    )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module == "random"
                and not node.level
            ):
                for alias in node.names:
                    if alias.name != "Random":
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"importing {alias.name!r} from random exposes the "
                                "interpreter-global stream; import Random and seed "
                                "it explicitly",
                            )
                        )
        return findings


@register
class DerivedDefaultRngRule(Rule):
    id = "RNG003"
    name = "derived-default-rng"
    severity = Severity.ERROR
    description = (
        "Every np.random.default_rng(...) call in src/repro must seed from "
        "a tuple containing a seed-named value, e.g. default_rng((seed, 0xC0FFEE))."
    )
    protects = (
        "Independent, collision-free streams: tuple seeds (seed, tag, ...) "
        "feed SeedSequence so per-subsystem streams never alias, and every "
        "stream is traceable to the run seed."
    )
    scopes = ("src/repro/",)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve(node.func) != "numpy.random.default_rng":
                continue
            if not node.args:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "default_rng() without a seed is entropy-seeded and "
                        "non-reproducible; seed with (seed, tag)",
                    )
                )
            elif not isinstance(node.args[0], ast.Tuple):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "default_rng seed must be a tuple literal containing the "
                        "run seed, e.g. default_rng((seed, 0xTAG)) -- scalar "
                        "seed arithmetic risks stream collisions",
                    )
                )
            elif not _mentions_seed(node.args[0]):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "default_rng seed tuple does not reference a seed name; "
                        "derive it from the configured run seed",
                    )
                )
        return findings


#: Clock-reading callables flagged by TIME001 (resolved dotted names).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules allowed to read clocks, with the justification recorded here so
#: the allowlist is itself reviewable.  Everything else in src/repro must
#: take time from the simulation clock or as an explicit parameter.
WALL_CLOCK_ALLOWLIST: dict[str, str] = {
    "src/repro/datasets/io.py": (
        "cache-lock staleness and ownership timestamps are operational "
        "metadata, never dataset content"
    ),
    "src/repro/obs/clock.py": (
        "the observability layer's single monotonic time source; every "
        "other module takes durations from repro.obs.clock.now so timing "
        "stays reporting output, never dataset content"
    ),
}


@register
class WallClockRule(Rule):
    id = "TIME001"
    name = "wall-clock"
    severity = Severity.ERROR
    description = (
        "time.time()/time.monotonic()/datetime.now() and friends outside "
        "the io/instrumentation module allowlist."
    )
    protects = (
        "Run-to-run identity: results may depend only on (seed, scale), "
        "never on when the run happened; simulation time comes from "
        "repro.netsim.clock."
    )
    scopes = ("src/repro/",)

    def applies(self, relpath: str) -> bool:
        if relpath in WALL_CLOCK_ALLOWLIST:
            return False
        return super().applies(relpath)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted in _CLOCK_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{dotted}() reads the wall clock; results must depend "
                        "only on (seed, scale) -- take time as a parameter or "
                        "add this module to WALL_CLOCK_ALLOWLIST with a reason",
                    )
                )
        return findings


def _is_set_expr(node: ast.expr, ctx: FileContext) -> bool:
    """Syntactic set-typed expression detection (no dataflow)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = ctx.resolve(node.func)
        if dotted in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return _is_set_expr(node.func.value, ctx)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, ctx) or _is_set_expr(node.right, ctx)
    return False


@register
class UnorderedIterationRule(Rule):
    id = "ORD001"
    name = "unordered-iteration"
    severity = Severity.ERROR
    description = (
        "A set expression consumed directly by list()/tuple()/enumerate()/"
        "str.join()/a list comprehension without sorted() in between."
    )
    protects = (
        "Stable result ordering: set iteration order varies with insertion "
        "history and PYTHONHASHSEED, so any ordered structure built from a "
        "set must go through sorted()."
    )
    scopes = (
        "src/repro/core/",
        "src/repro/routing/",
        "src/repro/topology/",
        "src/repro/datasets/",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            consumed: ast.expr | None = None
            how = ""
            if isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                if dotted in {"list", "tuple", "enumerate"} and node.args:
                    consumed, how = node.args[0], f"{dotted}()"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                ):
                    consumed, how = node.args[0], "str.join()"
            elif isinstance(node, ast.ListComp):
                consumed, how = node.generators[0].iter, "a list comprehension"
            if consumed is not None and _is_set_expr(consumed, ctx):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"set iteration order leaks into {how}; wrap the set in "
                        "sorted(...) before building ordered output",
                    )
                )
        return findings


@register
class FloatEqualityRule(Rule):
    id = "NUM001"
    name = "float-equality"
    severity = Severity.ERROR
    description = (
        "== / != against a nonzero float literal in numeric analysis code."
    )
    protects = (
        "Numeric robustness: round-tripped floats rarely compare equal to "
        "decimal literals; use math.isclose / np.isclose or an explicit "
        "tolerance.  Exact comparison against 0.0 (a degenerate-case guard) "
        "is IEEE-exact and allowed."
    )
    scopes = (
        "src/repro/core/",
        "src/repro/netsim/",
        "src/repro/measurement/",
        "src/repro/routing/",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and side.value != 0.0
                    ):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"float equality against {side.value!r}; use "
                                "math.isclose()/np.isclose() or an explicit "
                                "tolerance",
                            )
                        )
                        break
        return findings


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "collections.defaultdict"})


@register
class MutableDefaultRule(Rule):
    id = "DEF001"
    name = "mutable-default-arg"
    severity = Severity.ERROR
    description = "A list/dict/set literal or constructor as a default argument."
    protects = (
        "Call-order independence: a mutable default is shared across calls, "
        "so results come to depend on how many times (and in what order) a "
        "function ran."
    )
    scopes = ()

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                bad = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and ctx.resolve(default.func) in _MUTABLE_CALLS
                )
                if bad:
                    findings.append(
                        self.finding(
                            ctx,
                            default,
                            "mutable default argument is shared across calls; "
                            "default to None and construct inside the function",
                        )
                    )
        return findings


@register
class OverbroadExceptRule(Rule):
    id = "EXC001"
    name = "overbroad-except"
    severity = Severity.ERROR
    description = (
        "bare except / except Exception / except BaseException without a "
        "'# justified: <why>' comment on the except line."
    )
    protects = (
        "Fail-loud invariants: a blanket handler silently converts "
        "determinism bugs (and every other bug) into wrong-but-plausible "
        "results; catch the concrete exceptions the block can raise, as "
        "experiments/scorecard.py does."
    )
    scopes = ("src/repro/",)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type, ctx)
            if broad is None:
                continue
            if "# justified:" in ctx.source_line(node.lineno):
                continue
            label = "bare except" if broad == "" else f"except {broad}"
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"{label} swallows unrelated failures; catch the concrete "
                    "exceptions this block can raise, or append "
                    "'# justified: <why>'",
                )
            )
        return findings

    @staticmethod
    def _broad_name(type_node: ast.expr | None, ctx: FileContext) -> str | None:
        """Return the broad exception's name, '' for bare except, else None."""
        if type_node is None:
            return ""
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for cand in candidates:
            if ctx.resolve(cand) in {"Exception", "BaseException"}:
                return ctx.resolve(cand)
        return None


@register
class SaltedHashRule(Rule):
    id = "HASH001"
    name = "salted-builtin-hash"
    severity = Severity.ERROR
    description = (
        "builtin hash() outside a __hash__ method in result-producing code."
    )
    protects = (
        "Cross-process identity: str/bytes hash() is salted per process "
        "(PYTHONHASHSEED), so hash-derived keys or ordering differ between "
        "runs and between pool workers; use hashlib for content keys."
    )
    scopes = (
        "src/repro/core/",
        "src/repro/routing/",
        "src/repro/topology/",
        "src/repro/datasets/",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        self._visit(ctx.tree, ctx, findings, inside_hash_method=False)
        return findings

    def _visit(
        self,
        node: ast.AST,
        ctx: FileContext,
        findings: list[Finding],
        inside_hash_method: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inside_hash_method = node.name == "__hash__"
        elif (
            isinstance(node, ast.Call)
            and ctx.resolve(node.func) == "hash"
            and not inside_hash_method
        ):
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "builtin hash() is salted per process for str/bytes; use "
                    "hashlib (content hashing) or a __hash__-based container",
                )
            )
        for child in ast.iter_child_nodes(node):
            self._visit(child, ctx, findings, inside_hash_method)

"""Render reproduced figures (:class:`FigureResult`) to SVG files.

:func:`render_figure` dispatches on the figure name: CDF figures become
step-curve charts with the paper's axis ranges, Figures 7/8 add error
bars, Figure 14 becomes a log-log scatter, and Figure 16 a scatter with
the y = x guide line.  :func:`render_all` writes one ``.svg`` per figure.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.experiments.figures import FigureResult
from repro.viz.svg import SVGChart, cdf_chart

#: Paper-style x ranges per figure (data units); None = auto.
FIGURE_X_RANGES: dict[str, tuple[float, float] | None] = {
    "figure1": (-100.0, 150.0),
    "figure2": (0.0, 3.0),
    "figure3": (-0.05, 0.15),
    "figure4": (-100.0, 200.0),
    "figure5": (0.0, 6.0),
    "figure6": (-100.0, 150.0),
    "figure7": (-100.0, 150.0),
    "figure8": (-0.05, 0.15),
    "figure9": (-100.0, 150.0),
    "figure10": (-0.05, 0.15),
    "figure11": (-100.0, 150.0),
    "figure12": (-100.0, 150.0),
    "figure13": (0.0, 250.0),
    "figure15": (-100.0, 150.0),
}

#: X-axis captions per figure.
FIGURE_X_LABELS: dict[str, str] = {
    "figure1": "Round-trip latency (ms)",
    "figure2": "Relative round-trip latency",
    "figure3": "Drop rate",
    "figure4": "Bandwidth (kB/s)",
    "figure5": "Relative bandwidth",
    "figure6": "Round-trip latency (ms)",
    "figure7": "Round-trip latency (ms)",
    "figure8": "Loss rate",
    "figure9": "Round-trip latency (ms)",
    "figure10": "Drop rate",
    "figure11": "Round-trip latency (ms)",
    "figure12": "Round-trip latency (ms)",
    "figure13": "Normalized improvement contribution",
    "figure15": "Round-trip latency (ms)",
}


class RenderError(RuntimeError):
    """Raised when a figure cannot be rendered."""


def _cdf_figure(fig: FigureResult) -> SVGChart:
    if not fig.series:
        raise RenderError(f"{fig.name} has no series to render")
    return cdf_chart(
        fig.series,
        title=fig.title,
        x_label=FIGURE_X_LABELS.get(fig.name, "value"),
        x_range=FIGURE_X_RANGES.get(fig.name),
    )


def _ci_figure(fig: FigureResult) -> SVGChart:
    chart = _cdf_figure(fig)
    series = fig.series[0]
    lows = np.asarray(fig.data["ci_low"])
    highs = np.asarray(fig.data["ci_high"])
    # Every eighth point gets an error bar, as in the paper.
    idx = np.arange(0, series.x.size, 8)
    chart.add_error_bars(
        series.x[idx], series.y[idx], lows[idx], highs[idx]
    )
    return chart


def _figure14(fig: FigureResult) -> SVGChart:
    points = fig.data["points"]
    if not points:
        raise RenderError("figure14 has no AS points")
    chart = SVGChart(
        title=fig.title,
        x_label="Default paths containing AS (log10(1+n))",
        y_label="Alternate paths containing AS (log10(1+n))",
    )
    xs = [math.log10(1 + p.direct) for p in points]
    ys = [math.log10(1 + p.alternate) for p in points]
    hi = max(*xs, *ys, 1.0) * 1.05
    chart.set_x_range(0.0, hi)
    chart.set_y_range(0.0, hi)
    chart.add_diagonal()
    chart.add_scatter(xs, ys, "autonomous systems")
    return chart


def _figure16(fig: FigureResult) -> SVGChart:
    points = fig.data["points"]
    if not points:
        raise RenderError("figure16 has no decomposition points")
    chart = SVGChart(
        title=fig.title,
        x_label="Total round-trip latency improvement (ms)",
        y_label="Propagation delay improvement (ms)",
    )
    xs = [p.total_improvement for p in points]
    ys = [p.prop_improvement for p in points]
    span = max(abs(min(xs)), abs(max(xs)), abs(min(ys)), abs(max(ys)), 1.0)
    span = min(span, 300.0)
    chart.set_x_range(-span, span)
    chart.set_y_range(-span, span)
    chart.add_vertical_rule(0.0)
    chart.add_diagonal()
    chart.add_scatter(xs, ys, "host pairs")
    return chart


def render_figure(fig: FigureResult) -> SVGChart:
    """Build the SVG chart for one reproduced figure.

    Raises:
        RenderError: when the figure carries nothing renderable.
    """
    if fig.name in ("figure7", "figure8"):
        return _ci_figure(fig)
    if fig.name == "figure14":
        return _figure14(fig)
    if fig.name == "figure16":
        return _figure16(fig)
    return _cdf_figure(fig)


def render_all(
    figures: dict[str, FigureResult], out_dir: str | Path
) -> list[Path]:
    """Render every figure to ``out_dir``; returns the written paths.

    Figures that cannot be rendered (no data at this scale) are skipped.
    """
    out_dir = Path(out_dir)
    written: list[Path] = []
    for name, fig in sorted(figures.items()):
        try:
            chart = render_figure(fig)
        except RenderError:
            continue
        written.append(chart.save(out_dir / f"{name}.svg"))
    return written

"""Reproduction of the paper's Tables 1, 2, and 3.

Each function takes the dataset suite (from
:func:`repro.experiments.runner.provision_datasets`) and returns structured rows
plus a rendered text block matching the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import analyze
from repro.core.graph import Metric
from repro.core.stats import Comparison
from repro.datasets.builders import table1_order
from repro.datasets.dataset import Dataset
from repro.experiments.report import render_table

#: Datasets whose RTT/loss figures the paper's Tables 2/3 cover, in the
#: paper's column order.
TTEST_DATASETS = ["UW1", "UW3", "D2-NA", "D2"]


@dataclass(frozen=True, slots=True)
class TableResult:
    """A reproduced table: structured rows plus rendered text."""

    name: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def table1(datasets: dict[str, Dataset]) -> TableResult:
    """Table 1: dataset characteristics."""
    headers = (
        "Dataset",
        "Measurement method",
        "Year collected",
        "Duration",
        "Location",
        "Number of hosts",
        "Number of measurements",
        "Percent of paths covered",
    )
    rows = []
    for name in table1_order():
        if name not in datasets:
            continue
        row = datasets[name].table1_row()
        rows.append(
            (
                row["dataset"],
                row["method"],
                row["year"],
                row["duration"],
                row["location"],
                row["hosts"],
                row["measurements"],
                row["paths_covered_pct"],
            )
        )
    text = render_table(headers, rows, title="Table 1: dataset characteristics")
    return TableResult(name="table1", headers=headers, rows=tuple(rows), text=text)


def _ttest_table(
    datasets: dict[str, Dataset],
    metric: Metric,
    *,
    name: str,
    title: str,
    min_samples: int = 30,
    confidence: float = 0.95,
    include_zero: bool,
) -> TableResult:
    columns = [d for d in TTEST_DATASETS if d in datasets]
    percentages = {}
    for ds_name in columns:
        result = analyze(datasets[ds_name], metric, min_samples=min_samples)
        percentages[ds_name] = result.classification_percentages(confidence)
    categories = [
        ("Better", Comparison.BETTER),
        ("Indeterminate", Comparison.INDETERMINATE),
    ]
    if include_zero:
        categories.append(("Zero", Comparison.ZERO))
    categories.append(("Worse", Comparison.WORSE))
    headers = ("Alternate is", *columns)
    rows = tuple(
        (label, *(f"{percentages[c][cat]:.0f}%" for c in columns))
        for label, cat in categories
    )
    text = render_table(headers, rows, title=title)
    return TableResult(name=name, headers=headers, rows=rows, text=text)


def table2(
    datasets: dict[str, Dataset],
    *,
    min_samples: int = 30,
    confidence: float = 0.95,
) -> TableResult:
    """Table 2: round-trip-time t-test classification percentages."""
    return _ttest_table(
        datasets,
        Metric.RTT,
        name="table2",
        title=(
            "Table 2: percent of paths whose mean-RTT difference "
            f"(best alternate vs default) is signed at the {confidence:.0%} level"
        ),
        min_samples=min_samples,
        confidence=confidence,
        include_zero=False,
    )


def table3(
    datasets: dict[str, Dataset],
    *,
    min_samples: int = 30,
    confidence: float = 0.95,
) -> TableResult:
    """Table 3: loss-rate t-test classification percentages (with the
    'zero' row for pairs without any measured loss)."""
    return _ttest_table(
        datasets,
        Metric.LOSS,
        name="table3",
        title=(
            "Table 3: percent of paths whose mean-loss difference "
            f"(best alternate vs default) is signed at the {confidence:.0%} level"
        ),
        min_samples=min_samples,
        confidence=confidence,
        include_zero=True,
    )

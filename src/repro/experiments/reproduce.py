"""Command-line reproduction driver: regenerate every table and figure.

Usage::

    python -m repro.experiments.reproduce [--scale 1.0] [--seed 1999]
        [--jobs 4] [--routing-jobs 4] [--markdown out.md]
        [--svg-dir figures/] [--scorecard]
        [--only figure1,figure3,table2] [--fault-plan SPEC]
        [--build-timeout S] [--keep-going] [--resume] [--trace out.json]

Prints each table's rows and each figure's series summaries.  With
``--markdown`` additionally writes a paper-vs-measured report in the
EXPERIMENTS.md format; ``--svg-dir`` renders every figure to SVG;
``--scorecard`` grades the run against the paper's qualitative bands.

Robustness flags (see docs/ROBUSTNESS.md): ``--fault-plan`` injects a
deterministic failure schedule into the dataset build, ``--build-timeout``
bounds each group build attempt, ``--keep-going`` reproduces whatever the
surviving datasets support (marking the rest MISSING and exiting 3), and
``--resume`` skips groups a prior interrupted run already completed.

Exit codes: 0 success; 1 build/artifact failure; 2 bad usage (including a
malformed ``--fault-plan``); 3 partial success under ``--keep-going``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.datasets import BuildConfig, BuildReport
from repro.datasets.builders import BUILD_GROUPS
from repro.experiments.figures import ALL_FIGURES, FigureError, FigureResult
from repro.experiments.report import render_missing_datasets
from repro.experiments.runner import last_build_report, provision_datasets
from repro.experiments.tables import TableResult, table1, table2, table3
from repro.faults import BuildFailure, FaultPlanError
from repro.obs import clock
from repro.obs import runtime as obs

#: Headline expectations quoted from the paper's text, keyed by artifact.
PAPER_CLAIMS: dict[str, str] = {
    "table1": "8 datasets; 15-39 hosts; 86-100% paths covered",
    "table2": "better 20-32%, indeterminate 32-41%, worse 29-48%",
    "table3": "alternates rarely significantly worse on loss",
    "figure1": "30-55% of paths have a smaller-RTT alternate",
    "figure2": "~10% of paths: >=50% better latency (ratio > 1.5)",
    "figure3": "75-85% of paths have a lower-loss alternate",
    "figure4": "70-80% of paths have higher-bandwidth alternates",
    "figure5": ">=10-20% of paths: >=3x bandwidth improvement",
    "figure6": "mean-vs-median difference negligible",
    "figure7": "most paths have relatively tight RTT error bounds",
    "figure8": "loss error bounds are wider (binary samples)",
    "figure9": "effect at all times of day; strongest 06-12 PST",
    "figure10": "same for loss",
    "figure11": "simultaneous measurement: slightly more improvable pairs; unaveraged tail much broader",
    "figure12": "removing top-ten hosts does not collapse the effect",
    "figure13": "contribution distribution lacks a heavy tail",
    "figure14": "no AS class dominates defaults or alternates",
    "figure15": "propagation-only alternates still better for ~50%",
    "figure16": "group 6 >> group 3: many alternates avoid congestion",
}


def _figure_args(scale: float) -> dict[str, dict]:
    min_samples = max(4, int(round(30 * scale)))
    base = dict(min_samples=min_samples)
    return {
        "figure4": {},
        "figure5": {},
        "figure9": dict(min_samples=max(3, min_samples // 5)),
        "figure10": dict(min_samples=max(3, min_samples // 5)),
        "_default": base,
    }


def missing_datasets(report: BuildReport) -> list[str]:
    """Dataset names a partial (keep-going) build failed to provide."""
    names: set[str] = set()
    for group in report.failed_datasets:
        names.update(BUILD_GROUPS.get(group, (group,)))
    return sorted(names)


def run_all(
    scale: float,
    seed: int,
    only: set[str] | None = None,
    jobs: int | None = None,
    *,
    routing_jobs: int | None = None,
    fault_plan: str | None = None,
    build_timeout: float | None = None,
    keep_going: bool = False,
    resume: bool = False,
) -> dict[str, TableResult | FigureResult]:
    """Build (or load) the suite and run every selected artifact.

    With ``keep_going=True`` dataset groups that fail to build are left
    out: artifacts that tolerate a subset run on what survived, the rest
    are skipped with a MISSING banner, and the caller decides the exit
    code from :func:`repro.experiments.runner.last_build_report`.
    """
    with obs.span("experiments.reproduce") as rsp:
        rsp.set("seed", seed)
        rsp.set("scale", scale)
        report = BuildReport()
        datasets = provision_datasets(
            BuildConfig(seed=seed, scale=scale),
            jobs=jobs,
            routing_jobs=routing_jobs,
            report=report,
            fault_plan=fault_plan,
            build_timeout=build_timeout,
            keep_going=keep_going,
            resume=resume,
        )
        print(report.summary())
        missing = missing_datasets(report)
        if missing:
            print(render_missing_datasets(missing))
        min_samples = max(4, int(round(30 * scale)))
        artifacts: dict[str, TableResult | FigureResult] = {}
        artifact_jobs: list[tuple[str, object]] = [
            ("table1", lambda: table1(datasets)),
            ("table2", lambda: table2(datasets, min_samples=min_samples)),
            ("table3", lambda: table3(datasets, min_samples=min_samples)),
        ]
        fig_args = _figure_args(scale)
        for name, fn in ALL_FIGURES.items():
            kwargs = fig_args.get(name, fig_args["_default"])
            artifact_jobs.append(
                (name, lambda fn=fn, kwargs=kwargs: fn(datasets, **kwargs))
            )
        for name, job in artifact_jobs:
            if only and name not in only:
                continue
            start = clock.now()
            try:
                with obs.span("experiments.artifact") as sp:
                    sp.set("name", name)
                    artifacts[name] = job()
            except (FigureError, KeyError) as exc:
                if not missing:
                    raise
                print(f"\n=== {name} SKIPPED ({exc}) ===")
                continue
            obs.count("experiments.artifacts")
            print(f"\n=== {name} ({clock.now() - start:.1f}s) ===")
            print(artifacts[name].text)
        rsp.set("artifacts", len(artifacts))
    return artifacts


def write_markdown(
    artifacts: dict[str, TableResult | FigureResult],
    path: str,
    scale: float,
    seed: int,
    missing: Sequence[str] = (),
) -> None:
    """Write a paper-vs-measured markdown report."""
    lines = [
        "# Reproduction run",
        "",
        f"Generated by `python -m repro.experiments.reproduce --scale {scale:g} "
        f"--seed {seed}`.",
        "",
    ]
    if missing:
        lines += ["```", render_missing_datasets(missing), "```", ""]
    for name, artifact in artifacts.items():
        lines.append(f"## {name}")
        lines.append("")
        claim = PAPER_CLAIMS.get(name)
        if claim:
            lines.append(f"*Paper:* {claim}")
            lines.append("")
        lines.append("```")
        lines.append(artifact.text)
        lines.append("```")
        lines.append("")
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
    print(f"\nwrote {path}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="dataset build worker processes (default: one per CPU)",
    )
    parser.add_argument(
        "--routing-jobs",
        type=int,
        default=None,
        help="BGP batch-convergence worker processes per build "
        "(default: REPRO_ROUTING_JOBS or serial)",
    )
    parser.add_argument("--markdown", type=str, default=None)
    parser.add_argument(
        "--svg-dir",
        type=str,
        default=None,
        help="render every reproduced figure to SVG files in this directory",
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        help="comma-separated artifact names, e.g. figure1,table2",
    )
    parser.add_argument(
        "--scorecard",
        action="store_true",
        help="grade the run against the paper's qualitative bands",
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="deterministic fault-injection plan for the dataset build "
        "(spec string; see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--build-timeout",
        type=float,
        default=None,
        help="per-attempt deadline (seconds) for each dataset group build "
        "(default: REPRO_BUILD_TIMEOUT or unbounded)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="on a group build failure, reproduce what the surviving "
        "datasets support (exit 3) instead of aborting",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip dataset groups a prior interrupted run already completed "
        "(run ledger)",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write a RunTrace JSON (plus metrics.json alongside) for the "
        "run; inspect with `repro trace PATH`",
    )
    args = parser.parse_args(argv)
    only = set(args.only.split(",")) if args.only else None
    try:
        if args.trace:
            from repro.obs.artifact import write_run_trace

            with obs.capture() as cap:
                artifacts = run_all(
                    args.scale,
                    args.seed,
                    only,
                    jobs=args.jobs,
                    routing_jobs=args.routing_jobs,
                    fault_plan=args.fault_plan,
                    build_timeout=args.build_timeout,
                    keep_going=args.keep_going,
                    resume=args.resume,
                )
            meta = {
                "command": "reproduce",
                "seed": args.seed,
                "scale": args.scale,
                "jobs": args.jobs,
            }
            trace_path, metrics_path = write_run_trace(cap, meta, args.trace)
            print(f"wrote trace {trace_path} and {metrics_path}")
        else:
            artifacts = run_all(
                args.scale,
                args.seed,
                only,
                jobs=args.jobs,
                routing_jobs=args.routing_jobs,
                fault_plan=args.fault_plan,
                build_timeout=args.build_timeout,
                keep_going=args.keep_going,
                resume=args.resume,
            )
    except FaultPlanError as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return 2
    except BuildFailure as exc:
        print(f"dataset build failed: {exc}", file=sys.stderr)
        return 1
    build_report = last_build_report()
    missing = missing_datasets(build_report) if build_report is not None else []
    if args.markdown:
        write_markdown(
            artifacts, args.markdown, args.scale, args.seed, missing=missing
        )
    if args.svg_dir:
        from repro.experiments.figures import FigureResult
        from repro.experiments.render import render_all

        figures = {
            name: art
            for name, art in artifacts.items()
            if isinstance(art, FigureResult)
        }
        written = render_all(figures, args.svg_dir)
        print(f"rendered {len(written)} SVG figures to {args.svg_dir}")
    if args.scorecard:
        from repro.experiments.scorecard import grade, render_scorecard

        print()
        print(render_scorecard(grade(artifacts)))
    if missing:
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Dataset provisioning for experiments and benchmarks.

Building the full Table 1 suite takes tens of seconds, so built datasets
are cached on disk (JSONL), one file per dataset, keyed by (seed, scale).
Benchmarks and the figure/table reproductions all obtain their data
through :func:`provision_datasets` (or the :class:`repro.api.ReproSession`
facade; :func:`get_datasets` is the deprecated old spelling, removed
in 2.0).

Pipeline shape:

* **Per-dataset cache** — each dataset has its own file under
  ``<cache>/seed<seed>-scale<scale>/<name>.jsonl``; a missing, truncated,
  or schema-stale file invalidates only its *build group* (see
  :data:`repro.datasets.builders.BUILD_GROUPS`), not the whole suite.
* **Supervised parallel builds** — stale groups fan out across a
  ``ProcessPoolExecutor`` under the fault-tolerant
  :class:`~repro.faults.supervisor.BuildSupervisor`: per-group retry
  with deterministic seed-derived backoff, per-attempt deadlines
  (``--build-timeout`` / :data:`TIMEOUT_ENV_VAR`), and automatic serial
  fallback when a worker dies (``BrokenProcessPool``).  Every group
  builder is seed-deterministic and depends only on its ``BuildConfig``,
  so serial, parallel, and retried builds yield bit-identical datasets.
* **Crash safety** — saves are atomic (write-then-rename with a record
  count trailer, :mod:`repro.datasets.io`), verified structurally after
  each write, and re-done if damaged; unreadable cache files are
  quarantined (renamed to ``<name>.corrupt-<contenthash>``) instead of
  being re-parsed forever; rebuilds hold a stale-lock-safe single-writer
  lock per suite directory so concurrent runs cannot race.
* **Resume** — a :class:`~repro.faults.supervisor.RunLedger`
  (``run-ledger.json``) journals each completed group so
  ``repro suite --resume`` after an interrupted run skips straight to
  the unfinished groups.
* **Fault injection** — a deterministic
  :class:`~repro.faults.plan.FaultPlan` (``--fault-plan`` /
  ``REPRO_FAULT_PLAN``) replays exact failure schedules through the
  same code paths; see docs/ROBUSTNESS.md.
* **Instrumentation** — pass a
  :class:`~repro.datasets.instrumentation.BuildReport` to collect
  per-phase timings, cache hit/miss counters, and the resilience trail
  (retries, quarantines, failures, resumes); the most recent report is
  also kept in :func:`last_build_report`.

With ``keep_going=True`` a group that exhausts its retry budget leaves
its datasets out of the returned mapping instead of raising
:class:`~repro.faults.supervisor.BuildFailure`; callers surface the gap
(the CLI marks missing datasets and exits 3).
"""

from __future__ import annotations

import hashlib
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

from repro.datasets.builders import (
    BUILD_GROUPS,
    BuildConfig,
    build_group,
    table1_order,
)
from repro.datasets.dataset import Dataset
from repro.datasets.instrumentation import (
    BuildEvent,
    BuildReport,
    ProgressHook,
    null_progress,
)
from repro.datasets.io import (
    CacheLock,
    DatasetIOError,
    load_dataset,
    save_dataset,
    verify_dataset_file,
)
from repro.faults import injection
from repro.faults.plan import FaultPlan
from repro.obs import clock
from repro.obs import runtime as obs
from repro.routing.bgp import ROUTING_JOBS_ENV_VAR
from repro.faults.supervisor import (
    BuildFailure,
    BuildSupervisor,
    RetryPolicy,
    RunLedger,
)

#: Default on-disk cache root; override with the REPRO_CACHE_DIR env var.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Scale used by default for experiment regeneration.  Full scale (1.0)
#: reproduces Table 1's measurement counts; benchmarks may use less.
DEFAULT_SCALE = 1.0

#: Environment variable overriding the number of build worker processes.
JOBS_ENV_VAR = "REPRO_BUILD_JOBS"

#: Environment variable setting the per-attempt group build deadline (s).
TIMEOUT_ENV_VAR = "REPRO_BUILD_TIMEOUT"

#: File name of the per-suite completion journal (see RunLedger).
LEDGER_NAME = "run-ledger.json"

#: Default retry budget per build group (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3

#: The most recent provisioning report (diagnostics; see build_summary).
_last_report: BuildReport | None = None


def cache_dir() -> Path:
    """The dataset cache root (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
    root.mkdir(parents=True, exist_ok=True)
    return root


def _suite_dir(config: BuildConfig) -> Path:
    return cache_dir() / f"seed{config.seed}-scale{config.scale:g}"


def dataset_cache_path(name: str, config: BuildConfig | None = None) -> Path:
    """The cache file backing one dataset for one build config."""
    cfg = config or BuildConfig(scale=DEFAULT_SCALE)
    return _suite_dir(cfg) / f"{name}.jsonl"


def resolve_jobs(jobs: int | None, n_tasks: int) -> int:
    """Worker-process count for ``n_tasks`` parallel group builds.

    Precedence: explicit ``jobs`` argument, then the ``REPRO_BUILD_JOBS``
    environment variable, then ``min(n_tasks, cpu_count)``.  Values are
    clamped to ``[1, n_tasks]``; 1 means build in-process.
    """
    if n_tasks <= 0:
        return 1
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


@contextmanager
def _routing_jobs_env(routing_jobs: int | None):
    """Export ``REPRO_ROUTING_JOBS`` for the duration of a build.

    Build workers are separate processes; the environment variable is the
    only channel that survives the fork, so the CLI's ``--routing-jobs``
    flag is threaded through here.  None leaves the environment alone.
    """
    if routing_jobs is None:
        yield
        return
    if routing_jobs < 1:
        raise ValueError(f"routing_jobs must be >= 1, got {routing_jobs}")
    saved = os.environ.get(ROUTING_JOBS_ENV_VAR)
    os.environ[ROUTING_JOBS_ENV_VAR] = str(routing_jobs)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(ROUTING_JOBS_ENV_VAR, None)
        else:
            os.environ[ROUTING_JOBS_ENV_VAR] = saved


def resolve_build_timeout(timeout_s: float | None) -> float | None:
    """Per-attempt group build deadline: argument, else env var, else None."""
    if timeout_s is None:
        env = os.environ.get(TIMEOUT_ENV_VAR)
        if env is None or not env.strip():
            return None
        try:
            timeout_s = float(env)
        except ValueError:
            raise ValueError(
                f"{TIMEOUT_ENV_VAR} must be a number of seconds, got {env!r}"
            ) from None
    if timeout_s <= 0:
        raise ValueError(f"build timeout must be > 0 seconds, got {timeout_s}")
    return timeout_s


def _resolve_plan(fault_plan: FaultPlan | str | None) -> FaultPlan | None:
    """Normalize the fault-plan argument (str spec, object, or env var).

    Raises:
        FaultPlanError: on a malformed spec (CLI maps this to exit 2).
    """
    if fault_plan is None:
        return FaultPlan.from_env()
    if isinstance(fault_plan, FaultPlan):
        return fault_plan
    return FaultPlan.parse(fault_plan)


def _build_group_task(
    group: str, attempt: int, plan_spec: str, cfg: BuildConfig,
    trace: bool = False,
) -> tuple[dict[str, Dataset], BuildEvent, dict | None]:
    """Supervisor task: build one group, timing it where it runs.

    Runs in pool workers and (for serial fallback) in the coordinating
    process; the fault plan and attempt number arrive as arguments so an
    injected failure schedule replays identically in either place.  When
    the coordinator is tracing, ``trace=True`` makes the task run under
    a *fresh* obs capture (pool workers inherit the parent's capture via
    fork; swapping it out keeps worker spans separate) and return the
    exported blob for the coordinator to graft — so serial and parallel
    builds produce identically-shaped traces.
    """
    plan = FaultPlan.parse(plan_spec) if plan_spec else None
    blob: dict | None = None
    if trace:
        with obs.capture() as cap:
            with obs.span("datasets.build") as sp:
                sp.set("group", group)
                sp.set("attempt", attempt)
                obs.count("datasets.builds")
                with injection.activate(plan), injection.attempt_scope(attempt):
                    start = clock.now()
                    datasets = build_group(group, cfg)
                    duration = clock.now() - start
        blob = cap.blob()
    else:
        with injection.activate(plan), injection.attempt_scope(attempt):
            start = clock.now()
            datasets = build_group(group, cfg)
            duration = clock.now() - start
    event = BuildEvent(
        label=f"{group} -> {'+'.join(BUILD_GROUPS[group])}",
        phase="build",
        duration_s=duration,
        worker_pid=os.getpid(),
    )
    return datasets, event, blob


def _quarantine_cache_file(
    path: Path, name: str, reason: str, report: BuildReport
) -> None:
    """Rename an unreadable cache file to ``<name>.corrupt-<contenthash>``.

    Quarantining (instead of deleting or re-parsing on every run) keeps
    the evidence for post-mortems while guaranteeing the next probe sees
    a plain cache miss.  Racing processes may quarantine concurrently;
    losing the race is indistinguishable from the file having vanished.
    """
    try:
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
        target = path.with_name(f"{path.name}.corrupt-{digest}")
        os.replace(path, target)
    except OSError:
        return  # vanished or unreadable: nothing left to quarantine
    report.quarantine(name, target.name, reason)


def _probe_cache(
    suite: Path,
    report: BuildReport,
    groups: dict[str, tuple[str, ...]] | None = None,
    *,
    counted: bool = True,
) -> tuple[dict[str, Dataset], list[str]]:
    """Load every valid cached dataset; return (loaded, stale groups).

    A dataset whose file is missing marks its whole build group stale
    (the group is the smallest rebuildable unit); an *unreadable* file
    (truncated, garbled, schema-stale) is additionally quarantined so it
    is never re-parsed on subsequent runs.  Datasets from other groups
    stay served from cache.  ``counted=False`` suppresses the obs
    hit/miss counters (used by the post-lock re-probe so counters
    reflect the first probe only).
    """
    loaded: dict[str, Dataset] = {}
    stale: list[str] = []
    with obs.span("datasets.cache.probe") as psp:
        for group, names in (groups or BUILD_GROUPS).items():
            for name in names:
                path = suite / f"{name}.jsonl"
                start = clock.now()
                try:
                    with obs.span("datasets.load") as sp:
                        sp.set("dataset", name)
                        dataset = load_dataset(path)
                except FileNotFoundError:
                    report.miss(name)
                    if counted:
                        obs.count("datasets.cache.misses")
                    if group not in stale:
                        stale.append(group)
                except (OSError, DatasetIOError) as exc:
                    _quarantine_cache_file(path, name, str(exc), report)
                    report.miss(name)
                    if counted:
                        obs.count("datasets.cache.misses")
                        obs.count("datasets.cache.quarantines")
                    if group not in stale:
                        stale.append(group)
                else:
                    report.record(name, "load", clock.now() - start)
                    report.hit(name)
                    if counted:
                        obs.count("datasets.cache.hits")
                    loaded[name] = dataset
        psp.set("hits", len(loaded))
        psp.set("stale_groups", len(stale))
    return loaded, stale


def _save_verified(
    dataset: Dataset,
    path: Path,
    name: str,
    *,
    policy: RetryPolicy,
    report: BuildReport,
    progress: ProgressHook,
) -> str | None:
    """Atomically save ``dataset`` and structurally verify the file.

    A damaged write (torn by the OS, or corrupted by an injected
    ``io.save`` fault) is quarantined and re-done up to the policy's
    attempt budget.  Returns None on success, else the failure reason.
    """
    reason = "save never attempted"
    for attempt in range(policy.max_attempts):
        with injection.attempt_scope(attempt):
            with report.timed(name, "save"):
                save_dataset(dataset, path)
        try:
            with report.timed(name, "verify"):
                verify_dataset_file(path)
        except DatasetIOError as exc:
            reason = f"save verification failed: {exc}"
            _quarantine_cache_file(path, name, reason, report)
            if attempt + 1 < policy.max_attempts:
                report.retry(name, reason)
                progress(f"{name}: {reason}; re-saving")
            continue
        return None
    return reason


def _groups_for(only: Sequence[str] | None) -> dict[str, tuple[str, ...]]:
    """The BUILD_GROUPS subset covering the requested dataset names.

    Raises:
        KeyError: for names outside Table 1.
    """
    if only is None:
        return dict(BUILD_GROUPS)
    wanted = set(only)
    unknown = wanted - set(table1_order())
    if unknown:
        raise KeyError(
            f"unknown dataset name(s) {sorted(unknown)}; "
            f"choose from {table1_order()}"
        )
    return {
        group: names
        for group, names in BUILD_GROUPS.items()
        if wanted & set(names)
    }


def provision_datasets(
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
    jobs: int | None = None,
    routing_jobs: int | None = None,
    report: BuildReport | None = None,
    progress: ProgressHook | None = None,
    fault_plan: FaultPlan | str | None = None,
    build_timeout: float | None = None,
    max_attempts: int | None = None,
    keep_going: bool = False,
    resume: bool = False,
    only: Sequence[str] | None = None,
) -> dict[str, Dataset]:
    """All Table 1 datasets for the given build config, cached on disk.

    Args:
        config: Build parameters (seed, scale); defaults to the canonical
            full-scale build.
        use_cache: Read/write the on-disk cache (set False to force a
            rebuild without touching the cache).
        jobs: Build worker processes for stale groups (default: the
            ``REPRO_BUILD_JOBS`` env var, else one per CPU; 1 = build
            in-process).
        routing_jobs: Worker processes for batch BGP convergence inside
            each group build (exported as ``REPRO_ROUTING_JOBS`` for the
            duration of the build so forked build workers inherit it;
            default: leave the environment as-is, which means serial).
        report: Optional instrumentation sink for per-phase timings,
            cache counters, and the resilience trail.
        progress: Optional hook receiving human-readable status lines.
        fault_plan: Deterministic fault plan (object or spec string);
            None falls back to the ``REPRO_FAULT_PLAN`` env var.
        build_timeout: Per-attempt group build deadline in seconds; None
            falls back to ``REPRO_BUILD_TIMEOUT``, else unbounded.
        max_attempts: Retry budget per group (default 3).
        keep_going: On retry exhaustion, return the datasets that did
            build (missing names omitted) instead of raising.
        resume: Consult the suite's run ledger and report groups already
            completed by a prior interrupted run.
        only: Dataset names to provision (default: all of Table 1).  The
            build group is the smallest buildable unit, so every dataset
            of each covering group is returned.

    Raises:
        BuildFailure: a group exhausted its retries and ``keep_going``
            is False.
        FaultPlanError: ``fault_plan`` (or the env var) is malformed.
        KeyError: ``only`` names a dataset outside Table 1.
    """
    global _last_report
    cfg = config or BuildConfig(scale=DEFAULT_SCALE)
    rep = report if report is not None else BuildReport()
    _last_report = rep
    prog = progress if progress is not None else null_progress
    plan = _resolve_plan(fault_plan)
    policy = RetryPolicy(
        max_attempts=max_attempts if max_attempts is not None else DEFAULT_MAX_ATTEMPTS,
        timeout_s=resolve_build_timeout(build_timeout),
        seed=cfg.seed,
    )
    groups = _groups_for(only)
    names = [n for n in table1_order() if any(n in g for g in groups.values())]
    with obs.span("datasets.provision") as sp:
        sp.set("seed", cfg.seed)
        sp.set("scale", cfg.scale)
        sp.set("cached", use_cache)
        sp.set("datasets", len(names))
        with injection.activate(plan), _routing_jobs_env(routing_jobs):
            if not use_cache:
                loaded, failures = _build_uncached(
                    cfg, groups, policy=policy, plan=plan, jobs=jobs,
                    report=rep, progress=prog,
                )
            else:
                loaded, failures = _build_cached(
                    cfg,
                    groups,
                    policy=policy,
                    plan=plan,
                    jobs=jobs,
                    report=rep,
                    progress=prog,
                    resume=resume,
                    keep_going=keep_going,
                )
    if failures and not keep_going:
        raise BuildFailure(failures)
    return {name: loaded[name] for name in names if name in loaded}


def get_datasets(
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
    jobs: int | None = None,
    report: BuildReport | None = None,
    progress: ProgressHook | None = None,
    fault_plan: FaultPlan | str | None = None,
    build_timeout: float | None = None,
    max_attempts: int | None = None,
    keep_going: bool = False,
    resume: bool = False,
) -> dict[str, Dataset]:
    """Deprecated old spelling of :func:`provision_datasets`.

    Prefer :func:`provision_datasets` or the
    :class:`repro.api.ReproSession` facade; this wrapper will be
    removed in 2.0 and is no longer re-exported from
    :mod:`repro.experiments`.
    """
    warnings.warn(
        "get_datasets() is deprecated and will be removed in 2.0; "
        "use provision_datasets() or repro.ReproSession(...).build()",
        DeprecationWarning,
        stacklevel=2,
    )
    return provision_datasets(
        config,
        use_cache=use_cache,
        jobs=jobs,
        report=report,
        progress=progress,
        fault_plan=fault_plan,
        build_timeout=build_timeout,
        max_attempts=max_attempts,
        keep_going=keep_going,
        resume=resume,
    )


def _build_uncached(
    cfg: BuildConfig,
    groups: dict[str, tuple[str, ...]],
    *,
    policy: RetryPolicy,
    plan: FaultPlan | None,
    jobs: int | None,
    report: BuildReport,
    progress: ProgressHook,
) -> tuple[dict[str, Dataset], dict[str, str]]:
    """Build every group under supervision without touching the cache."""
    labels = list(groups)
    n_jobs = resolve_jobs(jobs, len(labels))
    progress(
        f"building {len(labels)} dataset group(s) across {n_jobs} worker(s) ..."
    )
    supervisor = BuildSupervisor(policy, plan=plan)
    loaded: dict[str, Dataset] = {}

    def on_success(group: str, payload: object) -> None:
        datasets, event, blob = payload
        obs.graft(blob)
        report.extend([event])
        progress(f"built {group} ({event.duration_s:.1f}s)")
        loaded.update(datasets)

    result = supervisor.run(
        _build_group_task,
        labels,
        (cfg, obs.enabled()),
        jobs=n_jobs,
        report=report,
        progress=progress,
        on_success=on_success,
    )
    return loaded, result.failures


def _build_cached(
    cfg: BuildConfig,
    groups: dict[str, tuple[str, ...]],
    *,
    policy: RetryPolicy,
    plan: FaultPlan | None,
    jobs: int | None,
    report: BuildReport,
    progress: ProgressHook,
    resume: bool,
    keep_going: bool,
) -> tuple[dict[str, Dataset], dict[str, str]]:
    """Serve the suite from cache, rebuilding stale groups under a lock."""
    suite = _suite_dir(cfg)
    ledger = RunLedger(suite / LEDGER_NAME, seed=cfg.seed, scale=cfg.scale)
    loaded, stale = _probe_cache(suite, report, groups)
    if resume:
        for group in sorted(ledger.completed()):
            group_names = groups.get(group, ())
            if group_names and group not in stale and all(
                name in loaded for name in group_names
            ):
                report.resume_group(group)
            elif group in stale:
                report.fault(
                    f"ledger marks {group} complete but its cache is stale; "
                    "rebuilding"
                )
    if not stale:
        progress(f"all {len(loaded)} datasets served from cache ({suite})")
        return loaded, {}
    suite.mkdir(parents=True, exist_ok=True)
    failures: dict[str, str] = {}
    lock = CacheLock(suite)
    lock_start = clock.now()
    with lock:
        waited = clock.now() - lock_start
        if waited > 0.1:
            report.record(suite.name, "lock-wait", waited)
            obs.observe("datasets.lock_wait_s", waited)
        # Another writer may have filled (part of) the cache while we
        # waited for the lock; probe again so we only rebuild what is
        # still stale.
        recheck = BuildReport()
        loaded2, stale = _probe_cache(suite, recheck, groups, counted=False)
        loaded.update(loaded2)
        # Datasets another writer produced while we waited count as hits.
        for name in loaded2:
            if name in report.cache_misses:
                report.cache_misses.remove(name)
                report.hit(name)
        if stale:
            ledger.clear(stale)
            # Cache files that were valid before the rebuild keep serving
            # reads; only datasets whose files were stale get saved, so an
            # invalidated dataset never touches its siblings' files.
            valid_before = set(loaded2)
            n_jobs = resolve_jobs(jobs, len(stale))
            progress(
                f"rebuilding {len(stale)} stale group(s) across "
                f"{n_jobs} worker(s) ..."
            )
            supervisor = BuildSupervisor(policy, plan=plan)

            def on_success(group: str, payload: object) -> None:
                datasets, event, blob = payload
                obs.graft(blob)
                report.extend([event])
                progress(f"built {group} ({event.duration_s:.1f}s)")
                saved: list[str] = []
                for name in groups[group]:
                    ds = datasets[name]
                    if name in valid_before:
                        loaded[name] = ds
                        saved.append(name)
                        continue
                    reason = _save_verified(
                        ds,
                        suite / f"{name}.jsonl",
                        name,
                        policy=policy,
                        report=report,
                        progress=progress,
                    )
                    if reason is None:
                        loaded[name] = ds
                        saved.append(name)
                        continue
                    report.fail_group(group, reason)
                    if not keep_going:
                        raise BuildFailure({group: reason})
                    failures[group] = reason
                if len(saved) == len(groups[group]):
                    ledger.mark(group, saved)

            result = supervisor.run(
                _build_group_task,
                stale,
                (cfg, obs.enabled()),
                jobs=n_jobs,
                report=report,
                progress=progress,
                on_success=on_success,
            )
            failures.update(result.failures)
    return loaded, failures


def provision_dataset(
    name: str,
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
    jobs: int | None = None,
) -> Dataset:
    """One named dataset from the suite (builds only its group).

    Raises:
        KeyError: for names outside Table 1.
    """
    datasets = provision_datasets(
        config, use_cache=use_cache, jobs=jobs, only=[name]
    )
    return datasets[name]


def get_dataset(
    name: str,
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
    jobs: int | None = None,
) -> Dataset:
    """Deprecated old spelling of :func:`provision_dataset`.

    Will be removed in 2.0; no longer re-exported from
    :mod:`repro.experiments`.
    """
    warnings.warn(
        "get_dataset() is deprecated and will be removed in 2.0; "
        "use provision_dataset() or "
        "repro.ReproSession(...).build(only=[name])",
        DeprecationWarning,
        stacklevel=2,
    )
    return provision_dataset(name, config, use_cache=use_cache, jobs=jobs)


def last_build_report() -> BuildReport | None:
    """The report from the most recent :func:`provision_datasets` call."""
    return _last_report


def build_summary() -> str:
    """Human-readable summary of the most recent provisioning call."""
    if _last_report is None:
        return "no dataset provisioning has run in this process"
    return _last_report.summary()

"""Dataset provisioning for experiments and benchmarks.

Building the full Table 1 suite takes tens of seconds, so built datasets
are cached on disk (JSONL), one file per dataset, keyed by (seed, scale).
Benchmarks and the figure/table reproductions all obtain their data
through :func:`get_datasets`.

Pipeline shape:

* **Per-dataset cache** — each dataset has its own file under
  ``<cache>/seed<seed>-scale<scale>/<name>.jsonl``; a missing, truncated,
  or schema-stale file invalidates only its *build group* (see
  :data:`repro.datasets.builders.BUILD_GROUPS`), not the whole suite.
* **Parallel builds** — stale groups fan out across a
  ``ProcessPoolExecutor``; every group builder is seed-deterministic and
  depends only on its ``BuildConfig``, so serial and parallel builds
  yield bit-identical datasets.
* **Crash safety** — saves are atomic (write-then-rename with a record
  count trailer, :mod:`repro.datasets.io`) and rebuilds hold a
  stale-lock-safe single-writer lock per suite directory so concurrent
  runs cannot race.
* **Instrumentation** — pass a
  :class:`~repro.datasets.instrumentation.BuildReport` to collect
  per-phase timings and cache hit/miss counters; the most recent report
  is also kept in :func:`last_build_report`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.datasets.builders import (
    BUILD_GROUPS,
    BuildConfig,
    build_group,
    table1_order,
)
from repro.datasets.dataset import Dataset
from repro.datasets.instrumentation import (
    BuildEvent,
    BuildReport,
    ProgressHook,
    null_progress,
)
from repro.datasets.io import (
    CacheLock,
    DatasetIOError,
    load_dataset,
    save_dataset,
)

#: Default on-disk cache root; override with the REPRO_CACHE_DIR env var.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Scale used by default for experiment regeneration.  Full scale (1.0)
#: reproduces Table 1's measurement counts; benchmarks may use less.
DEFAULT_SCALE = 1.0

#: Environment variable overriding the number of build worker processes.
JOBS_ENV_VAR = "REPRO_BUILD_JOBS"

#: The most recent provisioning report (diagnostics; see build_summary).
_last_report: BuildReport | None = None


def cache_dir() -> Path:
    """The dataset cache root (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
    root.mkdir(parents=True, exist_ok=True)
    return root


def _suite_dir(config: BuildConfig) -> Path:
    return cache_dir() / f"seed{config.seed}-scale{config.scale:g}"


def dataset_cache_path(name: str, config: BuildConfig | None = None) -> Path:
    """The cache file backing one dataset for one build config."""
    cfg = config or BuildConfig(scale=DEFAULT_SCALE)
    return _suite_dir(cfg) / f"{name}.jsonl"


def resolve_jobs(jobs: int | None, n_tasks: int) -> int:
    """Worker-process count for ``n_tasks`` parallel group builds.

    Precedence: explicit ``jobs`` argument, then the ``REPRO_BUILD_JOBS``
    environment variable, then ``min(n_tasks, cpu_count)``.  Values are
    clamped to ``[1, n_tasks]``; 1 means build in-process.
    """
    if n_tasks <= 0:
        return 1
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def _build_group_task(
    group: str, cfg: BuildConfig
) -> tuple[str, dict[str, Dataset], BuildEvent]:
    """Pool-worker task: build one group, timing it in the worker."""
    start = time.perf_counter()
    datasets = build_group(group, cfg)
    event = BuildEvent(
        label=f"{group} -> {'+'.join(BUILD_GROUPS[group])}",
        phase="build",
        duration_s=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )
    return group, datasets, event


def _build_groups(
    groups: list[str],
    cfg: BuildConfig,
    *,
    jobs: int | None,
    report: BuildReport,
    progress: ProgressHook,
) -> dict[str, Dataset]:
    """Build the named groups, fanning out across worker processes."""
    n_jobs = resolve_jobs(jobs, len(groups))
    built: dict[str, Dataset] = {}
    if n_jobs <= 1:
        for group in groups:
            progress(f"building {group} ({'+'.join(BUILD_GROUPS[group])}) ...")
            _, datasets, event = _build_group_task(group, cfg)
            report.extend([event])
            built.update(datasets)
        return built
    progress(
        f"building {len(groups)} dataset group(s) across {n_jobs} workers ..."
    )
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        for group, datasets, event in pool.map(
            _build_group_task, groups, [cfg] * len(groups)
        ):
            progress(f"built {group} ({event.duration_s:.1f}s)")
            report.extend([event])
            built.update(datasets)
    return built


def _probe_cache(
    suite: Path,
    report: BuildReport,
) -> tuple[dict[str, Dataset], list[str]]:
    """Load every valid cached dataset; return (loaded, stale groups).

    A dataset whose file is missing, truncated, or schema-stale marks its
    whole build group stale (the group is the smallest rebuildable unit),
    but datasets from other groups stay served from cache.
    """
    loaded: dict[str, Dataset] = {}
    stale: list[str] = []
    for group, names in BUILD_GROUPS.items():
        for name in names:
            path = suite / f"{name}.jsonl"
            start = time.perf_counter()
            try:
                dataset = load_dataset(path)
            except (OSError, DatasetIOError):
                report.miss(name)
                if group not in stale:
                    stale.append(group)
            else:
                report.record(name, "load", time.perf_counter() - start)
                report.hit(name)
                loaded[name] = dataset
    return loaded, stale


def get_datasets(
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
    jobs: int | None = None,
    report: BuildReport | None = None,
    progress: ProgressHook | None = None,
) -> dict[str, Dataset]:
    """All Table 1 datasets for the given build config, cached on disk.

    Args:
        config: Build parameters (seed, scale); defaults to the canonical
            full-scale build.
        use_cache: Read/write the on-disk cache (set False to force a
            rebuild without touching the cache).
        jobs: Build worker processes for stale groups (default: the
            ``REPRO_BUILD_JOBS`` env var, else one per CPU; 1 = build
            in-process).
        report: Optional instrumentation sink for per-phase timings and
            cache hit/miss counters.
        progress: Optional hook receiving human-readable status lines.
    """
    global _last_report
    cfg = config or BuildConfig(scale=DEFAULT_SCALE)
    rep = report if report is not None else BuildReport()
    _last_report = rep
    prog = progress if progress is not None else null_progress
    names = table1_order()
    if not use_cache:
        built = _build_groups(
            list(BUILD_GROUPS), cfg, jobs=jobs, report=rep, progress=prog
        )
        return {name: built[name] for name in names}
    suite = _suite_dir(cfg)
    loaded, stale = _probe_cache(suite, rep)
    if not stale:
        prog(f"all {len(names)} datasets served from cache ({suite})")
        return {name: loaded[name] for name in names}
    suite.mkdir(parents=True, exist_ok=True)
    lock = CacheLock(suite)
    lock_start = time.perf_counter()
    with lock:
        waited = time.perf_counter() - lock_start
        if waited > 0.1:
            rep.record(suite.name, "lock-wait", waited)
        # Another writer may have filled (part of) the cache while we
        # waited for the lock; probe again so we only rebuild what is
        # still stale.
        recheck = BuildReport()
        loaded2, stale = _probe_cache(suite, recheck)
        loaded.update(loaded2)
        # Datasets another writer produced while we waited count as hits.
        for name in loaded2:
            if name in rep.cache_misses:
                rep.cache_misses.remove(name)
                rep.hit(name)
        if stale:
            # Cache files that were valid before the rebuild keep serving
            # reads; only datasets whose files were stale get saved, so an
            # invalidated dataset never touches its siblings' files.
            valid_before = set(loaded2)
            built = _build_groups(
                stale, cfg, jobs=jobs, report=rep, progress=prog
            )
            for name, ds in built.items():
                if name in valid_before:
                    continue
                with rep.timed(name, "save"):
                    save_dataset(ds, suite / f"{name}.jsonl")
                loaded[name] = ds
    return {name: loaded[name] for name in names}


def get_dataset(
    name: str,
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
    jobs: int | None = None,
) -> Dataset:
    """One named dataset from the suite.

    Raises:
        KeyError: for names outside Table 1.
    """
    datasets = get_datasets(config, use_cache=use_cache, jobs=jobs)
    return datasets[name]


def last_build_report() -> BuildReport | None:
    """The report from the most recent :func:`get_datasets` call."""
    return _last_report


def build_summary() -> str:
    """Human-readable summary of the most recent provisioning call."""
    if _last_report is None:
        return "no dataset provisioning has run in this process"
    return _last_report.summary()

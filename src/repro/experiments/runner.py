"""Dataset provisioning for experiments and benchmarks.

Building the full Table 1 suite takes tens of seconds, so built datasets
are cached on disk (JSONL) keyed by (seed, scale).  Benchmarks and the
figure/table reproductions all obtain their data through
:func:`get_datasets`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.datasets.builders import BuildConfig, build_all, table1_order
from repro.datasets.dataset import Dataset
from repro.datasets.io import DatasetIOError, load_dataset, save_dataset

#: Default on-disk cache root; override with the REPRO_CACHE_DIR env var.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Scale used by default for experiment regeneration.  Full scale (1.0)
#: reproduces Table 1's measurement counts; benchmarks may use less.
DEFAULT_SCALE = 1.0


def cache_dir() -> Path:
    """The dataset cache root (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
    root.mkdir(parents=True, exist_ok=True)
    return root


def _suite_dir(config: BuildConfig) -> Path:
    return cache_dir() / f"seed{config.seed}-scale{config.scale:g}"


def get_datasets(
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
) -> dict[str, Dataset]:
    """All Table 1 datasets for the given build config, cached on disk.

    Args:
        config: Build parameters (seed, scale); defaults to the canonical
            full-scale build.
        use_cache: Read/write the on-disk cache (set False to force a
            rebuild without touching the cache).
    """
    cfg = config or BuildConfig(scale=DEFAULT_SCALE)
    suite = _suite_dir(cfg)
    names = table1_order()
    if use_cache:
        loaded: dict[str, Dataset] = {}
        try:
            for name in names:
                path = suite / f"{name}.jsonl"
                if not path.exists():
                    break
                loaded[name] = load_dataset(path)
            else:
                return loaded
        except DatasetIOError:
            pass  # stale/corrupt cache: rebuild below
    datasets = build_all(cfg)
    if use_cache:
        suite.mkdir(parents=True, exist_ok=True)
        for name, ds in datasets.items():
            save_dataset(ds, suite / f"{name}.jsonl")
    return datasets


def get_dataset(
    name: str,
    config: BuildConfig | None = None,
    *,
    use_cache: bool = True,
) -> Dataset:
    """One named dataset from the suite.

    Raises:
        KeyError: for names outside Table 1.
    """
    datasets = get_datasets(config, use_cache=use_cache)
    return datasets[name]

"""Perf-baseline recorder: run benchmark suites, track committed baselines.

The repo's perf trajectory is tracked in committed baseline files at the
repository root — ``BENCH_routing.json`` (the core routing benchmarks,
the default) and ``BENCH_measurement.json`` (the measurement pipeline,
via ``--output BENCH_measurement.json --bench-file
benchmarks/test_perf_measurement.py``): median/min wall-clock per
benchmark plus a machine-calibration constant so numbers recorded on
different hardware remain roughly comparable (see docs/PERFORMANCE.md).

Two entry points drive this module:

* ``repro bench`` — the CLI subcommand.
* ``python benchmarks/record.py`` — a thin wrapper kept next to the
  benchmarks themselves.

Recording runs the benchmark module under pytest-benchmark in a
subprocess, parses the exported JSON, and writes the baseline file.
``--compare`` reports speedup/regression ratios against the committed
baseline instead of overwriting it (CI's perf-smoke job uses this to spot
order-of-magnitude regressions without rerunning statistics).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.obs import clock

#: Default location of the committed perf baseline (repo root).
DEFAULT_BASELINE = "BENCH_routing.json"

#: The benchmark module whose results are recorded.
CORE_BENCH_FILE = "benchmarks/test_perf_core.py"

#: Bumped when the baseline file's layout changes.
SCHEMA_VERSION = 1


class BenchError(RuntimeError):
    """Raised when recording or comparing a perf baseline fails."""


def calibrate(repeats: int = 5) -> float:
    """Median seconds for a fixed pure-Python workload.

    The workload is deliberately interpreter-bound (integer arithmetic in
    a tight loop): it tracks the single-core speed that dominates the
    routing hot paths, so ``median_s / calibration_s`` is a unitless
    "machine-normalized" cost comparable across hosts.
    """
    def workload() -> int:
        acc = 0
        for i in range(500_000):
            acc = (acc + i * i) & 0xFFFFFFFF
        return acc

    times: list[float] = []
    for _ in range(repeats):
        start = clock.now()
        workload()
        times.append(clock.now() - start)
    return statistics.median(times)


def _pytest_env() -> dict[str, str]:
    """Subprocess environment with this repro package importable."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


def run_benchmarks(
    bench_file: str = CORE_BENCH_FILE,
    *,
    keyword: str | None = None,
    quick: bool = False,
    env_overrides: dict[str, str] | None = None,
) -> dict[str, dict[str, float]]:
    """Run ``bench_file`` under pytest-benchmark; return stats per test.

    Returns a mapping ``test_name -> {"median_s": ..., "min_s": ...,
    "rounds": ...}``.  ``quick`` caps benchmarking at one round per test
    (CI smoke mode: detects order-of-magnitude regressions only).
    ``env_overrides`` is merged into the subprocess environment (how the
    unified ``--seed``/``--routing-jobs`` flags reach the benchmarks).

    Raises:
        BenchError: if pytest fails or exports no benchmark data.
    """
    with tempfile.TemporaryDirectory() as tmp:
        export = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            bench_file,
            "--benchmark-only",
            f"--benchmark-json={export}",
            "-q",
            "-p",
            "no:cacheprovider",
        ]
        if quick:
            cmd += [
                "--benchmark-min-rounds=1",
                "--benchmark-max-time=0.1",
                "--benchmark-warmup=off",
            ]
        if keyword:
            cmd += ["-k", keyword]
        env = _pytest_env()
        if env_overrides:
            env.update(env_overrides)
        proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise BenchError(
                f"benchmark run failed (exit {proc.returncode}):\n"
                f"{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
            )
        try:
            payload = json.loads(export.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BenchError(f"benchmark export unreadable: {exc}") from exc
    results: dict[str, dict[str, float]] = {}
    for entry in payload.get("benchmarks", []):
        stats = entry["stats"]
        results[entry["name"]] = {
            "median_s": float(stats["median"]),
            "min_s": float(stats["min"]),
            "rounds": int(stats["rounds"]),
        }
    if not results:
        raise BenchError(f"no benchmarks collected from {bench_file}")
    return results


def record_baseline(
    output: str | Path = DEFAULT_BASELINE,
    *,
    bench_file: str = CORE_BENCH_FILE,
    keyword: str | None = None,
    note: str = "",
    env_overrides: dict[str, str] | None = None,
) -> dict:
    """Run the core benchmarks and write the baseline file; return it."""
    calibration = calibrate()
    results = run_benchmarks(
        bench_file, keyword=keyword, env_overrides=env_overrides
    )
    baseline = {
        "version": SCHEMA_VERSION,
        "bench_file": bench_file,
        "note": note,
        "machine": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "calibration_s": calibration,
        },
        "benchmarks": {
            name: {
                **stats,
                "normalized_median": stats["median_s"] / calibration,
            }
            for name, stats in sorted(results.items())
        },
    }
    path = Path(output)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return baseline


def load_baseline(path: str | Path = DEFAULT_BASELINE) -> dict:
    """Read a committed baseline file.

    Raises:
        BenchError: if the file is missing or malformed.
    """
    try:
        baseline = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"unreadable baseline {path}: {exc}") from exc
    if baseline.get("version") != SCHEMA_VERSION:
        raise BenchError(
            f"baseline {path} has version {baseline.get('version')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    return baseline


def compare_to_baseline(
    baseline: dict,
    *,
    bench_file: str | None = None,
    keyword: str | None = None,
    quick: bool = False,
    env_overrides: dict[str, str] | None = None,
) -> list[tuple[str, float, float, float]]:
    """Re-run the benchmarks and compare against ``baseline``.

    Returns rows ``(name, baseline_norm, current_norm, speedup)`` where
    ``speedup`` > 1 means the current tree is faster than the baseline
    (machine-normalized medians on both sides).  Benchmarks present on
    only one side are skipped.
    """
    calibration = calibrate()
    results = run_benchmarks(
        bench_file or baseline.get("bench_file", CORE_BENCH_FILE),
        keyword=keyword,
        quick=quick,
        env_overrides=env_overrides,
    )
    rows: list[tuple[str, float, float, float]] = []
    for name, stats in sorted(results.items()):
        base = baseline["benchmarks"].get(name)
        if base is None:
            continue
        current_norm = stats["median_s"] / calibration
        base_norm = base["normalized_median"]
        speedup = base_norm / current_norm if current_norm > 0 else float("inf")
        rows.append((name, base_norm, current_norm, speedup))
    return rows


def render_comparison(rows: list[tuple[str, float, float, float]]) -> str:
    """Human-readable table for :func:`compare_to_baseline` output."""
    lines = [
        f"{'benchmark':<40} {'baseline':>10} {'current':>10} {'speedup':>8}"
    ]
    for name, base_norm, current_norm, speedup in rows:
        lines.append(
            f"{name:<40} {base_norm:>10.2f} {current_norm:>10.2f} "
            f"{speedup:>7.2f}x"
        )
    return "\n".join(lines)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to ``parser`` (shared with ``repro bench``)."""
    parser.add_argument(
        "-o",
        "--output",
        default=DEFAULT_BASELINE,
        help=f"baseline file to write or compare against (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--bench-file",
        default=CORE_BENCH_FILE,
        help=f"benchmark module to run (default {CORE_BENCH_FILE})",
    )
    parser.add_argument(
        "-k",
        "--keyword",
        default=None,
        help="pytest -k filter restricting which benchmarks run",
    )
    parser.add_argument(
        "--note",
        default="",
        help="free-form note stored in the baseline file",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare the current tree against the committed baseline "
        "instead of overwriting it",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --compare: single-round smoke run (no statistics)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="with --compare: exit 1 if any benchmark's speedup vs the "
        "baseline falls below RATIO (e.g. 0.5 = tolerate 2x regression)",
    )


def _unified_env(args: argparse.Namespace) -> dict[str, str]:
    """Subprocess env overrides from the unified CLI flags.

    ``repro bench`` registers ``--seed``/``--routing-jobs`` with the same
    spelling as the other subcommands; the standalone
    ``benchmarks/record.py`` parser does not, so both are read with
    ``getattr`` defaults.
    """
    overrides: dict[str, str] = {}
    seed = getattr(args, "seed", None)
    if seed is not None:
        overrides["REPRO_BENCH_SEED"] = str(seed)
    routing_jobs = getattr(args, "routing_jobs", None)
    if routing_jobs is not None:
        overrides["REPRO_ROUTING_JOBS"] = str(routing_jobs)
    return overrides


def run(args: argparse.Namespace) -> int:
    """Execute a parsed bench invocation; returns a process exit code."""
    from contextlib import nullcontext

    from repro.obs import runtime as obs

    trace = getattr(args, "trace", None)
    env_overrides = _unified_env(args)
    capture_ctx = obs.capture() if trace else nullcontext()
    try:
        with capture_ctx as cap, obs.span("bench.run") as sp:
            sp.set("bench_file", args.bench_file)
            sp.set("compare", bool(args.compare))
            if args.compare:
                baseline = load_baseline(args.output)
                rows = compare_to_baseline(
                    baseline,
                    bench_file=args.bench_file,
                    keyword=args.keyword,
                    quick=args.quick,
                    env_overrides=env_overrides,
                )
                print(render_comparison(rows))
                if args.fail_below is not None:
                    slow = [r for r in rows if r[3] < args.fail_below]
                    if slow:
                        names = ", ".join(r[0] for r in slow)
                        print(
                            f"perf regression: {names} below "
                            f"{args.fail_below}x of baseline",
                            file=sys.stderr,
                        )
                        return 1
                return 0
            baseline = record_baseline(
                args.output,
                bench_file=args.bench_file,
                keyword=args.keyword,
                note=args.note,
                env_overrides=env_overrides,
            )
            machine = baseline["machine"]
            print(
                f"wrote {args.output} "
                f"({len(baseline['benchmarks'])} benchmarks, "
                f"calibration {machine['calibration_s'] * 1e3:.1f} ms)"
            )
            return 0
    except BenchError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace:
            from repro.obs.artifact import write_run_trace

            meta = {
                "command": "bench",
                "bench_file": args.bench_file,
                "compare": bool(args.compare),
            }
            seed = getattr(args, "seed", None)
            if seed is not None:
                meta["seed"] = seed
            trace_path, metrics_path = write_run_trace(cap, meta, trace)
            print(f"wrote trace {trace_path} and {metrics_path}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro bench`` / ``benchmarks/record.py``."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Record or compare the routing perf baseline "
        "(BENCH_routing.json; see docs/PERFORMANCE.md)",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())

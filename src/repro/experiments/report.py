"""Plain-text rendering of tables and CDF series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and terminal-friendly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.stats import CDFSeries


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def cdf_summary_row(series: CDFSeries, *, unit: str = "") -> list[object]:
    """Summary statistics of one CDF curve: key quantiles and the
    fraction of mass above zero (the paper's 'alternate superior' share)."""
    x = series.x

    def fmt(v: float) -> str:
        return f"{v:.1f}{unit}"

    return [
        series.label,
        len(x),
        f"{100.0 * series.fraction_above(0.0):.0f}%",
        fmt(float(np.quantile(x, 0.10))),
        fmt(float(np.quantile(x, 0.50))),
        fmt(float(np.quantile(x, 0.90))),
    ]


def render_cdf_summaries(
    series_list: Sequence[CDFSeries], title: str, unit: str = ""
) -> str:
    """Table of per-curve CDF summaries."""
    headers = ["series", "n", ">0", "p10", "p50", "p90"]
    rows = [cdf_summary_row(s, unit=unit) for s in series_list]
    return render_table(headers, rows, title=title)


def render_cdf_points(
    series: CDFSeries, fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9)
) -> str:
    """One curve as (fraction, value) sample points."""
    parts = [
        f"F={f:.2f}: {series.value_at_fraction(f):.2f}" for f in fractions
    ]
    return f"{series.label}: " + "  ".join(parts)


def format_percent(value: float, digits: int = 0) -> str:
    """Render a fraction as a percent string."""
    return f"{100.0 * value:.{digits}f}%"


def render_missing_datasets(missing: Sequence[str]) -> str:
    """Banner for datasets a ``--keep-going`` run could not provide.

    Printed by the reproduction driver (and embedded in its markdown
    report) so a partial run is unmistakably partial: the named datasets
    failed to build after retries, and every artifact depending on them
    was skipped rather than silently computed from less data.
    """
    names = ", ".join(sorted(missing))
    return (
        f"MISSING datasets (build failed under --keep-going): {names}\n"
        "artifacts depending on them were skipped; rerun without "
        "--keep-going (or fix the failure) to regenerate them"
    )

"""Automatic grading of a reproduction run against the paper's bands.

Encodes each table/figure's qualitative claim as a numeric check over the
structured artifact, so a reproduction can grade itself:

    python -m repro.experiments.reproduce --scale 1.0 --scorecard

Checks are deliberately the same ones the benchmark suite asserts; the
scorecard just runs them over an existing artifact dictionary and renders
a pass/warn report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.experiments.figures import FigureResult
from repro.experiments.tables import TableResult

Artifact = TableResult | FigureResult


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Outcome of one scorecard check."""

    artifact: str
    passed: bool
    detail: str


def _series_by_label(fig: FigureResult) -> dict[str, object]:
    return {s.label: s for s in fig.series}


# -- individual checks ---------------------------------------------------------

def _check_table1(t: TableResult) -> CheckResult:
    by_name = {row[0]: row for row in t.rows}
    expected_hosts = {"D2": 33, "N2": 31, "UW1": 36, "UW3": 39, "UW4-A": 15}
    bad = [
        name for name, hosts in expected_hosts.items()
        if name in by_name and by_name[name][5] != hosts
    ]
    ok = not bad and len(t.rows) == 8
    return CheckResult(
        "table1", ok,
        "host counts match Table 1" if ok else f"host mismatch: {bad}",
    )


def _check_table2(t: TableResult) -> CheckResult:
    rows = {row[0]: [int(v.rstrip('%')) for v in row[1:]] for row in t.rows}
    ok = (
        all(v > 0 for v in rows["Better"])
        and all(v > 5 for v in rows["Indeterminate"])
        and all(v < 80 for v in rows["Worse"])
    )
    return CheckResult(
        "table2", ok,
        f"better {rows['Better']}, indet {rows['Indeterminate']}, "
        f"worse {rows['Worse']}",
    )


def _check_table3(t: TableResult) -> CheckResult:
    rows = {row[0]: [int(v.rstrip('%')) for v in row[1:]] for row in t.rows}
    ok = all(v <= 15 for v in rows["Worse"]) and any(
        v >= 10 for v in rows["Better"]
    )
    return CheckResult(
        "table3", ok, f"better {rows['Better']}, worse {rows['Worse']}"
    )


def _fraction_band(fig: FigureResult, lo: float, hi: float) -> CheckResult:
    fractions = {
        k.removesuffix("_fraction_improved"): v
        for k, v in fig.data.items()
        if k.endswith("_fraction_improved")
    }
    ok = bool(fractions) and all(lo <= v <= hi for v in fractions.values())
    detail = ", ".join(f"{k} {v:.0%}" for k, v in fractions.items())
    return CheckResult(fig.name, ok, detail)


def _check_figure2(fig: FigureResult) -> CheckResult:
    shares = {
        s.label: float(np.mean(s.x > 1.5)) for s in fig.series
    }
    ok = bool(shares) and all(v >= 0.02 for v in shares.values())
    return CheckResult(
        "figure2", ok,
        "ratio>1.5 share: " + ", ".join(f"{k} {v:.0%}" for k, v in shares.items()),
    )


def _check_figure5(fig: FigureResult) -> CheckResult:
    shares = {s.label: float(np.mean(s.x > 3.0)) for s in fig.series}
    ok = bool(shares) and all(v >= 0.05 for v in shares.values())
    return CheckResult(
        "figure5", ok,
        "ratio>3x share: " + ", ".join(f"{k} {v:.0%}" for k, v in shares.items()),
    )


def _check_figure6(fig: FigureResult) -> CheckResult:
    gap = fig.data["max_discrepancy"]
    return CheckResult("figure6", gap < 0.3, f"mean/median KS distance {gap:.3f}")


def _check_figure11(fig: FigureResult) -> CheckResult:
    by_label = _series_by_label(fig)
    unavg = by_label.get("unaveraged UW4-A")
    pair_avg = by_label.get("pair-averaged UW4-A")
    if unavg is None or pair_avg is None:
        return CheckResult("figure11", False, "missing curves")
    spread_raw = unavg.value_at_fraction(0.95) - unavg.value_at_fraction(0.05)
    spread_avg = pair_avg.value_at_fraction(0.95) - pair_avg.value_at_fraction(0.05)
    ok = spread_raw > spread_avg
    return CheckResult(
        "figure11", ok,
        f"unaveraged spread {spread_raw:.0f}ms vs pair-averaged {spread_avg:.0f}ms",
    )


def _check_figure12(fig: FigureResult) -> CheckResult:
    baseline = fig.data["baseline_fraction"]
    pruned = fig.data["pruned_fraction"]
    ok = pruned is not None and pruned > baseline * 0.3
    return CheckResult(
        "figure12", ok,
        f"improved fraction {baseline:.0%} -> {pruned:.0%} after removals",
    )


def _check_figure13(fig: FigureResult) -> CheckResult:
    heaviness = fig.data["tail_heaviness"]
    return CheckResult(
        "figure13", heaviness < 0.6, f"top-10% hosts hold {heaviness:.0%}"
    )


def _check_figure14(fig: FigureResult) -> CheckResult:
    corr = fig.data["correlation"]
    return CheckResult("figure14", corr > 0.4, f"log-log correlation {corr:.2f}")


def _check_figure15(fig: FigureResult) -> CheckResult:
    frac = fig.data["prop_fraction_improved"]
    return CheckResult(
        "figure15", 0.3 <= frac <= 0.7, f"propagation-improvable {frac:.0%}"
    )


def _check_figure16(fig: FigureResult) -> CheckResult:
    from repro.core import DelayGroup

    counts = fig.data["group_counts"]
    ok = counts[DelayGroup.G6] >= counts[DelayGroup.G3] and counts[DelayGroup.G4] > 0
    return CheckResult(
        "figure16", ok,
        f"G3={counts[DelayGroup.G3]} G6={counts[DelayGroup.G6]}",
    )


#: Check registry: artifact name -> callable.
CHECKS: dict[str, Callable[[Artifact], CheckResult]] = {
    "table1": _check_table1,
    "table2": _check_table2,
    "table3": _check_table3,
    "figure1": lambda f: _fraction_band(f, 0.20, 0.70),
    "figure2": _check_figure2,
    "figure3": lambda f: _fraction_band(f, 0.45, 0.98),
    "figure4": lambda f: _fraction_band(f, 0.30, 0.95),
    "figure5": _check_figure5,
    "figure6": _check_figure6,
    "figure9": lambda f: _fraction_band(f, 0.10, 0.90),
    "figure10": lambda f: _fraction_band(f, 0.02, 0.98),
    "figure11": _check_figure11,
    "figure12": _check_figure12,
    "figure13": _check_figure13,
    "figure14": _check_figure14,
    "figure15": _check_figure15,
    "figure16": _check_figure16,
}


def grade(artifacts: dict[str, Artifact]) -> list[CheckResult]:
    """Run every applicable check over a reproduction's artifacts."""
    results: list[CheckResult] = []
    for name, check in CHECKS.items():
        artifact = artifacts.get(name)
        if artifact is None:
            continue
        try:
            results.append(check(artifact))
        except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
            # A malformed artifact (missing series, absent data keys, wrong
            # shapes) is a failed check, not a crash; anything else is a bug
            # and must propagate.
            results.append(CheckResult(name, False, f"check error: {exc}"))
    return results


def render_scorecard(results: list[CheckResult]) -> str:
    """Pass/warn table for terminal output."""
    lines = ["Scorecard (paper-shape checks):"]
    for r in results:
        mark = "PASS" if r.passed else "WARN"
        lines.append(f"  [{mark}] {r.artifact:<9} {r.detail}")
    passed = sum(r.passed for r in results)
    lines.append(f"  {passed}/{len(results)} checks passed")
    return "\n".join(lines)

"""Reproduction of the paper's Figures 1–16.

Every function takes the dataset suite and returns a
:class:`FigureResult`: the CDF curves / scatter points the paper plots,
headline statistics quoted in the paper's prose, and a rendered text
block.  Nothing here plots pixels — the *series* are the reproduction;
rendering them with any plotting tool reproduces the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis import analyze, analyze_bandwidth
from repro.core.ases import as_popularity, popularity_correlation
from repro.core.bandwidth import LossComposition
from repro.core.episodes import analyze_episodes
from repro.core.graph import Metric, build_graph
from repro.core.hosts import (
    contribution_cdf,
    greedy_host_removal,
    improvement_contributions,
    removal_cdfs,
    tail_heaviness,
)
from repro.core.medians import compare_mean_vs_median, max_cdf_discrepancy, mean_median_cdfs
from repro.core.propagation import (
    decompose_improvements,
    group_counts,
    propagation_cdfs,
)
from repro.core.stats import CDFSeries, make_cdf
from repro.core.timeofday import analyze_by_time_of_day
from repro.datasets.dataset import Dataset
from repro.experiments.report import render_cdf_summaries

#: Datasets plotted in Figures 1-3.
RTT_FIGURE_DATASETS = ["UW1", "UW3", "D2-NA", "D2"]


class FigureError(RuntimeError):
    """Raised when a figure's required datasets are missing."""


@dataclass
class FigureResult:
    """One reproduced figure.

    Attributes:
        name: Identifier, e.g. ``"figure1"``.
        title: The paper's caption, abbreviated.
        series: The figure's CDF curves (empty for pure scatters).
        data: Extra structured results (scatter points, group counts,
            headline fractions) keyed by name.
        text: Rendered summary for terminal output.
    """

    name: str
    title: str
    series: list[CDFSeries] = field(default_factory=list)
    data: dict[str, object] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _require(datasets: dict[str, Dataset], names: list[str]) -> None:
    missing = [n for n in names if n not in datasets]
    if missing:
        raise FigureError(f"missing datasets: {missing}")


def _improvement_figure(
    datasets: dict[str, Dataset],
    metric: Metric,
    *,
    name: str,
    title: str,
    min_samples: int,
    ratio: bool,
    unit: str,
) -> FigureResult:
    series: list[CDFSeries] = []
    data: dict[str, object] = {}
    for ds_name in RTT_FIGURE_DATASETS:
        if ds_name not in datasets:
            continue
        result = analyze(datasets[ds_name], metric, min_samples=min_samples)
        if not result.comparisons:
            continue  # too sparse at this scale to draw a curve
        curve = result.ratio_cdf(ds_name) if ratio else result.improvement_cdf(ds_name)
        series.append(curve)
        data[f"{ds_name}_fraction_improved"] = result.fraction_improved()
        data[f"{ds_name}_result"] = result
    text = render_cdf_summaries(series, title, unit=unit)
    return FigureResult(name=name, title=title, series=series, data=data, text=text)


def figure1(datasets: dict[str, Dataset], *, min_samples: int = 30) -> FigureResult:
    """Figure 1: CDF of mean-RTT improvement (default − best alternate)."""
    return _improvement_figure(
        datasets,
        Metric.RTT,
        name="figure1",
        title="Figure 1: RTT difference, default vs best alternate (ms)",
        min_samples=min_samples,
        ratio=False,
        unit="ms",
    )


def figure2(datasets: dict[str, Dataset], *, min_samples: int = 30) -> FigureResult:
    """Figure 2: CDF of the RTT ratio (default / best alternate)."""
    return _improvement_figure(
        datasets,
        Metric.RTT,
        name="figure2",
        title="Figure 2: relative RTT (default / best alternate)",
        min_samples=min_samples,
        ratio=True,
        unit="x",
    )


def figure3(datasets: dict[str, Dataset], *, min_samples: int = 30) -> FigureResult:
    """Figure 3: CDF of mean loss-rate improvement."""
    return _improvement_figure(
        datasets,
        Metric.LOSS,
        name="figure3",
        title="Figure 3: loss-rate difference, default vs best alternate",
        min_samples=min_samples,
        ratio=False,
        unit="",
    )


def _bandwidth_figure(
    datasets: dict[str, Dataset], *, name: str, title: str, ratio: bool
) -> FigureResult:
    _require(datasets, ["N2", "N2-NA"])
    series: list[CDFSeries] = []
    data: dict[str, object] = {}
    for ds_name in ["N2", "N2-NA"]:
        for comp in (LossComposition.PESSIMISTIC, LossComposition.OPTIMISTIC):
            result = analyze_bandwidth(datasets[ds_name], comp)
            if not result.comparisons:
                continue  # too sparse at this scale to draw a curve
            label = f"{ds_name} {comp.value}"
            curve = result.ratio_cdf(label) if ratio else result.improvement_cdf(label)
            series.append(curve)
            data[f"{label}_fraction_improved"] = result.fraction_improved()
            data[f"{label}_result"] = result
    text = render_cdf_summaries(series, title, unit="x" if ratio else "kB/s")
    return FigureResult(name=name, title=title, series=series, data=data, text=text)


def figure4(datasets: dict[str, Dataset]) -> FigureResult:
    """Figure 4: CDF of bandwidth improvement (one-hop alternates)."""
    return _bandwidth_figure(
        datasets,
        name="figure4",
        title="Figure 4: bandwidth difference, best one-hop alternate vs default (kB/s)",
        ratio=False,
    )


def figure5(datasets: dict[str, Dataset]) -> FigureResult:
    """Figure 5: CDF of the bandwidth ratio."""
    return _bandwidth_figure(
        datasets,
        name="figure5",
        title="Figure 5: relative bandwidth (best one-hop alternate / default)",
        ratio=True,
    )


def figure6(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "D2-NA"
) -> FigureResult:
    """Figure 6: mean vs median (convolution) improvements, one hop."""
    _require(datasets, [dataset])
    comparisons = compare_mean_vs_median(datasets[dataset], min_samples=min_samples)
    means, medians = mean_median_cdfs(comparisons)
    gap = max_cdf_discrepancy(comparisons)
    title = f"Figure 6: mean vs median one-hop RTT improvement ({dataset})"
    text = render_cdf_summaries([means, medians], title, unit="ms")
    text += f"\nmax CDF discrepancy (KS distance): {gap:.3f}"
    return FigureResult(
        name="figure6",
        title=title,
        series=[means, medians],
        data={"comparisons": comparisons, "max_discrepancy": gap},
        text=text,
    )


def _ci_figure(
    datasets: dict[str, Dataset],
    metric: Metric,
    *,
    name: str,
    title: str,
    dataset: str,
    min_samples: int,
    unit: str,
) -> FigureResult:
    _require(datasets, [dataset])
    result = analyze(datasets[dataset], metric, min_samples=min_samples)
    if not result.comparisons:
        raise FigureError(
            f"{dataset} has no analyzable pairs at min_samples={min_samples}"
        )
    comps = sorted(result.comparisons, key=lambda c: c.improvement)
    x = np.array([c.improvement for c in comps])
    intervals = np.array(
        [c.estimate.confidence_interval() for c in comps if c.estimate is not None]
    )
    curve = make_cdf(x, dataset)
    data = {
        "result": result,
        "ci_low": intervals[:, 0],
        "ci_high": intervals[:, 1],
        "mean_halfwidth": float(np.mean((intervals[:, 1] - intervals[:, 0]) / 2.0)),
    }
    text = render_cdf_summaries([curve], title, unit=unit)
    text += f"\nmean 95% CI half-width: {data['mean_halfwidth']:.3f}{unit}"
    return FigureResult(name=name, title=title, series=[curve], data=data, text=text)


def figure7(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "UW3"
) -> FigureResult:
    """Figure 7: UW3 RTT improvement CDF with 95 % confidence intervals."""
    return _ci_figure(
        datasets,
        Metric.RTT,
        name="figure7",
        title="Figure 7: RTT improvement with 95% CIs (UW3)",
        dataset=dataset,
        min_samples=min_samples,
        unit="ms",
    )


def figure8(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "UW3"
) -> FigureResult:
    """Figure 8: UW3 loss improvement CDF with 95 % confidence intervals."""
    return _ci_figure(
        datasets,
        Metric.LOSS,
        name="figure8",
        title="Figure 8: loss improvement with 95% CIs (UW3)",
        dataset=dataset,
        min_samples=min_samples,
        unit="",
    )


def _timeofday_figure(
    datasets: dict[str, Dataset],
    metric: Metric,
    *,
    name: str,
    title: str,
    dataset: str,
    min_samples: int,
    unit: str,
) -> FigureResult:
    _require(datasets, [dataset])
    results = analyze_by_time_of_day(datasets[dataset], metric, min_samples=min_samples)
    series = [
        r.improvement_cdf(label)
        for label, r in results.items()
        if r.comparisons
    ]
    data: dict[str, object] = {"results": results}
    for label, r in results.items():
        data[f"{label}_fraction_improved"] = r.fraction_improved()
    text = render_cdf_summaries(series, title, unit=unit)
    return FigureResult(name=name, title=title, series=series, data=data, text=text)


def figure9(
    datasets: dict[str, Dataset], *, min_samples: int = 5, dataset: str = "UW3"
) -> FigureResult:
    """Figure 9: RTT improvement by time of day / weekend (UW3)."""
    return _timeofday_figure(
        datasets,
        Metric.RTT,
        name="figure9",
        title="Figure 9: RTT improvement by time of day (UW3, PST bins)",
        dataset=dataset,
        min_samples=min_samples,
        unit="ms",
    )


def figure10(
    datasets: dict[str, Dataset], *, min_samples: int = 5, dataset: str = "UW3"
) -> FigureResult:
    """Figure 10: loss improvement by time of day / weekend (UW3)."""
    return _timeofday_figure(
        datasets,
        Metric.LOSS,
        name="figure10",
        title="Figure 10: loss improvement by time of day (UW3, PST bins)",
        dataset=dataset,
        min_samples=min_samples,
        unit="",
    )


def figure11(
    datasets: dict[str, Dataset],
    *,
    min_samples: int = 30,
    max_episodes: int | None = None,
) -> FigureResult:
    """Figure 11: long-term average (UW4-B) vs simultaneous (UW4-A)."""
    _require(datasets, ["UW4-A", "UW4-B"])
    b_result = analyze(datasets["UW4-B"], Metric.RTT, min_samples=min_samples)
    episode_analysis = analyze_episodes(datasets["UW4-A"], max_episodes=max_episodes)
    series = [
        b_result.improvement_cdf("UW4-B"),
        episode_analysis.pair_averaged_cdf("pair-averaged UW4-A"),
        episode_analysis.unaveraged_cdf("unaveraged UW4-A"),
    ]
    title = "Figure 11: long-term average vs simultaneous measurement"
    text = render_cdf_summaries(series, title, unit="ms")
    return FigureResult(
        name="figure11",
        title=title,
        series=series,
        data={
            "uw4b_result": b_result,
            "episode_analysis": episode_analysis,
        },
        text=text,
    )


def figure12(
    datasets: dict[str, Dataset],
    *,
    min_samples: int = 30,
    dataset: str = "UW3",
    k: int = 10,
) -> FigureResult:
    """Figure 12: greedy removal of the 'top ten' hosts (UW3 RTT)."""
    _require(datasets, [dataset])
    graph = build_graph(datasets[dataset], Metric.RTT, min_samples=min_samples)
    baseline = analyze(datasets[dataset], Metric.RTT, min_samples=min_samples)
    steps = greedy_host_removal(graph, k=k, dataset_name=dataset)
    full, pruned = removal_cdfs(baseline, steps)
    title = f"Figure 12: improvement CDF before/after removing top {k} hosts ({dataset})"
    text = render_cdf_summaries([full, pruned], title, unit="ms")
    text += "\nremoved: " + ", ".join(s.removed for s in steps)
    return FigureResult(
        name="figure12",
        title=title,
        series=[full, pruned],
        data={
            "steps": steps,
            "baseline_fraction": baseline.fraction_improved(),
            "pruned_fraction": (
                steps[-1].result.fraction_improved() if steps else None
            ),
        },
        text=text,
    )


def figure13(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "UW3"
) -> FigureResult:
    """Figure 13: CDF of per-host normalized improvement contribution."""
    _require(datasets, [dataset])
    graph = build_graph(datasets[dataset], Metric.RTT, min_samples=min_samples)
    contributions = improvement_contributions(graph)
    curve = contribution_cdf(contributions, label=dataset)
    heaviness = tail_heaviness(contributions)
    title = "Figure 13: normalized improvement contribution per host"
    text = render_cdf_summaries([curve], title)
    text += f"\ntop-10% hosts hold {100.0 * heaviness:.0f}% of total contribution"
    return FigureResult(
        name="figure13",
        title=title,
        series=[curve],
        data={"contributions": contributions, "tail_heaviness": heaviness},
        text=text,
    )


def figure14(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "UW1"
) -> FigureResult:
    """Figure 14: AS appearances in default vs best-alternate paths."""
    _require(datasets, [dataset])
    result = analyze(datasets[dataset], Metric.RTT, min_samples=min_samples)
    points = as_popularity(datasets[dataset], result)
    corr = popularity_correlation(points)
    title = "Figure 14: per-AS default vs alternate path appearances"
    lines = [title]
    lines.append(f"ASes plotted: {len(points)}; log-log correlation: {corr:.2f}")
    top = sorted(points, key=lambda p: -(p.direct + p.alternate))[:8]
    for p in top:
        lines.append(f"  AS{p.asn}: direct={p.direct} alternate={p.alternate}")
    return FigureResult(
        name="figure14",
        title=title,
        series=[],
        data={"points": points, "correlation": corr},
        text="\n".join(lines),
    )


def figure15(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "UW3"
) -> FigureResult:
    """Figure 15: propagation-delay vs mean-RTT improvement CDFs (UW3)."""
    _require(datasets, [dataset])
    prop_curve, rtt_curve = propagation_cdfs(
        datasets[dataset], min_samples=min_samples
    )
    title = "Figure 15: propagation-delay vs mean-RTT improvement (UW3)"
    text = render_cdf_summaries([prop_curve, rtt_curve], title, unit="ms")
    return FigureResult(
        name="figure15",
        title=title,
        series=[prop_curve, rtt_curve],
        data={
            "prop_fraction_improved": prop_curve.fraction_above(0.0),
            "rtt_fraction_improved": rtt_curve.fraction_above(0.0),
        },
        text=text,
    )


def figure16(
    datasets: dict[str, Dataset], *, min_samples: int = 30, dataset: str = "UW3"
) -> FigureResult:
    """Figure 16: decomposition of RTT improvements into propagation vs
    queuing components, with the six-group classification (UW3)."""
    _require(datasets, [dataset])
    points = decompose_improvements(datasets[dataset], min_samples=min_samples)
    counts = group_counts(points)
    title = "Figure 16: propagation vs total RTT improvement decomposition (UW3)"
    lines = [title, f"points: {len(points)}"]
    for group, count in sorted(counts.items(), key=lambda kv: kv[0].value):
        lines.append(f"  group {group.value}: {count}")
    return FigureResult(
        name="figure16",
        title=title,
        series=[],
        data={"points": points, "group_counts": counts},
        text="\n".join(lines),
    )


#: All figure entry points keyed by name, for the benchmark harness.
ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "figure16": figure16,
}

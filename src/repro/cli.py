"""The ``repro`` command-line interface.

Subcommands::

    repro traceroute --seed 7 --src 0 --dst 3     # demo traceroute
    repro build --dataset UW3 --scale 0.1 -o uw3.jsonl
    repro analyze uw3.jsonl --metric rtt          # alternate-path analysis
    repro suite --scale 1.0 --jobs 4              # (re)build the suite cache
    repro suite --scale 0.1 --trace out.json      # ... with a RunTrace
    repro reproduce --scale 1.0 --markdown report.md
    repro trace out.json --top 10                 # inspect a RunTrace
    repro check --strict                          # determinism static analysis
    repro bench --compare                         # perf vs BENCH_routing.json
    repro whatif --scenario 'link-down:6-11:at=600:for=900' -o whatif.jsonl

``analyze`` works on any dataset written by ``build`` (or by
:func:`repro.datasets.save_dataset`), prints the headline statistics, and
draws the improvement CDF as an ASCII plot.

File-taking subcommands accept the path either positionally or as a flag
(``repro analyze out.jsonl`` == ``repro analyze --dataset-file
out.jsonl``); the flag spelling is canonical, the positional is kept as
an alias for the old CLI surface.

Exit codes are consistent across subcommands (see docs/METHODOLOGY.md):

* 0 — success.
* 1 — operation failed (e.g. a dataset group build exhausted its
  retries, or an analysis found nothing to analyze).
* 2 — bad usage: unknown dataset, unreadable input file, malformed
  ``--fault-plan`` spec.
* 3 — partial success: ``--keep-going`` completed with some dataset
  groups missing.
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np

#: The subcommand-wide exit-code contract (documented in --help).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3

#: The single authoritative statement of the exit-code contract; every
#: subcommand's --help carries it via :func:`_exit_codes_epilog`.
_EXIT_CODES_TEXT = """\
exit codes:
  0  success
  1  operation failed (build retries exhausted, nothing to analyze, ...)
  2  bad usage (unknown dataset or strategy, unreadable file, malformed
     --fault-plan or --scenario spec)
  3  partial success (--keep-going finished with datasets missing, or a
     scenario left N pairs permanently disconnected)
"""

_COMMAND_SURFACE = """\
command surface:
  traceroute   demo traceroute between two simulated hosts
  build        build one paper dataset and save it (--dataset, -o)
  analyze      alternate-path analysis of a dataset file
               (--dataset-file PATH, or positionally)
  summarize    diagnostic summary of a dataset file
               (--dataset-file PATH, or positionally)
  map          render a topology to an SVG map
  suite        build or load the full Table 1 dataset suite
               (--jobs, --routing-jobs, --no-cache, --trace out.json,
               robustness flags)
  reproduce    regenerate the paper's tables/figures
               (--only, -o report.md, --svg-dir, --trace out.json)
  trace        inspect a RunTrace written by --trace
               (--trace-file PATH or positionally; --top N, --validate)
  check        determinism-and-invariant static analysis
               (--deep whole-program ARCH/PAR/PERF; --changed diff scope)
  bench        record/compare a perf baseline (BENCH_routing.json,
               BENCH_measurement.json, BENCH_service.json,
               BENCH_topology.json)
  whatif       run a failure/what-if scenario and the disjoint-path
               availability analysis (--scenario SPEC | --scenario-file;
               --scale PRESET; see docs/SCENARIOS.md)
  serve        run the online Detour path-selection service and score
               strategies against the oracle (--strategy, --duration,
               --pairs, --scale PRESET; see docs/API.md)
"""


def _exit_codes_epilog() -> str:
    """The shared exit-code epilog attached to every subcommand parser."""
    return _EXIT_CODES_TEXT


def _add_seed_arg(p: argparse.ArgumentParser, default: int = 1999) -> None:
    """The uniform ``--seed`` flag (identical help text everywhere)."""
    p.add_argument(
        "--seed",
        type=int,
        default=default,
        help=f"master seed; every derived random stream and artifact is "
        f"deterministic in it (default {default})",
    )


def _add_routing_jobs_arg(p: argparse.ArgumentParser) -> None:
    """The uniform ``--routing-jobs`` flag."""
    p.add_argument(
        "--routing-jobs",
        type=int,
        default=None,
        help="BGP batch-convergence worker processes "
        "(default: REPRO_ROUTING_JOBS or serial)",
    )


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    """The uniform ``--trace PATH`` flag."""
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a RunTrace JSON (plus metrics.json alongside); "
        "inspect with `repro trace PATH`",
    )


def _add_output_arg(
    p: argparse.ArgumentParser,
    what: str,
    *,
    default: str | None = None,
    required: bool = False,
) -> None:
    """The uniform ``-o/--output PATH`` flag (per-command target text)."""
    p.add_argument(
        "-o",
        "--output",
        default=default,
        required=required,
        metavar="PATH",
        help=what,
    )


#: Sentinel returned by :func:`_resolve_optional_alias` on conflicting
#: values (both spellings given, different targets).
_ALIAS_CONFLICT = object()


def _resolve_optional_alias(
    a: str | None, b: str | None, a_flag: str, b_flag: str
):
    """Merge two optional alias flags; :data:`_ALIAS_CONFLICT` on clash."""
    if a is not None and b is not None and a != b:
        print(
            f"conflicting arguments: {a_flag} {a!r} vs {b_flag} {b!r}",
            file=sys.stderr,
        )
        return _ALIAS_CONFLICT
    return b if b is not None else a


def _resolve_path_arg(
    positional: str | None,
    flagged: str | None,
    what: str,
    flag: str,
) -> str | None:
    """One value from a positional/flag alias pair, or None on bad usage.

    The two spellings are interchangeable; giving both (with different
    values) is ambiguous and reported as a usage error by the caller.
    """
    if positional is not None and flagged is not None and positional != flagged:
        print(
            f"conflicting {what} arguments: positional {positional!r} "
            f"vs {flag} {flagged!r}",
            file=sys.stderr,
        )
        return None
    value = flagged if flagged is not None else positional
    if value is None:
        print(
            f"{what} required (positionally or via {flag})", file=sys.stderr
        )
        return None
    return value


def _cmd_traceroute(args: argparse.Namespace) -> int:
    from repro.measurement import TracerouteTool
    from repro.netsim import NetworkConditions, SECONDS_PER_DAY
    from repro.routing import PathResolver
    from repro.topology import TopologyConfig, generate_topology, place_hosts

    topo = generate_topology(TopologyConfig.for_era(args.era, seed=args.seed))
    place_hosts(
        topo, max(args.src, args.dst) + 1, seed=args.seed + 1,
        north_america_only=True, rate_limit_fraction=0.0,
    )
    names = topo.host_names()
    src, dst = names[args.src], names[args.dst]
    resolver = PathResolver(topo)
    conditions = NetworkConditions(topo, seed=args.seed + 2)
    from repro.topology import AddressPlan

    tool = TracerouteTool(topo, conditions)
    plan = AddressPlan(topo)
    rng = np.random.default_rng((args.seed, 3))
    result = tool.trace(
        resolver.resolve_round_trip(src, dst),
        t=args.day * SECONDS_PER_DAY + args.hour * 3600.0,
        rng=rng,
    )
    print(f"traceroute from {src} to {dst}")
    for hop in result.hops:
        samples = "  ".join(
            "      *" if math.isnan(r) else f"{r:7.1f}" for r in hop.rtt_ms
        )
        print(f"  {hop.ttl:2d}  {plan.format_hop(hop.router_id):<58} {samples}  ms")
    as_path = " -> ".join(f"AS{a}" for a in result.as_path(topo))
    print(f"AS path: {as_path}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.datasets import (
        BuildConfig,
        build_d2,
        build_n2,
        build_uw1,
        build_uw3,
        build_uw4,
        save_dataset,
    )

    cfg = BuildConfig(seed=args.seed, scale=args.scale)
    # Only run the builder that produces the requested dataset.
    builders = {
        "D2": lambda: build_d2(cfg)[0],
        "D2-NA": lambda: build_d2(cfg)[1],
        "N2": lambda: build_n2(cfg)[0],
        "N2-NA": lambda: build_n2(cfg)[1],
        "UW1": lambda: build_uw1(cfg),
        "UW3": lambda: build_uw3(cfg)[0],
        "UW4-A": lambda: build_uw4(cfg)[0],
        "UW4-B": lambda: build_uw4(cfg)[1],
    }
    if args.dataset not in builders:
        print(
            f"unknown dataset {args.dataset!r}; choose from {sorted(builders)}",
            file=sys.stderr,
        )
        return 2
    dataset = builders[args.dataset]()
    save_dataset(dataset, args.output)
    row = dataset.table1_row()
    print(
        f"wrote {args.output}: {row['hosts']} hosts, "
        f"{row['measurements']} measurements, "
        f"{row['paths_covered_pct']}% of paths covered"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core import LossComposition, Metric, analyze, analyze_bandwidth
    from repro.datasets import DatasetIOError, load_dataset
    from repro.viz import ascii_cdf

    dataset_file = _resolve_path_arg(
        args.dataset_file_pos, args.dataset_file, "dataset file", "--dataset-file"
    )
    if dataset_file is None:
        return EXIT_USAGE
    try:
        dataset = load_dataset(dataset_file)
    except DatasetIOError as exc:
        print(f"unreadable dataset: {exc}", file=sys.stderr)
        return 2
    metric = Metric(args.metric)
    if metric is Metric.BANDWIDTH:
        result = analyze_bandwidth(
            dataset, LossComposition(args.loss_composition)
        )
    else:
        result = analyze(dataset, metric, min_samples=args.min_samples)
    if not result.comparisons:
        print("no analyzable pairs (try a lower --min-samples)", file=sys.stderr)
        return 1
    print(
        f"{dataset.meta.name}: {len(result)} pairs analyzed under {metric.value}"
    )
    print(f"  alternate superior        : {result.fraction_improved():.1%}")
    improvements = result.improvements()
    print(f"  median improvement        : {np.median(improvements):+.2f}")
    print(f"  90th pct improvement      : {np.percentile(improvements, 90):+.2f}")
    best = max(result.comparisons, key=lambda c: c.improvement)
    print(
        f"  biggest win               : {best.src} -> {best.dst} "
        f"via {' -> '.join(best.via)} ({best.improvement:+.2f})"
    )
    print()
    print(ascii_cdf([result.improvement_cdf()], title="improvement CDF"))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.topology import TopologyConfig, generate_topology, place_hosts
    from repro.viz import save_topology_map

    topo = generate_topology(TopologyConfig.for_era(args.era, seed=args.seed))
    if args.hosts:
        place_hosts(
            topo, args.hosts, seed=args.seed + 1,
            north_america_only=args.era == "1999",
        )
    out = save_topology_map(
        topo, args.output,
        title=f"{args.era}-era topology (seed {args.seed})",
    )
    print(f"wrote {out}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.datasets import BuildConfig, BuildReport
    from repro.datasets.builders import table1_order
    from repro.experiments.runner import provision_datasets
    from repro.faults import BuildFailure, FaultPlanError
    from repro.obs import runtime as obs

    cfg = BuildConfig(seed=args.seed, scale=args.scale)
    report = BuildReport()
    capture_ctx = obs.capture() if args.trace else nullcontext()
    try:
        with capture_ctx as cap:
            datasets = provision_datasets(
                cfg,
                use_cache=not args.no_cache,
                jobs=args.jobs,
                routing_jobs=args.routing_jobs,
                report=report,
                progress=print,
                fault_plan=args.fault_plan,
                build_timeout=args.build_timeout,
                keep_going=args.keep_going,
                resume=args.resume,
            )
    except FaultPlanError as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BuildFailure as exc:
        print(f"dataset build failed: {exc}", file=sys.stderr)
        print(report.summary(), file=sys.stderr)
        return EXIT_FAILURE
    if args.trace:
        from repro.obs.artifact import write_run_trace

        meta = {
            "command": "suite",
            "seed": args.seed,
            "scale": args.scale,
            "jobs": args.jobs,
        }
        trace_path, metrics_path = write_run_trace(cap, meta, args.trace)
        print(f"wrote trace {trace_path} and {metrics_path}")
    lines = [report.summary()]
    for name in table1_order():
        if name not in datasets:
            lines.append(f"  {name:<6} MISSING (build failed; see report above)")
            continue
        row = datasets[name].table1_row()
        lines.append(
            f"  {name:<6} {row['hosts']:>3} hosts  "
            f"{row['measurements']:>8} measurements"
        )
    summary = "\n".join(lines)
    print(summary)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(summary + "\n")
        print(f"wrote {args.output}")
    if len(datasets) < len(table1_order()):
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.datasets import DatasetIOError, load_dataset, summarize

    dataset_file = _resolve_path_arg(
        args.dataset_file_pos, args.dataset_file, "dataset file", "--dataset-file"
    )
    if dataset_file is None:
        return EXIT_USAGE
    try:
        dataset = load_dataset(dataset_file)
    except DatasetIOError as exc:
        print(f"unreadable dataset: {exc}", file=sys.stderr)
        return 2
    print(summarize(dataset).render())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.quality.cli import run

    return run(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import run as bench_run

    return bench_run(args)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import main as reproduce_main

    markdown = _resolve_optional_alias(
        args.markdown, args.output, "--markdown", "-o/--output"
    )
    if markdown is _ALIAS_CONFLICT:
        return EXIT_USAGE
    forwarded = ["--scale", str(args.scale), "--seed", str(args.seed)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.routing_jobs is not None:
        forwarded += ["--routing-jobs", str(args.routing_jobs)]
    if markdown:
        forwarded += ["--markdown", markdown]
    if args.svg_dir:
        forwarded += ["--svg-dir", args.svg_dir]
    if args.only:
        forwarded += ["--only", args.only]
    if args.fault_plan is not None:
        forwarded += ["--fault-plan", args.fault_plan]
    if args.build_timeout is not None:
        forwarded += ["--build-timeout", str(args.build_timeout)]
    if args.keep_going:
        forwarded += ["--keep-going"]
    if args.resume:
        forwarded += ["--resume"]
    if args.trace:
        forwarded += ["--trace", args.trace]
    return reproduce_main(forwarded)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import RunTrace, TraceError, render_trace

    trace_file = _resolve_path_arg(
        args.trace_file_pos, args.trace_file, "trace file", "--trace-file"
    )
    if trace_file is None:
        return EXIT_USAGE
    try:
        trace = RunTrace.load(trace_file)
    except OSError as exc:
        print(f"unreadable trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except TraceError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.validate:
        from repro.obs import TRACE_SCHEMA, validate

        errors = validate(trace.payload(), TRACE_SCHEMA)
        if errors:
            for err in errors:
                print(f"schema violation: {err}", file=sys.stderr)
            return EXIT_FAILURE
        print(f"{trace_file}: valid RunTrace (version {trace.VERSION})")
    print(render_trace(trace, top=args.top))
    return EXIT_OK


def _read_scenario_spec(args: argparse.Namespace) -> str | None:
    """The scenario spec from ``--scenario``/``--scenario-file``.

    Returns the spec text ("" for none given); None means bad usage (the
    error has been printed).
    """
    if args.scenario is not None and args.scenario_file is not None:
        print(
            "give --scenario or --scenario-file, not both", file=sys.stderr
        )
        return None
    spec = args.scenario
    if args.scenario_file is not None:
        try:
            with open(args.scenario_file, encoding="utf-8") as fh:
                spec = fh.read()
        except OSError as exc:
            print(f"unreadable scenario file: {exc}", file=sys.stderr)
            return None
    return spec or ""


def _cmd_whatif(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.experiments.runner import _routing_jobs_env
    from repro.obs import runtime as obs
    from repro.scenario import (
        ScenarioError,
        ScenarioPlan,
        ScenarioPlanError,
        ScenarioRun,
    )

    spec = _read_scenario_spec(args)
    if spec is None:
        return EXIT_USAGE
    try:
        plan = ScenarioPlan.parse(spec)
        with _routing_jobs_env(args.routing_jobs):
            capture_ctx = obs.capture() if args.trace else nullcontext()
            with capture_ctx as cap:
                run = ScenarioRun(
                    plan, seed=args.seed, n_hosts=args.hosts, scale=args.scale
                )
                dataset, report = run.execute()
    except (ScenarioPlanError, ScenarioError) as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"bad usage: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.output:
        from repro.datasets import save_dataset

        save_dataset(dataset, args.output)
        print(f"wrote {args.output}")
    if args.trace:
        from repro.obs.artifact import write_run_trace

        meta = {
            "command": "whatif",
            "seed": args.seed,
            "scenario": plan.to_spec(),
        }
        trace_path, metrics_path = write_run_trace(cap, meta, args.trace)
        print(f"wrote trace {trace_path} and {metrics_path}")
    print(report.render())
    n_disconnected = len(report.permanently_disconnected)
    if n_disconnected:
        print(
            f"scenario left {n_disconnected} pairs permanently disconnected",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.experiments.runner import _routing_jobs_env
    from repro.obs import runtime as obs
    from repro.scenario import ScenarioError, ScenarioPlan, ScenarioPlanError
    from repro.service import (
        DetourService,
        ServiceError,
        StrategyError,
        evaluate_strategies,
        strategy_names,
    )

    spec = _read_scenario_spec(args)
    if spec is None:
        return EXIT_USAGE
    strategies = tuple(args.strategy) if args.strategy else strategy_names()
    if any(s == "all" for s in strategies):
        strategies = strategy_names()
    try:
        plan = ScenarioPlan.parse(spec)
        with _routing_jobs_env(args.routing_jobs):
            capture_ctx = obs.capture() if args.trace else nullcontext()
            with capture_ctx as cap:
                service = DetourService(
                    plan,
                    seed=args.seed,
                    n_hosts=args.hosts,
                    n_pairs=args.pairs,
                    duration_s=args.duration,
                    probe_interval_s=args.probe_interval,
                    relays_per_pair=args.relays,
                    scale=args.scale,
                )
                report = evaluate_strategies(service, strategies)
    except (ScenarioPlanError, ScenarioError) as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (StrategyError, ServiceError, ValueError) as exc:
        # ValueError covers bad --scale presets (ScaleError) and the like.
        print(f"bad usage: {exc}", file=sys.stderr)
        return EXIT_USAGE
    table = report.render()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.output}")
    if args.trace:
        from repro.obs.artifact import write_run_trace

        meta = {
            "command": "serve",
            "seed": args.seed,
            "scenario": plan.to_spec(),
            "strategies": list(strategies),
        }
        trace_path, metrics_path = write_run_trace(cap, meta, args.trace)
        print(f"wrote trace {trace_path} and {metrics_path}")
    print(table)
    print()
    print("throughput (wall clock, not part of the deterministic table):")
    print("\n".join(report.timing_lines()))
    if report.pairs_down_at_end:
        print(
            f"service ended with {len(report.pairs_down_at_end)} pairs "
            "fully down (every candidate path unresolvable)",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


def _add_robustness_args(p: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by ``suite`` and ``reproduce``."""
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="deterministic fault-injection plan, e.g. 'crash:uw3;truncate:N2' "
        "(default: REPRO_FAULT_PLAN; see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--build-timeout",
        type=float,
        default=None,
        help="per-attempt deadline (seconds) for each dataset group build "
        "(default: REPRO_BUILD_TIMEOUT or unbounded)",
    )
    p.add_argument(
        "--keep-going",
        action="store_true",
        help="on a group build failure, continue with the surviving datasets "
        "and exit 3 instead of aborting",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip dataset groups a prior interrupted run already completed "
        "(run-ledger.json)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The End-to-End Effects of Internet "
        "Path Selection' (SIGCOMM 1999)",
        epilog=_COMMAND_SURFACE + "\n" + _exit_codes_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        """A subparser carrying the shared exit-code epilog."""
        return sub.add_parser(
            name,
            epilog=_exit_codes_epilog(),
            formatter_class=argparse.RawDescriptionHelpFormatter,
            **kwargs,
        )

    p = add_parser("traceroute", help="run a demo traceroute")
    _add_seed_arg(p, default=7)
    p.add_argument("--era", choices=["1995", "1999"], default="1999")
    p.add_argument("--src", type=int, default=0, help="source host index")
    p.add_argument("--dst", type=int, default=1, help="destination host index")
    p.add_argument("--day", type=int, default=2, help="simulation day")
    p.add_argument("--hour", type=float, default=18.0, help="UTC hour")
    p.set_defaults(func=_cmd_traceroute)

    p = add_parser("build", help="build one paper dataset and save it")
    p.add_argument("--dataset", default="UW3")
    _add_seed_arg(p)
    p.add_argument("--scale", type=float, default=0.1)
    _add_output_arg(p, "write the dataset here (jsonl)", required=True)
    p.set_defaults(func=_cmd_build)

    p = add_parser("analyze", help="alternate-path analysis of a dataset file")
    p.add_argument(
        "dataset_file_pos",
        nargs="?",
        default=None,
        metavar="dataset_file",
        help="dataset file to analyze (alias for --dataset-file)",
    )
    p.add_argument(
        "--dataset-file",
        default=None,
        metavar="PATH",
        help="dataset file to analyze (canonical flag form)",
    )
    p.add_argument(
        "--metric",
        choices=["rtt", "loss", "prop-delay", "bandwidth"],
        default="rtt",
    )
    p.add_argument("--min-samples", type=int, default=5)
    p.add_argument(
        "--loss-composition",
        choices=["optimistic", "pessimistic"],
        default="pessimistic",
        help="loss combination for the bandwidth metric",
    )
    p.set_defaults(func=_cmd_analyze)

    p = add_parser("map", help="render a topology to an SVG map")
    p.add_argument("--era", choices=["1995", "1999"], default="1999")
    _add_seed_arg(p, default=42)
    p.add_argument("--hosts", type=int, default=15)
    _add_output_arg(p, "write the SVG map here", default="topology.svg")
    p.set_defaults(func=_cmd_map)

    p = add_parser("summarize", help="diagnostic summary of a dataset file")
    p.add_argument(
        "dataset_file_pos",
        nargs="?",
        default=None,
        metavar="dataset_file",
        help="dataset file to summarize (alias for --dataset-file)",
    )
    p.add_argument(
        "--dataset-file",
        default=None,
        metavar="PATH",
        help="dataset file to summarize (canonical flag form)",
    )
    p.set_defaults(func=_cmd_summarize)

    p = add_parser(
        "suite",
        help="build or load the full Table 1 dataset suite (parallel, cached)",
    )
    _add_seed_arg(p)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="build worker processes (default: REPRO_BUILD_JOBS or one per CPU)",
    )
    _add_routing_jobs_arg(p)
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="force a rebuild without reading or writing the cache",
    )
    _add_trace_arg(p)
    _add_output_arg(p, "also write the suite summary text here")
    _add_robustness_args(p)
    p.set_defaults(func=_cmd_suite)

    p = add_parser("reproduce", help="regenerate the paper's tables/figures")
    p.add_argument("--scale", type=float, default=1.0)
    _add_seed_arg(p)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="dataset build worker processes (default: one per CPU)",
    )
    _add_routing_jobs_arg(p)
    p.add_argument(
        "--markdown",
        default=None,
        metavar="PATH",
        help="write the markdown report here (alias of -o/--output)",
    )
    p.add_argument("--svg-dir", default=None)
    p.add_argument("--only", default=None)
    _add_trace_arg(p)
    _add_output_arg(p, "write the markdown report here (same as --markdown)")
    _add_robustness_args(p)
    p.set_defaults(func=_cmd_reproduce)

    p = add_parser(
        "trace",
        help="inspect a RunTrace written by `suite --trace` or "
        "`reproduce --trace`",
    )
    p.add_argument(
        "trace_file_pos",
        nargs="?",
        default=None,
        metavar="trace_file",
        help="RunTrace JSON to inspect (alias for --trace-file)",
    )
    p.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="RunTrace JSON to inspect (canonical flag form)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        help="number of slowest spans to show (default 10)",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="validate the artifact against the RunTrace schema first",
    )
    p.set_defaults(func=_cmd_trace)

    p = add_parser(
        "check",
        help="determinism-and-invariant static analysis (see docs/STATIC_ANALYSIS.md)",
    )
    from repro.quality.cli import configure_parser as _configure_check_parser

    _configure_check_parser(p)
    p.set_defaults(func=_cmd_check)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scenario",
            default=None,
            metavar="SPEC",
            help="scenario plan spec, e.g. 'link-down:6-11:at=600:for=900' "
            "(clauses joined with ';'; empty = calm network)",
        )
        p.add_argument(
            "--scenario-file",
            default=None,
            metavar="PATH",
            help="read the scenario spec from a file instead",
        )
        p.add_argument(
            "--scale",
            default=None,
            metavar="PRESET",
            help="topology scale preset (1k, 10k, 100k, paper-1995, "
            "paper-1999; default: the 1999-era paper topology)",
        )

    p = add_parser(
        "whatif",
        help="run a network failure/what-if scenario "
        "(see docs/SCENARIOS.md for the clause grammar)",
    )
    add_scenario_args(p)
    _add_seed_arg(p)
    p.add_argument(
        "--hosts", type=int, default=12, help="measurement host pool size"
    )
    _add_routing_jobs_arg(p)
    _add_output_arg(p, "write the scenario dataset here (jsonl)")
    _add_trace_arg(p)
    p.set_defaults(func=_cmd_whatif)

    p = add_parser(
        "serve",
        help="run the online Detour path-selection service and score "
        "strategies against the oracle alternates",
    )
    p.add_argument(
        "--strategy",
        action="append",
        default=None,
        metavar="NAME",
        help="path-selection strategy to evaluate (repeatable; "
        "'all' or omitted = every registered strategy)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="simulated horizon (extended to cover the scenario's last "
        "transition; default 1800)",
    )
    p.add_argument(
        "--pairs",
        type=int,
        default=6,
        help="number of (src, dst) client pairs to serve (default 6)",
    )
    p.add_argument(
        "--hosts", type=int, default=12, help="measurement host pool size"
    )
    p.add_argument(
        "--probe-interval",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="seconds between active probe rounds (default 300, one "
        "congestion bucket)",
    )
    p.add_argument(
        "--relays",
        type=int,
        default=2,
        help="detour relays discovered per pair (default 2)",
    )
    add_scenario_args(p)
    _add_seed_arg(p)
    _add_routing_jobs_arg(p)
    _add_output_arg(p, "write the strategy-vs-oracle table here")
    _add_trace_arg(p)
    p.set_defaults(func=_cmd_serve)

    p = add_parser(
        "bench",
        help="record or compare a perf baseline (BENCH_routing.json, "
        "BENCH_measurement.json, BENCH_service.json, BENCH_topology.json; "
        "see docs/PERFORMANCE.md)",
    )
    from repro.experiments.bench import configure_parser as _configure_bench_parser

    _configure_bench_parser(p)
    _add_seed_arg(p)
    _add_routing_jobs_arg(p)
    _add_trace_arg(p)
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

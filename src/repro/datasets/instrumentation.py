"""Lightweight build/cache instrumentation for dataset provisioning.

The dataset pipeline (``repro.experiments.runner``) threads a
:class:`BuildReport` through cache probing, parallel group builds, and
atomic saves.  Builders and workers record :class:`BuildEvent` entries
(phase + wall time + worker PID); the cache layer counts hits and misses.
``repro suite`` and ``repro reproduce`` print :meth:`BuildReport.summary`
so every run shows where its dataset time went.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs import clock
from repro.obs import runtime as obs

#: Phases a build event can describe.
PHASES = ("build", "load", "save", "verify", "lock-wait", "backoff")


@dataclass(frozen=True, slots=True)
class BuildEvent:
    """One timed step of dataset provisioning.

    Attributes:
        label: Dataset name (``"UW3"``) or build-group label
            (``"d2 -> D2+D2-NA"``) the step worked on.
        phase: One of :data:`PHASES`.
        duration_s: Wall-clock duration of the step.
        worker_pid: PID of the process that performed the step —
            distinguishes pool workers from the coordinating process.
    """

    label: str
    phase: str
    duration_s: float
    worker_pid: int


@dataclass
class BuildReport:
    """Accumulated timings and cache counters for one provisioning call.

    Besides timings and hit/miss counters, the report carries the
    resilience trail of a supervised build: retries (with reasons),
    quarantined cache files, groups that exhausted their retry budget,
    groups a ``--resume`` run skipped, and free-form fault notes (e.g.
    broken-pool fallbacks).  ``repro suite``/``repro reproduce`` print
    all of it via :meth:`summary`.
    """

    events: list[BuildEvent] = field(default_factory=list)
    cache_hits: list[str] = field(default_factory=list)
    cache_misses: list[str] = field(default_factory=list)
    retries: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    failed_groups: list[str] = field(default_factory=list)
    resumed_groups: list[str] = field(default_factory=list)
    fault_notes: list[str] = field(default_factory=list)

    def record(self, label: str, phase: str, duration_s: float,
               worker_pid: int | None = None) -> None:
        """Append one event (PID defaults to the current process)."""
        self.events.append(
            BuildEvent(
                label=label,
                phase=phase,
                duration_s=duration_s,
                worker_pid=os.getpid() if worker_pid is None else worker_pid,
            )
        )

    def extend(self, events: list[BuildEvent]) -> None:
        """Merge events produced elsewhere (e.g. in a pool worker)."""
        self.events.extend(events)

    def hit(self, name: str) -> None:
        self.cache_hits.append(name)

    def miss(self, name: str) -> None:
        self.cache_misses.append(name)

    def retry(self, label: str, reason: str) -> None:
        """Record one failed attempt that will be retried."""
        self.retries.append(f"{label}: {reason}")

    def quarantine(self, name: str, target: str, reason: str) -> None:
        """Record an unreadable cache file renamed out of the way."""
        self.quarantined.append(f"{name} -> {target}: {reason}")

    def fail_group(self, group: str, reason: str) -> None:
        """Record a build group that exhausted its retry budget."""
        self.failed_groups.append(f"{group}: {reason}")

    def resume_group(self, group: str) -> None:
        """Record a group served from a prior run's ledger (--resume)."""
        self.resumed_groups.append(group)

    def fault(self, note: str) -> None:
        """Record a free-form fault/fallback note (e.g. broken pool)."""
        self.fault_notes.append(note)

    @contextmanager
    def timed(self, label: str, phase: str) -> Iterator[None]:
        """Context manager recording one event around its body.

        Also opens a ``datasets.<phase>`` span, so BuildReport timing
        lines and trace spans come from the same clock reads.
        """
        with obs.span(f"datasets.{phase}") as sp:
            sp.set("dataset", label)
            start = clock.now()
            try:
                yield
            finally:
                self.record(label, phase, clock.now() - start)

    # -- derived facts -------------------------------------------------------

    @property
    def n_cache_hits(self) -> int:
        return len(self.cache_hits)

    @property
    def n_cache_misses(self) -> int:
        return len(self.cache_misses)

    @property
    def n_retries(self) -> int:
        return len(self.retries)

    @property
    def failed_datasets(self) -> list[str]:
        """Group labels that permanently failed, stripped of reasons."""
        return [entry.split(":", 1)[0] for entry in self.failed_groups]

    def worker_pids(self) -> set[int]:
        """Distinct PIDs that performed build work."""
        return {e.worker_pid for e in self.events if e.phase == "build"}

    def phase_seconds(self, phase: str) -> float:
        """Total wall time recorded for one phase."""
        return sum(e.duration_s for e in self.events if e.phase == phase)

    def total_seconds(self) -> float:
        return sum(e.duration_s for e in self.events)

    def summary(self) -> str:
        """Human-readable multi-line summary (CLI / reproduce output)."""
        lines = [
            "dataset provisioning: "
            f"{self.n_cache_hits} cache hit(s), "
            f"{self.n_cache_misses} miss(es), "
            f"{len(self.worker_pids())} build worker(s)"
        ]
        for phase in PHASES:
            events = [e for e in self.events if e.phase == phase]
            if not events:
                continue
            lines.append(f"  {phase:<9} {self.phase_seconds(phase):7.2f}s total")
            for e in sorted(events, key=lambda e: -e.duration_s):
                lines.append(
                    f"    {e.label:<24} {e.duration_s:7.2f}s  (pid {e.worker_pid})"
                )
        if self.cache_misses:
            lines.append("  rebuilt: " + ", ".join(sorted(self.cache_misses)))
        if self.resumed_groups:
            lines.append(
                "  resumed (ledger): " + ", ".join(sorted(self.resumed_groups))
            )
        for label, entries in (
            ("retried", self.retries),
            ("quarantined", self.quarantined),
            ("faults", self.fault_notes),
            ("FAILED", self.failed_groups),
        ):
            for entry in entries:
                lines.append(f"  {label}: {entry}")
        return "\n".join(lines)


#: A progress hook receives short human-readable status strings.
ProgressHook = Callable[[str], None]


def null_progress(_msg: str) -> None:
    """Default progress hook: discard."""

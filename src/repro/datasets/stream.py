"""Streamed route-summary datasets: bounded memory at Internet scale.

A fully materialized all-pairs route table at 100k ASes is tens of
gigabytes — no single-machine builder can hold it.  This module
converges destinations in blocks (:func:`repro.routing.columnar.
converge_block`), reduces each block's columns to compact per-
destination summary records, appends them to a JSON-lines file, and
drops the block before touching the next one: peak RSS is
``O(n_as * block)`` regardless of how many destinations stream through.

The file format follows the house dataset discipline
(:mod:`repro.datasets.io`): a self-describing header line, one record
per destination, and a ``__trailer__`` line carrying the record count so
truncation is detectable.  Writes are atomic (temp file +
``os.replace``).  Every line is serialized with sorted keys and compact
separators, so a streamed build is *byte-identical* to an in-memory
build of the same topology — the differential tests hash both.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.obs import runtime as obs

from repro.datasets.io import TRAILER_KEY, DatasetIOError
from repro.routing.columnar import (
    VIA_CUSTOMER,
    VIA_NONE,
    VIA_PEER,
    VIA_PROVIDER,
    SolverIndex,
    build_solver_index,
    converge_block,
)
from repro.topology.columnar import TopologyArrays

#: Format version of the route-summary JSONL layout.
ROUTE_SUMMARY_VERSION = 1

#: ``kind`` field value in the header line.
ROUTE_SUMMARY_KIND = "route-summaries"

#: Default destination-block width for streaming; peak scratch is
#: ``O(n_as * block)`` int64, i.e. ~400 MB at 100k ASes.
DEFAULT_STREAM_BLOCK = 256


def _dumps(obj: dict) -> str:
    """Canonical one-line JSON: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _header(arrays: TopologyArrays, n_dests: int, label: str | None) -> dict:
    header = {
        "format_version": ROUTE_SUMMARY_VERSION,
        "kind": ROUTE_SUMMARY_KIND,
        "n_dests": n_dests,
        "topology": arrays.summary(),
    }
    if label is not None:
        header["label"] = label
    return header


def _block_records(
    arrays: TopologyArrays,
    dest_idx: np.ndarray,
    lens: np.ndarray,
    via: np.ndarray,
) -> Iterator[dict]:
    """Reduce one converged block to per-destination summary records.

    Each record captures the AS-level reachability structure the paper's
    analysis cares about: how much of the internetwork reaches this
    destination, over how many AS hops, and through which relationship
    class the route was learned.
    """
    via_names = {
        VIA_CUSTOMER: "customer",
        VIA_PEER: "peer",
        VIA_PROVIDER: "provider",
    }
    for j, d in enumerate(dest_idx):
        routed = via[:, j] != VIA_NONE
        path_lens = lens[routed, j]
        hist = np.bincount(path_lens)
        via_col = via[:, j]
        via_counts = {
            name: int((via_col == code).sum()) for code, name in via_names.items()
        }
        n_routed = int(routed.sum())
        # The origin row (path length 1) is excluded from the mean: it
        # is definitionally reachable and would dilute the statistic.
        learned = path_lens[path_lens > 1]
        mean_len = round(float(learned.mean()), 6) if len(learned) else 0.0
        yield {
            "dest": int(arrays.as_asn[d]),
            "reachable": n_routed,
            "unreachable": int(arrays.n_as - n_routed),
            "mean_path_len": mean_len,
            "path_len_hist": {
                str(length): int(count)
                for length, count in enumerate(hist)
                if count and length > 0
            },
            "via": via_counts,
        }


def iter_route_summaries(
    arrays: TopologyArrays,
    dests: list[int] | None = None,
    *,
    block: int = DEFAULT_STREAM_BLOCK,
    index: SolverIndex | None = None,
) -> Iterator[dict]:
    """Yield per-destination summary records in ascending-ASN order.

    Convergence state for each destination block is discarded as soon as
    its records are emitted, so memory stays bounded no matter how many
    destinations are requested.
    """
    asn_index = arrays.asn_index()
    dest_asns = (
        sorted(int(a) for a in arrays.as_asn) if dests is None else sorted(set(dests))
    )
    dest_idx = np.array([int(asn_index[d]) for d in dest_asns], dtype=np.int64)
    if len(dest_idx) and dest_idx.min() < 0:
        bad = [d for d in dest_asns if asn_index[d] < 0]
        raise ValueError(f"unknown destination ASNs: {bad}")
    if index is None:
        index = build_solver_index(arrays)
    for lo in range(0, len(dest_idx), block):
        chunk = dest_idx[lo: lo + block]
        lens, _nxt, via = converge_block(index, chunk)
        yield from _block_records(arrays, chunk, lens, via)


def write_route_summaries(
    arrays: TopologyArrays,
    path: str | Path,
    dests: list[int] | None = None,
    *,
    block: int = DEFAULT_STREAM_BLOCK,
    label: str | None = None,
) -> int:
    """Stream route summaries for ``dests`` (default all) to ``path``.

    Records are written block-by-block as they converge — the whole
    table never exists in memory.  The write is atomic: output lands
    under a temporary name and is renamed into place only after the
    trailer is flushed.

    Returns:
        The number of destination records written.
    """
    path = Path(path)
    asn_count = arrays.n_as if dests is None else len(set(dests))
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    n_records = 0
    with obs.span("datasets.stream.route_summaries") as sp:
        sp.set("destinations", asn_count)
        sp.set("block", block)
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(_dumps(_header(arrays, asn_count, label)) + "\n")
                for record in iter_route_summaries(arrays, dests, block=block):
                    fh.write(_dumps(record) + "\n")
                    n_records += 1
                fh.write(_dumps({TRAILER_KEY: {"n_records": n_records}}) + "\n")
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
    obs.count("datasets.stream.route_summary_files")
    return n_records


def build_route_summaries(
    arrays: TopologyArrays,
    dests: list[int] | None = None,
    *,
    block: int = DEFAULT_STREAM_BLOCK,
) -> list[dict]:
    """Materialize the summary records in memory (small scales only).

    The reference path for differential tests: serializing these records
    line-by-line must be byte-identical to what
    :func:`write_route_summaries` streamed to disk.
    """
    return list(iter_route_summaries(arrays, dests, block=block))


def load_route_summaries(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a route-summary file back, verifying the trailer count.

    Returns:
        ``(header, records)``.

    Raises:
        DatasetIOError: on a missing/mismatched trailer or wrong kind.
    """
    path = Path(path)
    records: list[dict] = []
    trailer: dict | None = None
    with open(path, encoding="utf-8") as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise DatasetIOError(f"{path}: malformed header: {exc}") from None
        if header.get("kind") != ROUTE_SUMMARY_KIND:
            raise DatasetIOError(
                f"{path}: not a route-summary dataset (kind={header.get('kind')!r})"
            )
        for line in fh:
            obj = json.loads(line)
            if isinstance(obj, dict) and TRAILER_KEY in obj:
                trailer = obj[TRAILER_KEY]
                break
            records.append(obj)
    if trailer is None:
        raise DatasetIOError(f"{path}: missing trailer (truncated write?)")
    if trailer.get("n_records") != len(records):
        raise DatasetIOError(
            f"{path}: trailer says {trailer.get('n_records')} records, "
            f"found {len(records)}"
        )
    return header, records

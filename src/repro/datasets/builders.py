"""Builders for analogs of the paper's eight datasets (Table 1).

Each builder stands up an era-appropriate topology, places hosts the way
the corresponding experiment did, schedules requests with the published
law, runs the collection campaign, and applies the paper's per-dataset
corrections:

========  ======================================================================
Dataset   Construction
========  ======================================================================
D2        1995-era topology, 33 worldwide npd hosts, Poisson traceroutes over
          48 days; ICMP rate limiting cannot be detected after the fact, so
          the **first-probe loss heuristic** is applied (§4.2 footnote 2).
D2-NA     The D2 records restricted to D2's North American hosts.
N2        Same era, 31 worldwide hosts, 44 days of npd TCP transfers
          (bandwidth dataset; RTT/loss are in-TCP measurements).
N2-NA     N2 restricted to its North American hosts.
UW1       1999-era topology, 36 NA public traceroute servers, per-server
          uniform scheduling (mean 15 min) over 34 days.  Rate limiters are
          detected by a pre-scan and removed **from the target pool only**;
          paths toward them are filled by **reverse substitution**.
UW3       39 NA traceroute servers (post-filter), Poisson pair scheduling
          over 7 days; rate limiters detected by pre-scan and removed.
UW4-A     15 hosts drawn from a 35-host pool of UW3's hosts; Poisson
          "episodes" (mean 1000 s) measuring all pairs simultaneously,
          14 days.
UW4-B     The same 15 hosts, independent Poisson pair scheduling (long-term
          averages), concurrent with UW4-A.
========  ======================================================================

Mean request intervals are tuned so completed-measurement counts land on
Table 1's values; where that implies a different nominal interval than the
paper quotes (UW3's 9 s, UW1's 15 min), the paper's own counts win, since
they are what the figures are computed from.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.datasets.dataset import Dataset, DatasetMeta
from repro.faults import injection
from repro.faults.plan import SITE_BUILD
from repro.measurement.collector import Campaign
from repro.measurement.ratelimit import detect_rate_limiters, flagged_hosts
from repro.measurement.schedulers import (
    poisson_episodes,
    poisson_pairs,
    round_robin_pairs,
    uniform_per_server,
)
from repro.netsim.clock import SECONDS_PER_DAY
from repro.netsim.conditions import NetworkConditions
from repro.routing.forwarding import PathResolver
from repro.topology.generator import TopologyConfig, generate_topology, place_hosts
from repro.topology.network import Topology

#: Default master seed for the full reproduction.
DEFAULT_SEED = 1999


@dataclass(slots=True)
class BuildConfig:
    """Knobs shared by all dataset builders.

    Attributes:
        seed: Master seed; all topology/scheduling/collection randomness
            derives from it.
        scale: Multiplier on collection durations in (0, 1].  Scaled-down
            builds (for tests and quick benchmarks) keep the same hosts
            and rates but measure for a shorter simulated period.
    """

    seed: int = DEFAULT_SEED
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")

    def days(self, nominal_days: float) -> float:
        """Scaled duration in seconds for a nominal number of days."""
        return nominal_days * self.scale * SECONDS_PER_DAY


@dataclass
class Environment:
    """A topology with hosts placed plus its dynamic conditions."""

    topo: Topology
    conditions: NetworkConditions
    resolver: PathResolver
    hosts: list[str] = field(default_factory=list)

    def na_hosts(self, names: list[str] | None = None) -> list[str]:
        """The subset of hosts located in North America."""
        pool = self.hosts if names is None else names
        return [h for h in pool if self.topo.host(h).city.is_north_america]


def _make_environment(
    *,
    era: str,
    seed: int,
    n_hosts: int,
    north_america_only: bool,
    rate_limit_fraction: float,
    name_prefix: str,
) -> Environment:
    """Generate a topology, place hosts, and wrap the pieces."""
    topo_cfg = TopologyConfig.for_era(era, seed=seed)
    topo = generate_topology(topo_cfg)
    hosts = place_hosts(
        topo,
        n_hosts,
        seed=seed + 7,
        north_america_only=north_america_only,
        rate_limit_fraction=rate_limit_fraction,
        name_prefix=name_prefix,
        capacity_scale=topo_cfg.capacity_scale,
    )
    conditions = NetworkConditions(topo, seed=seed + 13)
    resolver = PathResolver(topo)
    return Environment(
        topo=topo,
        conditions=conditions,
        resolver=resolver,
        hosts=[h.name for h in hosts],
    )


def _prescan_filter(env: Environment, hosts: list[str], *, seed: int) -> list[str]:
    """Detect ICMP rate limiters with a one-day round-robin pre-scan.

    Returns the hosts judged clean, preserving order.
    """
    campaign = Campaign(
        env.topo,
        env.conditions,
        hosts,
        resolver=env.resolver,
        seed=seed,
        control_failure_prob=0.02,
    )
    requests = round_robin_pairs(hosts, repetitions=6, duration_s=SECONDS_PER_DAY, seed=seed)
    records, stats = campaign.run_traceroutes(requests)
    probe = Dataset(
        meta=DatasetMeta(
            name="prescan",
            method="traceroute",
            year=1999,
            duration_days=1,
            location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
        stats=stats,
    )
    flagged = set(flagged_hosts(detect_rate_limiters(probe)))
    return [h for h in hosts if h not in flagged]


# ---------------------------------------------------------------------------
# UW datasets (1999 era).
# ---------------------------------------------------------------------------

def build_uw1(config: BuildConfig | None = None) -> Dataset:
    """Build the UW1 analog: 36 NA hosts, uniform per-server scheduling.

    Rate limiters stay in the pool as *sources*; the target pool excludes
    them, and paths toward them are filled by reverse substitution.
    """
    cfg = config or BuildConfig()
    env = _make_environment(
        era="1999",
        seed=cfg.seed + 101,
        n_hosts=36,
        north_america_only=True,
        rate_limit_fraction=0.18,
        name_prefix="uw1",
    )
    clean = _prescan_filter(env, env.hosts, seed=cfg.seed + 102)
    limiters = [h for h in env.hosts if h not in clean]
    campaign = Campaign(
        env.topo,
        env.conditions,
        env.hosts,
        resolver=env.resolver,
        seed=cfg.seed + 103,
        control_failure_prob=0.54,
        pair_blackout_prob=0.0,
    )
    requests = uniform_per_server(
        env.hosts,
        cfg.days(34),
        mean_interval_s=900.0,
        seed=cfg.seed + 104,
        targets=clean,
    )
    records, stats = campaign.run_traceroutes(requests)
    dataset = Dataset(
        meta=DatasetMeta(
            name="UW1",
            method="traceroute",
            year=1998,
            duration_days=34 * cfg.scale,
            location="North America",
            era="1999",
            description="public traceroute servers, per-server uniform scheduling",
        ),
        hosts=list(env.hosts),
        traceroutes=records,
        path_info=campaign.path_info(),
        stats=stats,
    )
    return dataset.with_reverse_substitution(limiters)


def build_uw3(
    config: BuildConfig | None = None,
) -> tuple[Dataset, Environment]:
    """Build the UW3 analog: 39 NA hosts (post-filter), Poisson pairs, 7 days.

    Also returns the environment so UW4 can reuse the same hosts and
    network, as the paper did.
    """
    cfg = config or BuildConfig()
    env = _make_environment(
        era="1999",
        seed=cfg.seed + 301,
        n_hosts=54,
        north_america_only=True,
        rate_limit_fraction=0.15,
        name_prefix="uw3",
    )
    clean = _prescan_filter(env, env.hosts, seed=cfg.seed + 302)
    hosts = clean[:39]
    campaign = Campaign(
        env.topo,
        env.conditions,
        hosts,
        resolver=env.resolver,
        seed=cfg.seed + 303,
        control_failure_prob=0.01,
        pair_blackout_prob=0.13,
    )
    requests = poisson_pairs(
        hosts, cfg.days(7), mean_interval_s=5.52, seed=cfg.seed + 304
    )
    records, stats = campaign.run_traceroutes(requests)
    dataset = Dataset(
        meta=DatasetMeta(
            name="UW3",
            method="traceroute",
            year=1999,
            duration_days=7 * cfg.scale,
            location="North America",
            era="1999",
            description="Altavista-found traceroute servers, Poisson pair scheduling",
        ),
        hosts=hosts,
        traceroutes=records,
        path_info={
            pair: info
            for pair, info in campaign.path_info().items()
        },
        stats=stats,
    )
    env.hosts = hosts
    return dataset, env


def build_uw4(
    config: BuildConfig | None = None,
    uw3_env: Environment | None = None,
) -> tuple[Dataset, Dataset]:
    """Build the UW4-A (simultaneous episodes) and UW4-B (long-term
    average) analogs over the same 15 hosts, collected concurrently.

    The 15 hosts are selected at random from a 35-host pool of UW3's
    hosts, as in the paper.  When ``uw3_env`` is None, UW3's environment
    is rebuilt (without rerunning UW3's main campaign).
    """
    cfg = config or BuildConfig()
    if uw3_env is None:
        env = _make_environment(
            era="1999",
            seed=cfg.seed + 301,
            n_hosts=54,
            north_america_only=True,
            rate_limit_fraction=0.15,
            name_prefix="uw3",
        )
        env.hosts = _prescan_filter(env, env.hosts, seed=cfg.seed + 302)[:39]
    else:
        env = uw3_env
    pool = env.hosts[:35]
    rng = random.Random(cfg.seed + 401)
    hosts = sorted(rng.sample(pool, min(15, len(pool))))
    duration = cfg.days(14)

    campaign_a = Campaign(
        env.topo,
        env.conditions,
        hosts,
        resolver=env.resolver,
        seed=cfg.seed + 402,
        control_failure_prob=0.146,
    )
    requests_a = poisson_episodes(
        hosts, duration, mean_interval_s=1000.0, seed=cfg.seed + 403
    )
    records_a, stats_a = campaign_a.run_traceroutes(requests_a)
    uw4a = Dataset(
        meta=DatasetMeta(
            name="UW4-A",
            method="traceroute",
            year=1999,
            duration_days=14 * cfg.scale,
            location="North America",
            era="1999",
            description="simultaneous all-pairs episodes, exponential mean 1000s",
        ),
        hosts=hosts,
        traceroutes=records_a,
        path_info=campaign_a.path_info(),
        stats=stats_a,
    )

    campaign_b = Campaign(
        env.topo,
        env.conditions,
        hosts,
        resolver=env.resolver,
        seed=cfg.seed + 404,
        control_failure_prob=0.01,
    )
    requests_b = poisson_pairs(
        hosts, duration, mean_interval_s=130.0, seed=cfg.seed + 405
    )
    records_b, stats_b = campaign_b.run_traceroutes(requests_b)
    uw4b = Dataset(
        meta=DatasetMeta(
            name="UW4-B",
            method="traceroute",
            year=1999,
            duration_days=14 * cfg.scale,
            location="North America",
            era="1999",
            description="independent long-term average companion to UW4-A",
        ),
        hosts=hosts,
        traceroutes=records_b,
        path_info=campaign_b.path_info(),
        stats=stats_b,
    )
    return uw4a, uw4b


# ---------------------------------------------------------------------------
# 1995-era datasets (D2 / N2).
# ---------------------------------------------------------------------------

def _na_subset(dataset: Dataset, env: Environment, name: str) -> Dataset:
    """Restrict a dataset to its North American hosts and rename it."""
    na = set(env.na_hosts(dataset.hosts))
    drop = [h for h in dataset.hosts if h not in na]
    subset = dataset.without_hosts(drop)
    subset.meta = replace(subset.meta, name=name, location="North America")
    return subset


def build_d2(config: BuildConfig | None = None) -> tuple[Dataset, Dataset]:
    """Build the D2 (world) and D2-NA analogs: 1995-era npd traceroutes.

    Identifying rate limiters after the fact "is no longer possible", so
    both datasets carry the first-probe loss heuristic.
    """
    cfg = config or BuildConfig()
    env = _make_environment(
        era="1995",
        seed=cfg.seed + 201,
        n_hosts=33,
        north_america_only=False,
        rate_limit_fraction=0.15,
        name_prefix="d2",
    )
    campaign = Campaign(
        env.topo,
        env.conditions,
        env.hosts,
        resolver=env.resolver,
        seed=cfg.seed + 202,
        control_failure_prob=0.01,
        pair_blackout_prob=0.03,
    )
    requests = poisson_pairs(
        env.hosts, cfg.days(48), mean_interval_s=113.4, seed=cfg.seed + 203
    )
    records, stats = campaign.run_traceroutes(requests)
    d2 = Dataset(
        meta=DatasetMeta(
            name="D2",
            method="traceroute",
            year=1995,
            duration_days=48 * cfg.scale,
            location="World",
            era="1995",
            description="npd traceroute measurements (Paxson), worldwide hosts",
        ),
        hosts=list(env.hosts),
        traceroutes=records,
        path_info=campaign.path_info(),
        stats=stats,
    ).with_first_probe_loss_heuristic()
    d2_na = _na_subset(d2, env, "D2-NA")
    return d2, d2_na


def build_n2(config: BuildConfig | None = None) -> tuple[Dataset, Dataset]:
    """Build the N2 (world) and N2-NA analogs: 1995-era npd TCP transfers.

    N2 is only analyzed for bandwidth (its RTT/loss are in-TCP
    measurements, not unbiased samples — paper §4.2).
    """
    cfg = config or BuildConfig()
    env = _make_environment(
        era="1995",
        seed=cfg.seed + 501,
        n_hosts=31,
        north_america_only=False,
        rate_limit_fraction=0.0,
        name_prefix="n2",
    )
    campaign = Campaign(
        env.topo,
        env.conditions,
        env.hosts,
        resolver=env.resolver,
        seed=cfg.seed + 502,
        control_failure_prob=0.01,
        pair_blackout_prob=0.12,
    )
    requests = poisson_pairs(
        env.hosts, cfg.days(44), mean_interval_s=181.3, seed=cfg.seed + 503
    )
    records, stats = campaign.run_transfers(requests)
    n2 = Dataset(
        meta=DatasetMeta(
            name="N2",
            method="tcpanaly",
            year=1995,
            duration_days=44 * cfg.scale,
            location="World",
            era="1995",
            description="npd TCP transfer measurements (Paxson), worldwide hosts",
        ),
        hosts=list(env.hosts),
        transfers=records,
        path_info=campaign.path_info(),
        stats=stats,
    )
    n2_na = _na_subset(n2, env, "N2-NA")
    return n2, n2_na


#: Independent build groups: the datasets one builder call produces
#: together.  Groups are the unit of parallelism and cache invalidation —
#: each group builder depends only on its ``BuildConfig`` (all randomness
#: derives from the master seed), so groups can run in any order, in any
#: mix of processes, and produce bit-identical datasets.
BUILD_GROUPS: dict[str, tuple[str, ...]] = {
    "d2": ("D2-NA", "D2"),
    "n2": ("N2-NA", "N2"),
    "uw1": ("UW1",),
    "uw3": ("UW3",),
    "uw4": ("UW4-A", "UW4-B"),
}


def group_for(dataset_name: str) -> str:
    """The build group that produces ``dataset_name``.

    Raises:
        KeyError: for names outside Table 1.
    """
    for group, names in BUILD_GROUPS.items():
        if dataset_name in names:
            return group
    raise KeyError(f"unknown dataset {dataset_name!r}")


def build_group(group: str, config: BuildConfig | None = None) -> dict[str, Dataset]:
    """Build one independent group of Table 1 datasets.

    This is the unit of work the parallel provisioning pipeline ships to
    pool workers, so it must stay importable at module top level
    (picklable) and must depend only on ``config``.  The ``uw4`` group
    regenerates UW3's environment from the same seeds rather than
    receiving it from a ``uw3`` build, keeping the groups independent;
    conditions are deterministic in (seed, t), so the result is identical.

    Raises:
        KeyError: for unknown group names.
    """
    # Named injection point "build.group" (docs/ROBUSTNESS.md): an active
    # fault plan can crash this process, raise, or stall here to emulate
    # worker death, flaky builders, and hung builds.
    injection.perform(SITE_BUILD, group)
    cfg = config or BuildConfig()
    if group == "d2":
        d2, d2_na = build_d2(cfg)
        return {"D2-NA": d2_na, "D2": d2}
    if group == "n2":
        n2, n2_na = build_n2(cfg)
        return {"N2-NA": n2_na, "N2": n2}
    if group == "uw1":
        return {"UW1": build_uw1(cfg)}
    if group == "uw3":
        return {"UW3": build_uw3(cfg)[0]}
    if group == "uw4":
        uw4a, uw4b = build_uw4(cfg)
        return {"UW4-A": uw4a, "UW4-B": uw4b}
    raise KeyError(f"unknown build group {group!r}")


def build_all(config: BuildConfig | None = None) -> dict[str, Dataset]:
    """Build every dataset in Table 1, keyed by the paper's names.

    Composes the independent :data:`BUILD_GROUPS` serially; the parallel
    pipeline in :mod:`repro.experiments.runner` runs the same groups
    across worker processes and yields bit-identical datasets.
    """
    cfg = config or BuildConfig()
    datasets: dict[str, Dataset] = {}
    for group in BUILD_GROUPS:
        datasets.update(build_group(group, cfg))
    return {name: datasets[name] for name in table1_order()}


def table1_order() -> list[str]:
    """Dataset names in the paper's Table 1 row order."""
    return ["D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B"]

"""Dataset containers, record types, builders, and serialization."""

from repro.datasets.builders import (
    BUILD_GROUPS,
    BuildConfig,
    DEFAULT_SEED,
    Environment,
    build_all,
    build_d2,
    build_group,
    build_n2,
    build_uw1,
    build_uw3,
    build_uw4,
    group_for,
    table1_order,
)
from repro.datasets.dataset import Dataset, DatasetError, DatasetMeta
from repro.datasets.instrumentation import BuildEvent, BuildReport
from repro.datasets.io import (
    CacheLock,
    CacheLockTimeout,
    DatasetIOError,
    load_dataset,
    save_dataset,
)
from repro.datasets.summary import (
    DatasetSummary,
    DistributionSummary,
    HostParticipation,
    summarize,
)
from repro.measurement.records import (
    CollectionStats,
    PROBES_PER_TRACEROUTE,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)

__all__ = [
    "BUILD_GROUPS",
    "BuildConfig",
    "BuildEvent",
    "BuildReport",
    "CacheLock",
    "CacheLockTimeout",
    "CollectionStats",
    "DEFAULT_SEED",
    "Dataset",
    "DatasetError",
    "DatasetIOError",
    "DatasetMeta",
    "DatasetSummary",
    "DistributionSummary",
    "Environment",
    "HostParticipation",
    "PROBES_PER_TRACEROUTE",
    "PathInfo",
    "TracerouteRecord",
    "TransferRecord",
    "build_all",
    "build_d2",
    "build_group",
    "build_n2",
    "build_uw1",
    "build_uw3",
    "build_uw4",
    "group_for",
    "load_dataset",
    "save_dataset",
    "summarize",
    "table1_order",
]

"""Dataset diagnostics: distribution summaries and collection QA.

Trace-driven studies live or die by data quality; this module provides
the checks the paper's authors would have run on their raw traces:

* RTT / loss / bandwidth distribution summaries per dataset;
* per-host participation (as source and as target) and inbound loss,
  the raw material of the rate-limiter hunt;
* scheduling-law verification — inter-request gaps of a Poisson trace
  must have coefficient of variation ≈ 1 (the paper leans on the PASTA
  property of exponential scheduling, §4.2);
* diurnal profile of measured RTTs, which should reflect the load model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.dataset import Dataset
from repro.netsim.clock import pst_hour

_QUANTILES = (0.10, 0.50, 0.90)


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Five-number-ish summary of one quantity."""

    n: int
    mean: float
    p10: float
    p50: float
    p90: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "DistributionSummary":
        """Summarize an array; empty arrays yield an all-NaN summary."""
        if values.size == 0:
            nan = float("nan")
            return cls(n=0, mean=nan, p10=nan, p50=nan, p90=nan)
        q10, q50, q90 = np.quantile(values, _QUANTILES)
        return cls(
            n=int(values.size),
            mean=float(values.mean()),
            p10=float(q10),
            p50=float(q50),
            p90=float(q90),
        )


@dataclass(frozen=True, slots=True)
class HostParticipation:
    """One host's role in the collection.

    Attributes:
        host: Host name.
        as_source: Measurements originated by the host.
        as_target: Measurements aimed at the host.
        inbound_loss: Mean per-probe loss of measurements toward it.
    """

    host: str
    as_source: int
    as_target: int
    inbound_loss: float


@dataclass(slots=True)
class DatasetSummary:
    """Full diagnostic bundle for one dataset."""

    name: str
    n_measurements: int
    n_pairs: int
    coverage: float
    rtt_ms: DistributionSummary
    loss_rate: DistributionSummary
    bandwidth_kbps: DistributionSummary | None
    hosts: list[HostParticipation] = field(default_factory=list)
    interarrival_cv: float = float("nan")
    rtt_by_pst_hour: dict[int, float] = field(default_factory=dict)
    hop_count: DistributionSummary | None = None
    as_path_length: DistributionSummary | None = None

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.name}: {self.n_measurements} measurements over "
            f"{self.n_pairs} pairs ({self.coverage:.0%} coverage)"
        ]
        lines.append(
            f"  RTT ms   : mean {self.rtt_ms.mean:7.1f}  "
            f"p10 {self.rtt_ms.p10:7.1f}  p50 {self.rtt_ms.p50:7.1f}  "
            f"p90 {self.rtt_ms.p90:7.1f}"
        )
        lines.append(
            f"  loss     : mean {self.loss_rate.mean:7.3f}  "
            f"p90 {self.loss_rate.p90:7.3f}"
        )
        if self.bandwidth_kbps is not None:
            lines.append(
                f"  bw kB/s  : mean {self.bandwidth_kbps.mean:7.1f}  "
                f"p50 {self.bandwidth_kbps.p50:7.1f}"
            )
        if self.hop_count is not None and self.hop_count.n:
            lines.append(
                f"  hops     : p10 {self.hop_count.p10:4.0f}  "
                f"p50 {self.hop_count.p50:4.0f}  p90 {self.hop_count.p90:4.0f}"
                + (
                    f"   AS-path p50 {self.as_path_length.p50:.0f}"
                    if self.as_path_length is not None
                    else ""
                )
            )
        if not math.isnan(self.interarrival_cv):
            lines.append(f"  request-gap CV: {self.interarrival_cv:.2f} (Poisson ≈ 1)")
        if self.rtt_by_pst_hour:
            peak_hour = max(self.rtt_by_pst_hour, key=self.rtt_by_pst_hour.get)
            low_hour = min(self.rtt_by_pst_hour, key=self.rtt_by_pst_hour.get)
            lines.append(
                f"  diurnal RTT: max {self.rtt_by_pst_hour[peak_hour]:.0f}ms "
                f"@ {peak_hour:02d}h PST, min "
                f"{self.rtt_by_pst_hour[low_hour]:.0f}ms @ {low_hour:02d}h PST"
            )
        worst = sorted(self.hosts, key=lambda h: -h.inbound_loss)[:3]
        for h in worst:
            lines.append(
                f"  lossiest target: {h.host} inbound loss {h.inbound_loss:.1%} "
                f"({h.as_target} measurements)"
            )
        return "\n".join(lines)


def summarize(dataset: Dataset) -> DatasetSummary:
    """Compute the diagnostic bundle for a dataset."""
    pairs = dataset.pairs()
    all_rtts: list[np.ndarray] = []
    all_losses: list[float] = []
    source_counts: dict[str, int] = {h: 0 for h in dataset.hosts}
    target_counts: dict[str, int] = {h: 0 for h in dataset.hosts}
    inbound_loss: dict[str, list[float]] = {h: [] for h in dataset.hosts}
    for pair in pairs:
        rtts = dataset.rtt_samples(pair)
        losses = dataset.loss_samples(pair)
        if rtts.size:
            all_rtts.append(rtts)
        if losses.size:
            rate = float(losses.mean())
            all_losses.append(rate)
            if pair[1] in inbound_loss:
                inbound_loss[pair[1]].append(rate)
        n = dataset.n_measurements_for(pair)
        if pair[0] in source_counts:
            source_counts[pair[0]] += n
        if pair[1] in target_counts:
            target_counts[pair[1]] += n
    bandwidth = None
    if dataset.is_bandwidth:
        bw = np.concatenate(
            [dataset.bandwidth_samples(p) for p in pairs]
        ) if pairs else np.array([])
        bandwidth = DistributionSummary.from_values(bw)
    times = np.sort(np.array([rec.t for rec in dataset.records]))
    cv = float("nan")
    if times.size > 10:
        gaps = np.diff(times)
        gaps = gaps[gaps > 0]
        if gaps.size > 5 and gaps.mean() > 0:
            cv = float(gaps.std() / gaps.mean())
    by_hour: dict[int, list[float]] = {}
    for rec in dataset.traceroutes:
        finite = [r for r in rec.rtt_samples if not math.isnan(r)]
        if finite:
            by_hour.setdefault(int(pst_hour(rec.t)), []).extend(finite)
    hop_counts = np.array(
        [info.hop_count for info in dataset.path_info.values()], dtype=float
    )
    as_lengths = np.array(
        [len(info.as_path) for info in dataset.path_info.values()], dtype=float
    )
    hosts = [
        HostParticipation(
            host=h,
            as_source=source_counts[h],
            as_target=target_counts[h],
            inbound_loss=(
                float(np.mean(inbound_loss[h])) if inbound_loss[h] else 0.0
            ),
        )
        for h in dataset.hosts
    ]
    return DatasetSummary(
        name=dataset.meta.name,
        n_measurements=dataset.n_measurements,
        n_pairs=len(pairs),
        coverage=dataset.coverage(),
        rtt_ms=DistributionSummary.from_values(
            np.concatenate(all_rtts) if all_rtts else np.array([])
        ),
        loss_rate=DistributionSummary.from_values(np.array(all_losses)),
        bandwidth_kbps=bandwidth,
        hosts=hosts,
        interarrival_cv=cv,
        rtt_by_pst_hour={
            hour: float(np.mean(vals)) for hour, vals in sorted(by_hour.items())
        },
        hop_count=(
            DistributionSummary.from_values(hop_counts) if hop_counts.size else None
        ),
        as_path_length=(
            DistributionSummary.from_values(as_lengths) if as_lengths.size else None
        ),
    )

"""Dataset serialization: JSON-lines save/load.

Format: the first line is a header object (metadata, hosts, path info,
collection stats); each subsequent line is one measurement record.  The
format is self-describing via the header's ``method`` field and is stable
across library versions — datasets are expensive to regenerate, so
benchmark runs cache them on disk.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.datasets.dataset import Dataset, DatasetMeta
from repro.datasets.records import (
    CollectionStats,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)

FORMAT_VERSION = 1


class DatasetIOError(RuntimeError):
    """Raised on malformed dataset files."""


def _nan_to_none(values: tuple[float, ...]) -> list[float | None]:
    return [None if math.isnan(v) else v for v in values]


def _none_to_nan(values: list[float | None]) -> tuple[float, ...]:
    return tuple(float("nan") if v is None else float(v) for v in values)


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in JSONL format."""
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "meta": {
            "name": dataset.meta.name,
            "method": dataset.meta.method,
            "year": dataset.meta.year,
            "duration_days": dataset.meta.duration_days,
            "location": dataset.meta.location,
            "era": dataset.meta.era,
            "description": dataset.meta.description,
        },
        "hosts": dataset.hosts,
        "loss_first_probe_only": dataset.loss_first_probe_only,
        "stats": {
            "requested": dataset.stats.requested,
            "completed": dataset.stats.completed,
            "control_failures": dataset.stats.control_failures,
            "rate_limited_probes": dataset.stats.rate_limited_probes,
        },
        "path_info": [
            {
                "src": info.src,
                "dst": info.dst,
                "as_path": list(info.as_path),
                "hop_count": info.hop_count,
                "prop_delay_ms": info.prop_delay_ms,
            }
            for info in dataset.path_info.values()
        ],
    }
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for rec in dataset.traceroutes:
            fh.write(
                json.dumps(
                    {
                        "t": rec.t,
                        "src": rec.src,
                        "dst": rec.dst,
                        "rtt": _nan_to_none(rec.rtt_samples),
                        "ep": rec.episode,
                    }
                )
                + "\n"
            )
        for rec in dataset.transfers:
            fh.write(
                json.dumps(
                    {
                        "t": rec.t,
                        "src": rec.src,
                        "dst": rec.dst,
                        "rtt_ms": rec.rtt_ms,
                        "loss": rec.loss_rate,
                        "bw": rec.bandwidth_kbps,
                    }
                )
                + "\n"
            )


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        DatasetIOError: on missing/garbled headers or unknown versions.
    """
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetIOError(f"{path}: empty file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetIOError(f"{path}: bad header: {exc}") from exc
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise DatasetIOError(
                f"{path}: unsupported format version {version!r}"
            )
        meta = DatasetMeta(**header["meta"])
        stats = CollectionStats(**header.get("stats", {}))
        path_info = {}
        for entry in header.get("path_info", []):
            info = PathInfo(
                src=entry["src"],
                dst=entry["dst"],
                as_path=tuple(entry["as_path"]),
                hop_count=entry["hop_count"],
                prop_delay_ms=entry["prop_delay_ms"],
            )
            path_info[(info.src, info.dst)] = info
        traceroutes: list[TracerouteRecord] = []
        transfers: list[TransferRecord] = []
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetIOError(f"{path}:{line_no}: bad record: {exc}") from exc
            if "rtt" in obj:
                traceroutes.append(
                    TracerouteRecord(
                        t=obj["t"],
                        src=obj["src"],
                        dst=obj["dst"],
                        rtt_samples=_none_to_nan(obj["rtt"]),
                        episode=obj.get("ep", -1),
                    )
                )
            else:
                transfers.append(
                    TransferRecord(
                        t=obj["t"],
                        src=obj["src"],
                        dst=obj["dst"],
                        rtt_ms=obj["rtt_ms"],
                        loss_rate=obj["loss"],
                        bandwidth_kbps=obj["bw"],
                    )
                )
    return Dataset(
        meta=meta,
        hosts=list(header["hosts"]),
        traceroutes=traceroutes,
        transfers=transfers,
        path_info=path_info,
        stats=stats,
        loss_first_probe_only=bool(header.get("loss_first_probe_only", False)),
    )

"""Dataset serialization: JSON-lines save/load.

Format: the first line is a header object (metadata, hosts, path info,
collection stats); each subsequent line is one measurement record; the
last line is a trailer object recording how many records precede it.  The
format is self-describing via the header's ``method`` field and is stable
across library versions — datasets are expensive to regenerate, so
benchmark runs cache them on disk.

Robustness guarantees (the cache layer depends on both):

* **Atomic saves** — :func:`save_dataset` writes to a temporary file in
  the destination directory and ``os.replace``-s it into place, so a
  crash or concurrent run can never leave a half-written file under the
  final name.
* **Truncation detection** — :func:`load_dataset` verifies the trailer's
  record count and raises :class:`DatasetIOError` when the trailer is
  missing or disagrees, so a truncated file is rejected instead of
  silently yielding a shorter dataset.  Header schema drift (fields
  added/removed by other library versions) also surfaces as
  :class:`DatasetIOError` rather than ``TypeError``/``KeyError``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.datasets.dataset import Dataset, DatasetMeta
from repro.measurement.records import (
    CollectionStats,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)
from repro.faults import injection
from repro.faults.plan import (
    KIND_DROP_TRAILER,
    KIND_GARBLE_HEADER,
    KIND_TRUNCATE,
    SITE_LOCK,
    SITE_SAVE,
)

#: Version 2 added the record-count trailer line.
FORMAT_VERSION = 2

#: Key identifying the trailer line.
TRAILER_KEY = "__trailer__"


class DatasetIOError(RuntimeError):
    """Raised on malformed dataset files."""


def _nan_to_none(values: tuple[float, ...]) -> list[float | None]:
    return [None if math.isnan(v) else v for v in values]


def _none_to_nan(values: list[float | None]) -> tuple[float, ...]:
    return tuple(float("nan") if v is None else float(v) for v in values)


def _encode_header(dataset: Dataset) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "meta": {
            "name": dataset.meta.name,
            "method": dataset.meta.method,
            "year": dataset.meta.year,
            "duration_days": dataset.meta.duration_days,
            "location": dataset.meta.location,
            "era": dataset.meta.era,
            "description": dataset.meta.description,
        },
        "hosts": dataset.hosts,
        "loss_first_probe_only": dataset.loss_first_probe_only,
        "stats": {
            "requested": dataset.stats.requested,
            "completed": dataset.stats.completed,
            "control_failures": dataset.stats.control_failures,
            "rate_limited_probes": dataset.stats.rate_limited_probes,
            "blacked_out": dataset.stats.blacked_out,
            "unreachable": dataset.stats.unreachable,
        },
        "path_info": [
            {
                "src": info.src,
                "dst": info.dst,
                "as_path": list(info.as_path),
                "hop_count": info.hop_count,
                "prop_delay_ms": info.prop_delay_ms,
            }
            for info in dataset.path_info.values()
        ],
    }


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in JSONL format, atomically.

    The data is written to a temporary sibling file and renamed into
    place, so readers never observe a partially written ``path`` and a
    crash leaves any previous complete file intact.
    """
    path = Path(path)
    n_records = len(dataset.traceroutes) + len(dataset.transfers)
    # Deterministic fault injection (docs/ROBUSTNESS.md): a pending
    # io.save fault makes this save emulate a specific mid-write crash —
    # the corrupt file still lands atomically, exactly as a real crash
    # between rename and validity would leave it.
    fault = injection.pending(SITE_SAVE, dataset.meta.name)
    fault_kind = fault.kind if fault is not None else None
    record_limit = n_records
    if fault_kind == KIND_TRUNCATE:
        record_limit = n_records // 2
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with tmp.open("w") as fh:
            header_line = json.dumps(_encode_header(dataset))
            if fault_kind == KIND_GARBLE_HEADER:
                header_line = '{"format_version": <<< injected garble'
            fh.write(header_line + "\n")
            written = 0
            for rec in dataset.traceroutes:
                if written >= record_limit:
                    break
                fh.write(
                    json.dumps(
                        {
                            "t": rec.t,
                            "src": rec.src,
                            "dst": rec.dst,
                            "rtt": _nan_to_none(rec.rtt_samples),
                            "ep": rec.episode,
                        }
                    )
                    + "\n"
                )
                written += 1
            for rec in dataset.transfers:
                if written >= record_limit:
                    break
                fh.write(
                    json.dumps(
                        {
                            "t": rec.t,
                            "src": rec.src,
                            "dst": rec.dst,
                            "rtt_ms": rec.rtt_ms,
                            "loss": rec.loss_rate,
                            "bw": rec.bandwidth_kbps,
                        }
                    )
                    + "\n"
                )
                written += 1
            if fault_kind != KIND_DROP_TRAILER:
                # A truncate fault keeps the full-count trailer so the
                # file reads as "trailer promises more records than found".
                fh.write(
                    json.dumps({TRAILER_KEY: {"n_records": n_records}}) + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _decode_header(header: dict, path: Path) -> tuple[DatasetMeta, CollectionStats, dict]:
    """Turn a parsed header into typed objects.

    Any structural mismatch (missing keys, unknown fields written by a
    different library version) is reported as :class:`DatasetIOError` so
    callers can treat schema drift like any other stale-cache condition.
    """
    try:
        meta = DatasetMeta(**header["meta"])
        stats = CollectionStats(**header.get("stats", {}))
        path_info = {}
        for entry in header.get("path_info", []):
            info = PathInfo(
                src=entry["src"],
                dst=entry["dst"],
                as_path=tuple(entry["as_path"]),
                hop_count=entry["hop_count"],
                prop_delay_ms=entry["prop_delay_ms"],
            )
            path_info[(info.src, info.dst)] = info
    except (TypeError, KeyError, ValueError) as exc:
        raise DatasetIOError(f"{path}: stale header schema: {exc!r}") from exc
    return meta, stats, path_info


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        DatasetIOError: on missing/garbled headers, unknown versions,
            stale header schemas, or truncated files (missing trailer or
            record-count mismatch).
    """
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetIOError(f"{path}: empty file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetIOError(f"{path}: bad header: {exc}") from exc
        if not isinstance(header, dict):
            raise DatasetIOError(f"{path}: header is not an object")
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise DatasetIOError(
                f"{path}: unsupported format version {version!r}"
            )
        meta, stats, path_info = _decode_header(header, path)
        traceroutes: list[TracerouteRecord] = []
        transfers: list[TransferRecord] = []
        trailer: dict | None = None
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetIOError(f"{path}:{line_no}: bad record: {exc}") from exc
            if isinstance(obj, dict) and TRAILER_KEY in obj:
                if trailer is not None:
                    raise DatasetIOError(f"{path}:{line_no}: duplicate trailer")
                trailer = obj[TRAILER_KEY]
                continue
            if trailer is not None:
                raise DatasetIOError(f"{path}:{line_no}: record after trailer")
            try:
                if "rtt" in obj:
                    traceroutes.append(
                        TracerouteRecord(
                            t=obj["t"],
                            src=obj["src"],
                            dst=obj["dst"],
                            rtt_samples=_none_to_nan(obj["rtt"]),
                            episode=obj.get("ep", -1),
                        )
                    )
                else:
                    transfers.append(
                        TransferRecord(
                            t=obj["t"],
                            src=obj["src"],
                            dst=obj["dst"],
                            rtt_ms=obj["rtt_ms"],
                            loss_rate=obj["loss"],
                            bandwidth_kbps=obj["bw"],
                        )
                    )
            except (TypeError, KeyError, ValueError) as exc:
                raise DatasetIOError(
                    f"{path}:{line_no}: stale record schema: {exc!r}"
                ) from exc
        if trailer is None:
            raise DatasetIOError(f"{path}: missing trailer (truncated file?)")
        n_records = len(traceroutes) + len(transfers)
        expected = trailer.get("n_records") if isinstance(trailer, dict) else None
        if expected != n_records:
            raise DatasetIOError(
                f"{path}: truncated file: trailer promises {expected!r} "
                f"records, found {n_records}"
            )
    try:
        hosts = list(header["hosts"])
        loss_first = bool(header.get("loss_first_probe_only", False))
    except (TypeError, KeyError) as exc:
        raise DatasetIOError(f"{path}: stale header schema: {exc!r}") from exc
    return Dataset(
        meta=meta,
        hosts=hosts,
        traceroutes=traceroutes,
        transfers=transfers,
        path_info=path_info,
        stats=stats,
        loss_first_probe_only=loss_first,
    )


def verify_dataset_file(path: str | Path) -> int:
    """Cheap structural validity check of a saved dataset file.

    Verifies what a crash or injected save fault can break without paying
    for a full parse: the header line is JSON with the supported format
    version, the last line is a trailer, and the trailer's record count
    matches the number of record lines.  Garbling *inside* an individual
    record line is only caught by :func:`load_dataset`'s full parse (the
    next cache probe), which is why this is a save-time smoke test, not a
    replacement for truncation detection on load.

    Returns:
        The number of record lines.

    Raises:
        DatasetIOError: on structural damage (bad/garbled header, wrong
            version, missing or garbled trailer, record-count mismatch).
    """
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetIOError(f"{path}: empty file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetIOError(f"{path}: bad header: {exc}") from exc
        if not isinstance(header, dict):
            raise DatasetIOError(f"{path}: header is not an object")
        if header.get("format_version") != FORMAT_VERSION:
            raise DatasetIOError(
                f"{path}: unsupported format version "
                f"{header.get('format_version')!r}"
            )
        n_lines = 0
        last: str | None = None
        for line in fh:
            line = line.strip()
            if not line:
                continue
            n_lines += 1
            last = line
    if last is None:
        raise DatasetIOError(f"{path}: missing trailer (truncated file?)")
    try:
        trailer_obj = json.loads(last)
    except json.JSONDecodeError as exc:
        raise DatasetIOError(f"{path}: garbled trailer line: {exc}") from exc
    if not isinstance(trailer_obj, dict) or TRAILER_KEY not in trailer_obj:
        raise DatasetIOError(f"{path}: missing trailer (truncated file?)")
    trailer = trailer_obj[TRAILER_KEY]
    expected = trailer.get("n_records") if isinstance(trailer, dict) else None
    n_records = n_lines - 1
    if expected != n_records:
        raise DatasetIOError(
            f"{path}: truncated file: trailer promises {expected!r} "
            f"records, found {n_records}"
        )
    return n_records


class CacheLockTimeout(DatasetIOError):
    """Raised when a cache build lock cannot be acquired in time."""


#: PID used by injected stale-lock faults: far above any real pid_max, so
#: the liveness probe always reports the "owner" dead.
_INJECTED_DEAD_PID = 2**22 + 77_777


class CacheLock:
    """Single-writer lock for a cache directory, safe against stale locks.

    The lock is a sidecar JSON file created with ``O_CREAT | O_EXCL``
    (atomic on POSIX and NT).  A lock is considered *stale* and broken
    when its owning process is provably dead (same machine, PID gone) or
    when the file is older than ``stale_after_s`` — so a crashed build
    never wedges subsequent runs.

    Ownership is witnessed by a ``(pid, token)`` pair written into the
    lock file on acquisition; :meth:`release` re-reads the file and only
    unlinks when both still match, so a process whose stale lock was
    broken and *taken over* by a peer can never delete that peer's lock.

    Usage::

        with CacheLock(suite_dir):
            ...  # sole writer for suite_dir
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        timeout_s: float = 600.0,
        stale_after_s: float = 3600.0,
        poll_interval_s: float = 0.05,
    ) -> None:
        self.path = Path(directory) / ".build.lock"
        self.timeout_s = timeout_s
        self.stale_after_s = stale_after_s
        self.poll_interval_s = poll_interval_s
        self._held = False
        self._token: str | None = None

    def _is_stale(self) -> bool:
        try:
            raw = self.path.read_text()
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # lock vanished; treat as released
        if age > self.stale_after_s:
            return True
        try:
            owner = json.loads(raw)
            pid = int(owner["pid"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Half-written owner record: only the age check applies.
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # owner is gone
        except PermissionError:
            return False  # alive, owned by someone else
        return False

    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if injection.pending(SITE_LOCK, self.path.parent.name) is not None:
            # Injected lock-holder death: plant a dead-owner lock file so
            # this acquisition exercises the stale-takeover path.
            if not self.path.exists():
                self.path.write_text(
                    json.dumps(
                        {"pid": _INJECTED_DEAD_PID, "token": "injected", "t": 0}
                    )
                )
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._is_stale():
                    # Break the stale lock and retry immediately.
                    self.path.unlink(missing_ok=True)
                    continue
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"{self.path}: held by another process for "
                        f">{self.timeout_s:g}s"
                    ) from None
                time.sleep(self.poll_interval_s)
                continue
            self._token = f"{os.getpid():x}-{time.monotonic_ns():x}"
            with os.fdopen(fd, "w") as fh:
                fh.write(
                    json.dumps(
                        {
                            "pid": os.getpid(),
                            "token": self._token,
                            "t": time.time(),
                        }
                    )
                )
            self._held = True
            return

    def release(self) -> None:
        """Release the lock, but only if this instance still owns it.

        If our lock aged out and a peer broke it and acquired its own
        (stale takeover), the file on disk now witnesses *their*
        ownership; unlinking it unconditionally would let a third process
        acquire concurrently.  So the owner record is re-read and the
        file is only unlinked when both the pid and the acquisition
        token still match ours.
        """
        if not self._held:
            return
        self._held = False
        try:
            owner = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # vanished or rewritten mid-break: provably not ours
        if not isinstance(owner, dict):
            return
        if owner.get("pid") == os.getpid() and owner.get("token") == self._token:
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "CacheLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

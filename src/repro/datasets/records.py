"""Compatibility shim: the record types moved to :mod:`repro.measurement.records`.

They are *measurement* record types — what one traceroute invocation or
npd transfer produced — and the collector that mints them lives in the
measurement layer.  Keeping them here made measurement import datasets,
an upward edge in the layer DAG (caught by ARCH002).  This module
re-exports the moved names so existing ``repro.datasets.records``
importers keep working; new code should import from
``repro.measurement.records``.
"""

from repro.measurement.records import (
    PROBES_PER_TRACEROUTE,
    CollectionStats,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)

__all__ = [
    "PROBES_PER_TRACEROUTE",
    "CollectionStats",
    "PathInfo",
    "TracerouteRecord",
    "TransferRecord",
]

"""The :class:`Dataset` container and its filtering operations.

A dataset is an immutable bag of measurement records between a set of
hosts, plus the static routing facts (:class:`~repro.measurement.records.PathInfo`)
for every measured ordered pair, plus collection metadata.  All the
corrections the paper applies to its raw data are implemented as methods
that return *new* datasets:

* :meth:`Dataset.with_min_samples` — "we removed paths for which there
  were fewer than 30 measurements" (§4.2);
* :meth:`Dataset.without_hosts` — filtering ICMP rate limiters (UW3/UW4);
* :meth:`Dataset.with_reverse_substitution` — UW1's use of
  opposite-direction traceroutes toward rate limiters;
* :meth:`Dataset.with_first_probe_loss_heuristic` — D2's "only the first
  traceroute sample was counted against losses";
* :meth:`Dataset.restricted_to_times` — time-of-day / weekend splits (§6.3).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

import numpy as np

from repro.measurement.records import (
    CollectionStats,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)

Pair = tuple[str, str]


class DatasetError(RuntimeError):
    """Raised on invalid dataset operations."""


@dataclass(slots=True)
class DatasetMeta:
    """Descriptive metadata, mirroring the columns of the paper's Table 1."""

    name: str
    method: str               # "traceroute" or "tcpanaly"
    year: int
    duration_days: float
    location: str             # "North America" or "World"
    era: str = "1999"
    description: str = ""


@dataclass
class Dataset:
    """Measurements between a host pool, ready for alternate-path analysis."""

    meta: DatasetMeta
    hosts: list[str]
    traceroutes: list[TracerouteRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    path_info: dict[Pair, PathInfo] = field(default_factory=dict)
    stats: CollectionStats = field(default_factory=CollectionStats)
    #: When True, only each traceroute's first probe counts toward loss
    #: (the D2 correction for now-undetectable ICMP rate limiting).
    loss_first_probe_only: bool = False

    def __post_init__(self) -> None:
        if self.traceroutes and self.transfers:
            raise DatasetError("a dataset holds traceroutes or transfers, not both")
        self._pair_index: dict[Pair, list[int]] | None = None
        self._rtt_cache: dict[Pair, np.ndarray] = {}
        self._loss_cache: dict[Pair, np.ndarray] = {}

    # -- basic facts ---------------------------------------------------------

    @property
    def is_bandwidth(self) -> bool:
        """Whether this is an npd-style (transfer) dataset."""
        return bool(self.transfers) or (not self.traceroutes and self.meta.method == "tcpanaly")

    @property
    def records(self) -> list:
        """The records, whichever family this dataset holds."""
        return self.transfers if self.is_bandwidth else self.traceroutes

    @property
    def n_measurements(self) -> int:
        """Number of measurement records (Table 1's "Number of measurements")."""
        return len(self.records)

    def _index(self) -> dict[Pair, list[int]]:
        if self._pair_index is None:
            index: dict[Pair, list[int]] = defaultdict(list)
            for i, rec in enumerate(self.records):
                index[(rec.src, rec.dst)].append(i)
            self._pair_index = dict(index)
        return self._pair_index

    def pairs(self) -> list[Pair]:
        """Ordered host pairs with at least one measurement, sorted."""
        return sorted(self._index())

    def n_pairs_possible(self) -> int:
        """Number of ordered pairs the host pool could produce."""
        n = len(self.hosts)
        return n * (n - 1)

    def coverage(self) -> float:
        """Fraction of potential ordered paths actually measured.

        This is Table 1's "Percent of paths covered" (as a fraction).
        """
        possible = self.n_pairs_possible()
        return len(self._index()) / possible if possible else 0.0

    def measurements_for(self, pair: Pair) -> list:
        """All records for one ordered pair, in collection order."""
        return [self.records[i] for i in self._index().get(pair, [])]

    def n_measurements_for(self, pair: Pair) -> int:
        """Number of records for one ordered pair."""
        return len(self._index().get(pair, []))

    # -- sample accessors ----------------------------------------------------

    def rtt_samples(self, pair: Pair) -> np.ndarray:
        """Successful RTT samples (ms) for an ordered pair.

        For traceroute datasets each answered probe is one sample; for
        transfer datasets each transfer's mean RTT is one sample.
        """
        if pair not in self._rtt_cache:
            values: list[float] = []
            for rec in self.measurements_for(pair):
                if isinstance(rec, TracerouteRecord):
                    values.extend(rec.successful_rtts)
                else:
                    values.append(rec.rtt_ms)
            self._rtt_cache[pair] = np.array(values)
        return self._rtt_cache[pair]

    def loss_samples(self, pair: Pair) -> np.ndarray:
        """Per-probe loss indicators (1.0 = lost) for an ordered pair.

        Under :attr:`loss_first_probe_only`, only each invocation's first
        probe contributes (the D2 heuristic); otherwise every probe does.
        For transfer datasets, each transfer's measured loss rate is one
        sample.
        """
        if pair not in self._loss_cache:
            values: list[float] = []
            for rec in self.measurements_for(pair):
                if isinstance(rec, TracerouteRecord):
                    if self.loss_first_probe_only:
                        values.append(1.0 if rec.first_sample_lost() else 0.0)
                    else:
                        values.extend(
                            1.0 if math.isnan(r) else 0.0 for r in rec.rtt_samples
                        )
                else:
                    values.append(rec.loss_rate)
            self._loss_cache[pair] = np.array(values)
        return self._loss_cache[pair]

    def bandwidth_samples(self, pair: Pair) -> np.ndarray:
        """Measured throughputs (kB/s) for an ordered pair.

        Raises:
            DatasetError: for traceroute datasets.
        """
        if not self.is_bandwidth:
            raise DatasetError(f"{self.meta.name} is not a bandwidth dataset")
        return np.array([rec.bandwidth_kbps for rec in self.measurements_for(pair)])

    def timestamps(self, pair: Pair) -> np.ndarray:
        """Record timestamps for an ordered pair."""
        return np.array([rec.t for rec in self.measurements_for(pair)])

    # -- episodes (UW4-A) ----------------------------------------------------

    def episodes(self) -> list[int]:
        """Sorted distinct episode ids (excluding -1)."""
        ids = {rec.episode for rec in self.traceroutes if rec.episode >= 0}
        return sorted(ids)

    def records_in_episode(self, episode: int) -> list[TracerouteRecord]:
        """All traceroute records belonging to one episode."""
        return [rec for rec in self.traceroutes if rec.episode == episode]

    # -- derived datasets ------------------------------------------------------

    def _rebuild(
        self,
        *,
        hosts: list[str] | None = None,
        traceroutes: list[TracerouteRecord] | None = None,
        transfers: list[TransferRecord] | None = None,
        path_info: dict[Pair, PathInfo] | None = None,
        loss_first_probe_only: bool | None = None,
        name_suffix: str = "",
    ) -> "Dataset":
        meta = replace(self.meta)
        if name_suffix:
            meta = replace(meta, name=f"{meta.name}{name_suffix}")
        return Dataset(
            meta=meta,
            hosts=list(self.hosts) if hosts is None else hosts,
            traceroutes=list(self.traceroutes) if traceroutes is None else traceroutes,
            transfers=list(self.transfers) if transfers is None else transfers,
            path_info=dict(self.path_info) if path_info is None else path_info,
            stats=self.stats,
            loss_first_probe_only=(
                self.loss_first_probe_only
                if loss_first_probe_only is None
                else loss_first_probe_only
            ),
        )

    def with_min_samples(self, minimum: int = 30) -> "Dataset":
        """Drop ordered pairs with fewer than ``minimum`` measurements."""
        keep_pairs = {
            pair for pair, idxs in self._index().items() if len(idxs) >= minimum
        }
        if self.is_bandwidth:
            transfers = [r for r in self.transfers if (r.src, r.dst) in keep_pairs]
            return self._rebuild(transfers=transfers)
        traceroutes = [r for r in self.traceroutes if (r.src, r.dst) in keep_pairs]
        return self._rebuild(traceroutes=traceroutes)

    def without_hosts(self, names: Iterable[str]) -> "Dataset":
        """Remove hosts and every record touching them."""
        drop = set(names)
        hosts = [h for h in self.hosts if h not in drop]
        if self.is_bandwidth:
            transfers = [
                r for r in self.transfers if r.src not in drop and r.dst not in drop
            ]
            return self._rebuild(hosts=hosts, transfers=transfers)
        traceroutes = [
            r for r in self.traceroutes if r.src not in drop and r.dst not in drop
        ]
        path_info = {
            p: info
            for p, info in self.path_info.items()
            if p[0] not in drop and p[1] not in drop
        }
        return self._rebuild(hosts=hosts, traceroutes=traceroutes, path_info=path_info)

    def with_reverse_substitution(self, rate_limited: Iterable[str]) -> "Dataset":
        """Replace measurements *toward* rate limiters with the reverse
        direction's measurements (the UW1 correction).

        For each ordered pair (A, B) with B rate-limited and A not, the
        pair's records are replaced by re-labeled copies of the (B, A)
        records.  Pairs between two rate limiters are dropped.
        """
        limited = set(rate_limited)
        if self.is_bandwidth:
            raise DatasetError("reverse substitution applies to traceroute datasets")
        by_pair: dict[Pair, list[TracerouteRecord]] = defaultdict(list)
        for rec in self.traceroutes:
            by_pair[(rec.src, rec.dst)].append(rec)
        out: list[TracerouteRecord] = []
        for (src, dst), recs in sorted(by_pair.items()):
            if dst not in limited:
                out.extend(recs)
            elif src not in limited:
                # Use the opposite direction's measurements, relabeled.
                for rec in by_pair.get((dst, src), []):
                    out.append(
                        TracerouteRecord(
                            t=rec.t,
                            src=src,
                            dst=dst,
                            rtt_samples=rec.rtt_samples,
                            episode=rec.episode,
                        )
                    )
            # else: both endpoints rate-limited; drop the pair.
        return self._rebuild(traceroutes=out)

    def with_first_probe_loss_heuristic(self) -> "Dataset":
        """Apply the D2 correction: losses counted from first probes only."""
        return self._rebuild(loss_first_probe_only=True)

    def restricted_to_times(
        self, predicate: Callable[[float], bool], *, name_suffix: str = ""
    ) -> "Dataset":
        """Keep records whose timestamp satisfies ``predicate``."""
        if self.is_bandwidth:
            transfers = [r for r in self.transfers if predicate(r.t)]
            return self._rebuild(transfers=transfers, name_suffix=name_suffix)
        traceroutes = [r for r in self.traceroutes if predicate(r.t)]
        return self._rebuild(traceroutes=traceroutes, name_suffix=name_suffix)

    # -- reporting -------------------------------------------------------------

    def table1_row(self) -> dict[str, object]:
        """This dataset's row of the paper's Table 1."""
        return {
            "dataset": self.meta.name,
            "method": self.meta.method,
            "year": self.meta.year,
            "duration": f"{self.meta.duration_days:g} days",
            "location": self.meta.location,
            "hosts": len(self.hosts),
            "measurements": self.n_measurements,
            "paths_covered_pct": round(100.0 * self.coverage()),
        }

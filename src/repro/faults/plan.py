"""Deterministic fault plans: *which* fault fires *where*, on *which attempt*.

A :class:`FaultPlan` is a small, order-preserving list of
:class:`FaultSpec` clauses.  Each clause names a fault ``kind`` (which
implies the injection site it fires at), the ``key`` it matches at that
site (a build-group name, a dataset name, or ``*`` for any), and how many
*attempts* it fires on.  Firing is a pure function of
``(plan, site, key, attempt)`` — there is no wall clock, no RNG, and no
hidden per-process counter — so a plan replayed against the same build
schedule injects exactly the same failures, in workers and in the
coordinating process alike.

Plans travel as compact strings (the :data:`ENV_VAR` environment variable,
the ``--fault-plan`` CLI flag, and the argument the build supervisor ships
to pool workers all use the same format)::

    crash:uw3                       # kill the worker building group uw3 once
    fail:*:times=2                  # every group build raises on attempts 0-1
    slow:d2:delay=1.5               # group d2's first build sleeps 1.5s
    truncate:UW1;drop-trailer:N2    # two save-corruption clauses

Clause grammar: ``<kind>[:<key>][:times=N][:delay=S]``, clauses joined
with ``;``.  A JSON array of ``{"kind", "key", "times", "delay_s"}``
objects is also accepted (useful for generated plans).  The grammar is
shared with the network-scenario plans of :mod:`repro.scenario.plan`
through :func:`split_clause`; the canonical grammar description lives in
``docs/ROBUSTNESS.md`` ("Fault plans"), with the scenario clause registry
in ``docs/SCENARIOS.md``.

The injection-point registry (which kinds fire at which site, and what
each does) is documented in ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Environment variable carrying a fault-plan spec string.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Injection sites (see docs/ROBUSTNESS.md for the registry).
SITE_BUILD = "build.group"
SITE_SAVE = "io.save"
SITE_LOCK = "lock.acquire"

#: Fault kinds, and the site each fires at.
KIND_CRASH = "crash"
KIND_FAIL = "fail"
KIND_SLOW = "slow"
KIND_TRUNCATE = "truncate"
KIND_GARBLE_HEADER = "garble-header"
KIND_DROP_TRAILER = "drop-trailer"
KIND_LOCK_STALE = "lock-stale"

KIND_SITES: dict[str, str] = {
    KIND_CRASH: SITE_BUILD,
    KIND_FAIL: SITE_BUILD,
    KIND_SLOW: SITE_BUILD,
    KIND_TRUNCATE: SITE_SAVE,
    KIND_GARBLE_HEADER: SITE_SAVE,
    KIND_DROP_TRAILER: SITE_SAVE,
    KIND_LOCK_STALE: SITE_LOCK,
}

#: Default injected delay for ``slow`` faults, seconds.
DEFAULT_DELAY_S = 0.25


class FaultPlanError(ValueError):
    """Raised for malformed fault-plan specs (CLI maps this to exit 2)."""


def clause_context(clause: str, position: int) -> str:
    """The error prefix identifying a clause: its 1-based position and text.

    Every parse error names the offending clause this way so a bad clause
    buried in a long plan string can be found without counting ``;`` by
    hand.
    """
    return f"clause {position + 1} ({clause.strip()!r})"


def split_clause(
    clause: str,
    position: int,
    *,
    known_options: tuple[str, ...],
    error_cls: type[ValueError],
) -> tuple[str, str | None, dict[str, str]]:
    """Tokenize one ``<kind>[:<key>][:opt=val ...]`` clause.

    The shared half of the clause grammar used by both :class:`FaultPlan`
    and :class:`repro.scenario.plan.ScenarioPlan`: the first field is the
    kind, an optional second bare field is the key, and every remaining
    field must be a ``name=value`` option drawn from ``known_options``.

    Returns:
        ``(kind, key_or_None, options)`` with all fields stripped.

    Raises:
        error_cls: with the clause text and position on any malformed
            field.
    """
    ctx = clause_context(clause, position)
    fields = [f.strip() for f in clause.split(":")]
    kind = fields[0]
    key: str | None = None
    options: dict[str, str] = {}
    for i, part in enumerate(fields[1:]):
        if "=" in part:
            opt, _, value = part.partition("=")
            opt = opt.strip()
            if opt not in known_options:
                raise error_cls(
                    f"{ctx}: unknown option {opt!r} "
                    f"(supported: {', '.join(known_options)})"
                )
            options[opt] = value.strip()
        elif i == 0:
            key = part
        else:
            raise error_cls(
                f"{ctx}: unexpected field {part!r} "
                "(options must be name=value)"
            )
    return kind, key, options


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One fault clause: a kind, a key filter, and an attempt budget.

    Attributes:
        kind: One of :data:`KIND_SITES`; determines the injection site.
        key: Exact key to match at the site (build-group name for
            :data:`SITE_BUILD`, dataset name for :data:`SITE_SAVE`, suite
            directory name for :data:`SITE_LOCK`); ``"*"`` matches any.
        times: Fire on attempts ``0 .. times-1`` of the matching
            operation; the retrying supervisor increments the attempt
            number, so a ``times=1`` fault hits the first try and lets
            the retry succeed.
        delay_s: Injected sleep for ``slow`` faults.
    """

    kind: str
    key: str = "*"
    times: int = 1
    delay_s: float = DEFAULT_DELAY_S

    def __post_init__(self) -> None:
        if self.kind not in KIND_SITES:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(KIND_SITES)}"
            )
        if not self.key:
            raise FaultPlanError(f"{self.kind}: empty key (use '*' for any)")
        if self.times < 1:
            raise FaultPlanError(f"{self.kind}:{self.key}: times must be >= 1")
        if self.delay_s < 0:
            raise FaultPlanError(f"{self.kind}:{self.key}: delay must be >= 0")

    @property
    def site(self) -> str:
        return KIND_SITES[self.kind]

    def matches(self, site: str, key: str, attempt: int) -> bool:
        """Whether this clause fires for ``(site, key)`` on ``attempt``."""
        return (
            self.site == site
            and (self.key == "*" or self.key == key)
            and attempt < self.times
        )

    def to_clause(self) -> str:
        """The canonical spec-string clause for this fault."""
        parts = [self.kind, self.key]
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.kind == KIND_SLOW and self.delay_s != DEFAULT_DELAY_S:
            parts.append(f"delay={self.delay_s:g}")
        return ":".join(parts)


def _parse_clause(clause: str, position: int = 0) -> FaultSpec:
    ctx = clause_context(clause, position)
    kind, key, options = split_clause(
        clause, position, known_options=("times", "delay"),
        error_cls=FaultPlanError,
    )
    times = 1
    delay_s = DEFAULT_DELAY_S
    if "times" in options:
        try:
            times = int(options["times"])
        except ValueError:
            raise FaultPlanError(
                f"{ctx}: times must be an integer, got {options['times']!r}"
            ) from None
    if "delay" in options:
        try:
            delay_s = float(options["delay"])
        except ValueError:
            raise FaultPlanError(
                f"{ctx}: delay must be a number, got {options['delay']!r}"
            ) from None
    try:
        return FaultSpec(
            kind=kind, key=key if key is not None else "*",
            times=times, delay_s=delay_s,
        )
    except FaultPlanError as exc:
        # FaultSpec validation knows kind/key but not where the clause sat
        # in the plan string; re-raise with the full clause context.
        raise FaultPlanError(f"{ctx}: {exc}") from None


def _parse_json(text: str) -> tuple[FaultSpec, ...]:
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"bad JSON fault plan: {exc}") from exc
    if not isinstance(raw, list):
        raise FaultPlanError("JSON fault plan must be an array of objects")
    specs = []
    for entry in raw:
        if not isinstance(entry, dict) or "kind" not in entry:
            raise FaultPlanError(
                f"JSON fault clause must be an object with a 'kind': {entry!r}"
            )
        unknown = set(entry) - {"kind", "key", "times", "delay_s"}
        if unknown:
            raise FaultPlanError(
                f"JSON fault clause has unknown fields {sorted(unknown)}"
            )
        try:
            specs.append(FaultSpec(**entry))
        except TypeError as exc:
            raise FaultPlanError(f"bad JSON fault clause {entry!r}: {exc}") from exc
    return tuple(specs)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` clauses.

    The first clause matching ``(site, key, attempt)`` wins, so more
    specific clauses should precede wildcard ones.  An empty plan (from
    ``FaultPlan.parse("")``) matches nothing; it is distinct from *no
    plan* and suppresses any :data:`ENV_VAR` fallback while active.
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a spec string (compact clause or JSON-array format).

        Raises:
            FaultPlanError: on any malformed clause.
        """
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("["):
            return cls(specs=_parse_json(text))
        return cls(
            specs=tuple(
                _parse_clause(clause, position)
                for position, clause in enumerate(text.split(";"))
                if clause.strip()
            )
        )

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan named by :data:`ENV_VAR`, or None when unset/empty.

        Raises:
            FaultPlanError: when the variable holds a malformed spec.
        """
        import os

        raw = (environ if environ is not None else os.environ).get(ENV_VAR)
        if raw is None or not raw.strip():
            return None
        return cls.parse(raw)

    def match(self, site: str, key: str, attempt: int) -> FaultSpec | None:
        """The first clause firing for ``(site, key)`` on ``attempt``."""
        for spec in self.specs:
            if spec.matches(site, key, attempt):
                return spec
        return None

    def to_spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return ";".join(spec.to_clause() for spec in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

"""Deterministic fault injection and the fault-tolerant build supervisor.

See docs/ROBUSTNESS.md for the fault taxonomy, the injection-point
registry, the retry/backoff policy, and resume semantics.
"""

from repro.faults.injection import (
    CRASH_EXIT_CODE,
    InjectedFault,
    activate,
    attempt_scope,
    current_attempt,
    mark_worker_process,
    pending,
    perform,
)
from repro.faults.plan import (
    ENV_VAR,
    KIND_CRASH,
    KIND_DROP_TRAILER,
    KIND_FAIL,
    KIND_GARBLE_HEADER,
    KIND_LOCK_STALE,
    KIND_SITES,
    KIND_SLOW,
    KIND_TRUNCATE,
    SITE_BUILD,
    SITE_LOCK,
    SITE_SAVE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from repro.faults.supervisor import (
    BuildFailure,
    BuildSupervisor,
    RetryPolicy,
    RunLedger,
    SupervisorResult,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "BuildFailure",
    "BuildSupervisor",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "KIND_CRASH",
    "KIND_DROP_TRAILER",
    "KIND_FAIL",
    "KIND_GARBLE_HEADER",
    "KIND_LOCK_STALE",
    "KIND_SITES",
    "KIND_SLOW",
    "KIND_TRUNCATE",
    "RetryPolicy",
    "RunLedger",
    "SITE_BUILD",
    "SITE_LOCK",
    "SITE_SAVE",
    "SupervisorResult",
    "activate",
    "attempt_scope",
    "current_attempt",
    "mark_worker_process",
    "pending",
    "perform",
]

"""Runtime injection points for deterministic fault plans.

The pipeline's fault hooks all funnel through this module:

* :func:`perform` executes *process-level* faults (worker crash, injected
  exception, slow build) at :data:`~repro.faults.plan.SITE_BUILD`.
* :func:`pending` merely *reports* the matching fault so the call site can
  apply it itself — the save path in :mod:`repro.datasets.io` uses this to
  corrupt its own output (truncated body, garbled header, dropped
  trailer), and :class:`~repro.datasets.io.CacheLock` uses it to plant a
  dead-owner lock file.

Which plan is consulted:

1. A plan explicitly activated with :func:`activate` (the build
   supervisor activates its resolved plan around every task, shipping the
   spec string to pool workers as a task argument, so workers never
   depend on inherited globals).
2. Otherwise, the :data:`~repro.faults.plan.ENV_VAR` environment
   variable, parsed on each query — this is what lets tests and CI replay
   an exact failure schedule against unmodified entry points.

Activating ``None`` (or an empty plan) *suppresses* the environment
fallback, so supervised builds are never perturbed by a stray variable.

Attempt numbers come from :func:`attempt_scope`; outside any scope the
attempt is 0, which is why a plain (unsupervised) call sees every
``times>=1`` fault fire.  Nothing here reads the wall clock or draws
randomness: firing is a pure function of (plan, site, key, attempt).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.faults.plan import (
    KIND_CRASH,
    KIND_FAIL,
    KIND_SLOW,
    FaultPlan,
    FaultSpec,
)

#: Exit status used by injected worker crashes (os._exit), chosen to be
#: recognizable in pool diagnostics.
CRASH_EXIT_CODE = 113

#: (activated?, plan) — when activated, the env fallback is suppressed.
_active: tuple[bool, FaultPlan | None] = (False, None)

#: Current attempt number for retry-aware faults (see attempt_scope).
_attempt: int = 0

#: True only in ProcessPoolExecutor workers (set by mark_worker_process);
#: decides whether an injected "crash" may take the whole process down.
_in_worker: bool = False


class InjectedFault(RuntimeError):
    """Raised when a ``fail`` fault fires (or a ``crash`` fires in-process).

    Attributes:
        spec: The fault clause that fired.
        site: Injection site it fired at.
        key: Key it matched.
        attempt: Attempt number in effect when the fault fired.
    """

    def __init__(
        self, spec: FaultSpec, site: str, key: str, attempt: int | None = None
    ) -> None:
        attempt = _attempt if attempt is None else attempt
        super().__init__(
            f"injected {spec.kind!r} fault at {site} for {key!r} "
            f"(attempt {attempt})"
        )
        self.spec = spec
        self.site = site
        self.key = key
        self.attempt = attempt

    def __reduce__(self):
        # Raised inside pool workers and shipped back pickled; the default
        # BaseException reduction would re-call __init__ with the message
        # string alone and fail, poisoning the pool's result queue.
        return (type(self), (self.spec, self.site, self.key, self.attempt))


def mark_worker_process() -> None:
    """Pool-worker initializer: allow ``crash`` faults to really exit."""
    global _in_worker
    _in_worker = True


@contextmanager
def activate(plan: FaultPlan | None) -> Iterator[None]:
    """Make ``plan`` the active fault plan for the dynamic extent.

    ``activate(None)`` (and an empty plan) disables injection entirely,
    including the environment fallback.
    """
    global _active
    prev = _active
    # Each process owns its _active: workers re-activate their own plan
    # on entry and the swap is scoped, so state never leaks across forks.
    _active = (True, plan)  # repro: ignore[PAR003]  # justified: scoped per-process swap
    try:
        yield
    finally:
        _active = prev  # repro: ignore[PAR003]  # justified: restores the pre-swap value


@contextmanager
def attempt_scope(attempt: int) -> Iterator[None]:
    """Set the attempt number consulted by fault matching."""
    global _attempt
    prev = _attempt
    # Same per-process swap protocol as activate() above.
    _attempt = attempt  # repro: ignore[PAR003]  # justified: scoped per-process swap
    try:
        yield
    finally:
        _attempt = prev  # repro: ignore[PAR003]  # justified: restores the pre-swap value


def current_attempt() -> int:
    """The attempt number in effect (0 outside any scope)."""
    return _attempt


def _plan() -> FaultPlan | None:
    activated, plan = _active
    if activated:
        return plan
    return FaultPlan.from_env()


def pending(site: str, key: str) -> FaultSpec | None:
    """The fault clause that fires for ``(site, key)`` now, if any.

    Raises:
        FaultPlanError: when the environment fallback holds a malformed
            spec (surfaced rather than silently ignoring the plan).
    """
    plan = _plan()
    if plan is None:
        return None
    return plan.match(site, key, _attempt)


def perform(site: str, key: str) -> FaultSpec | None:
    """Execute any process-level fault pending at ``(site, key)``.

    * ``slow`` sleeps for the clause's delay and returns.
    * ``fail`` raises :class:`InjectedFault`.
    * ``crash`` calls ``os._exit`` in pool workers (producing a
      ``BrokenProcessPool`` in the parent); in the coordinating process
      it degrades to :class:`InjectedFault` so a fault plan can never
      take down the supervisor itself.

    Other kinds are returned for the call site to apply.
    """
    spec = pending(site, key)
    if spec is None:
        return None
    if spec.kind == KIND_SLOW:
        time.sleep(spec.delay_s)
        return spec
    if spec.kind == KIND_CRASH:
        if _in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault(spec, site, key)
    if spec.kind == KIND_FAIL:
        raise InjectedFault(spec, site, key)
    return spec

"""A fault-tolerant supervisor for parallel build fan-out.

:class:`BuildSupervisor` runs a set of labelled tasks (dataset build
groups) to completion under a :class:`RetryPolicy`:

* **Per-group retry** with capped exponential backoff; the jitter is
  derived from ``(policy.seed, group, attempt)`` so two runs of the same
  configuration back off identically (no wall-clock, no global RNG — the
  current time and ``sleep`` are injectable for tests and the defaults
  only *pace* the run, they never influence results).
* **Per-attempt deadlines** (``RetryPolicy.timeout_s``): a pooled group
  build that exceeds its deadline is abandoned and retried; the pool is
  shut down without waiting so a hung worker cannot stall the run.
* **BrokenProcessPool detection**: when a worker dies mid-task (crash,
  OOM-kill, injected ``crash`` fault), results already collected are
  kept, only the affected groups are retried, and the supervisor falls
  back to serial in-process rebuilds for the remainder of the run.
* **Attempt-scoped fault injection**: the active
  :class:`~repro.faults.plan.FaultPlan` is shipped to every task as a
  spec string together with the attempt number, so injected failure
  schedules replay exactly across processes.

Tasks must be module-level callables (picklable) with the signature
``task(label, attempt, plan_spec, *task_args) -> payload``.  A successful
payload is handed to the optional ``on_success`` callback in
deterministic label order; exceptions from the callback propagate (the
dataset pipeline uses this for fail-fast save errors).

:class:`RunLedger` is the tiny crash-safe completion journal behind
``repro suite --resume``: each completed group is recorded with an atomic
write-then-rename, so an interrupted run can tell *finished* groups from
merely-present files and skip straight to the unfinished work.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.faults import injection
from repro.faults.plan import FaultPlan
from repro.obs import clock as obs_clock
from repro.obs import runtime as obs

#: Outcome kinds a round can report for one label.
_OK, _ERROR, _TIMEOUT, _BROKEN = "ok", "error", "timeout", "broken"


class BuildFailure(RuntimeError):
    """One or more groups exhausted their retry budget.

    Attributes:
        failures: label -> human-readable reason for the final failure.
    """

    def __init__(self, failures: dict[str, str]) -> None:
        detail = "; ".join(f"{label}: {reason}" for label, reason in failures.items())
        super().__init__(f"{len(failures)} build group(s) failed: {detail}")
        self.failures = dict(failures)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Retry/backoff/deadline knobs for supervised builds.

    Attributes:
        max_attempts: Total tries per group (first attempt included).
        base_delay_s: Backoff before the second attempt; doubles per
            retry up to ``cap_delay_s``.
        cap_delay_s: Upper bound on any single backoff sleep.
        timeout_s: Per-attempt wall-clock deadline for pooled builds
            (None = unbounded).  Serial in-process attempts cannot be
            interrupted and run unbounded.
        seed: Jitter derivation seed (the run seed), so backoff pacing
            is reproducible.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    cap_delay_s: float = 2.0
    timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")

    def backoff_s(self, label: str, attempt: int) -> float:
        """Deterministic jittered backoff before retry ``attempt``.

        Exponential in the attempt number, capped, then scaled by a
        jitter factor in [0.5, 1.5) drawn from a stream derived from
        ``(seed, label, attempt)`` — identical schedules on every run.
        """
        base = min(self.cap_delay_s, self.base_delay_s * (2 ** max(0, attempt - 1)))
        label_tag = int.from_bytes(
            hashlib.sha256(label.encode()).digest()[:4], "big"
        )
        rng = np.random.default_rng((self.seed, 0xFA017, label_tag, attempt))
        return base * (0.5 + rng.random())


@dataclass(slots=True)
class SupervisorResult:
    """What a supervised run produced.

    Attributes:
        results: label -> task payload, for every label that succeeded.
        failures: label -> reason, for labels that exhausted retries.
        attempts: label -> attempts consumed (successes and failures).
    """

    results: dict[str, object] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)


class BuildSupervisor:
    """Runs labelled tasks to completion under a :class:`RetryPolicy`.

    Args:
        policy: Retry/backoff/deadline configuration.
        plan: Fault plan to ship to every task attempt (None = no
            injection; tasks also ignore any ambient env plan because an
            explicit — possibly empty — plan is always activated).
        clock: Monotonic-time source for deadlines (injectable so the
            supervisor itself never reads a wall clock; defaults to
            :func:`repro.obs.clock.now`).
        sleep: Backoff sleeper (defaults to ``time.sleep``).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        *,
        plan: FaultPlan | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.policy = policy
        self.plan = plan
        self._clock = clock if clock is not None else obs_clock.now
        self._sleep = sleep if sleep is not None else time.sleep

    def run(
        self,
        task: Callable,
        labels: Sequence[str],
        task_args: tuple = (),
        *,
        jobs: int = 1,
        report=None,
        progress: Callable[[str], None] | None = None,
        on_success: Callable[[str, object], None] | None = None,
    ) -> SupervisorResult:
        """Run ``task`` for every label until success or retry exhaustion.

        Labels run in rounds: each round executes every still-pending
        label once (pooled when ``jobs > 1``, else serially in-process),
        then failed labels back off and re-enter the next round.  Pool
        breakage permanently demotes the run to serial fallback.
        """
        prog = progress if progress is not None else (lambda _msg: None)
        plan_spec = self.plan.to_spec() if self.plan is not None else ""
        out = SupervisorResult()
        pending = {label: 0 for label in labels}
        force_serial = False
        while pending:
            order = [label for label in labels if label in pending]
            n_jobs = 1 if force_serial else min(jobs, len(order))
            if n_jobs > 1:
                outcomes, broke = self._parallel_round(
                    task, order, pending, plan_spec, task_args, n_jobs
                )
                if broke:
                    force_serial = True
            else:
                outcomes = self._serial_round(
                    task, order, pending, plan_spec, task_args
                )
            retried: list[tuple[str, int]] = []
            for label in order:
                status, payload = outcomes[label]
                attempt_no = pending[label] + 1
                if status == _OK:
                    out.results[label] = payload
                    out.attempts[label] = attempt_no
                    del pending[label]
                    if on_success is not None:
                        on_success(label, payload)
                    continue
                reason = str(payload)
                if status == _BROKEN:
                    obs.count("faults.serial_fallbacks")
                    if report is not None:
                        report.fault(
                            f"{label}: {reason}; serial fallback for "
                            "remaining groups"
                        )
                if attempt_no >= self.policy.max_attempts:
                    out.failures[label] = reason
                    out.attempts[label] = attempt_no
                    del pending[label]
                    if report is not None:
                        report.fail_group(label, reason)
                    prog(
                        f"{label}: giving up after {attempt_no} attempt(s): {reason}"
                    )
                else:
                    pending[label] = attempt_no
                    retried.append((label, attempt_no))
                    with obs.span("faults.retry") as sp:
                        sp.set("label", label)
                        sp.set("attempt", attempt_no)
                        sp.set("reason", reason)
                    obs.count("faults.retries")
                    if report is not None:
                        report.retry(label, reason)
                    prog(
                        f"{label}: attempt {attempt_no}/"
                        f"{self.policy.max_attempts} failed ({reason}); retrying"
                    )
            if pending and retried:
                delay = max(
                    self.policy.backoff_s(label, attempt)
                    for label, attempt in retried
                )
                if report is not None:
                    report.record("supervisor", "backoff", delay)
                with obs.span("faults.backoff") as sp:
                    sp.set("delay_s", round(delay, 6))
                    obs.count("faults.backoffs")
                    self._sleep(delay)
        return out

    def _serial_round(
        self,
        task: Callable,
        order: list[str],
        attempts: dict[str, int],
        plan_spec: str,
        task_args: tuple,
    ) -> dict[str, tuple[str, object]]:
        """Run one attempt of each label in-process, in label order."""
        outcomes: dict[str, tuple[str, object]] = {}
        for label in order:
            try:
                outcomes[label] = (
                    _OK,
                    task(label, attempts[label], plan_spec, *task_args),
                )
            except injection.InjectedFault as exc:
                outcomes[label] = (_ERROR, str(exc))
            except Exception as exc:  # justified: the supervisor's contract is converting any group failure into a retry/failure record, whatever the builder raised
                outcomes[label] = (_ERROR, f"{type(exc).__name__}: {exc}")
        return outcomes

    def _parallel_round(
        self,
        task: Callable,
        order: list[str],
        attempts: dict[str, int],
        plan_spec: str,
        task_args: tuple,
        n_jobs: int,
    ) -> tuple[dict[str, tuple[str, object]], bool]:
        """Run one attempt of each label across a worker pool.

        Returns the per-label outcomes plus whether the pool broke (a
        worker died); on breakage, results collected before the break
        are kept and only the affected labels report failures.
        """
        outcomes: dict[str, tuple[str, object]] = {}
        broke = False
        pool = ProcessPoolExecutor(
            max_workers=n_jobs, initializer=injection.mark_worker_process
        )
        try:
            futures = {
                label: pool.submit(
                    task, label, attempts[label], plan_spec, *task_args
                )
                for label in order
            }
            start = self._clock()
            for label in order:
                remaining: float | None = None
                if self.policy.timeout_s is not None:
                    remaining = max(
                        0.0, self.policy.timeout_s - (self._clock() - start)
                    )
                try:
                    outcomes[label] = (_OK, futures[label].result(timeout=remaining))
                except FutureTimeoutError:
                    futures[label].cancel()
                    outcomes[label] = (
                        _TIMEOUT,
                        f"build deadline {self.policy.timeout_s:g}s exceeded",
                    )
                except BrokenProcessPool:
                    broke = True
                    outcomes[label] = (
                        _BROKEN,
                        "worker process died (broken pool)",
                    )
                except injection.InjectedFault as exc:
                    outcomes[label] = (_ERROR, str(exc))
                except Exception as exc:  # justified: worker exceptions of any type must become retry/failure records, not abort sibling groups
                    outcomes[label] = (_ERROR, f"{type(exc).__name__}: {exc}")
        finally:
            # Never wait: a hung or crashed worker must not stall the
            # supervisor.  Orphaned sleepers are reaped at interpreter
            # exit.
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes, broke


class RunLedger:
    """Crash-safe journal of completed build groups for one suite dir.

    The ledger is a small JSON file (``run-ledger.json``) updated with an
    atomic write-then-rename after each group's datasets are saved and
    verified.  ``repro suite --resume`` reads it to skip groups a prior
    interrupted run already finished; entries are keyed to (seed, scale)
    so a ledger can never resume a different configuration.  Contents are
    operational metadata only — never dataset content — and carry no
    timestamps, so ledger files are themselves reproducible.
    """

    VERSION = 1

    def __init__(self, path: str | Path, *, seed: int, scale: float) -> None:
        self.path = Path(path)
        self.seed = seed
        self.scale = scale

    def _load(self) -> dict:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if (
            not isinstance(raw, dict)
            or raw.get("version") != self.VERSION
            or raw.get("seed") != self.seed
            or raw.get("scale") != self.scale
            or not isinstance(raw.get("completed"), dict)
        ):
            return {}
        return raw

    def completed(self) -> dict[str, list[str]]:
        """group -> dataset names recorded as completed, for this config."""
        completed = self._load().get("completed", {})
        return {
            group: list(names)
            for group, names in completed.items()
            if isinstance(names, list)
        }

    def _write(self, completed: dict[str, list[str]]) -> None:
        payload = {
            "version": self.VERSION,
            "seed": self.seed,
            "scale": self.scale,
            "completed": {g: completed[g] for g in sorted(completed)},
        }
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)

    def mark(self, group: str, datasets: Sequence[str]) -> None:
        """Record ``group`` (and the datasets it saved) as completed."""
        completed = self.completed()
        completed[group] = list(datasets)
        self._write(completed)

    def clear(self, groups: Sequence[str]) -> None:
        """Drop completion records for groups about to be rebuilt."""
        completed = self.completed()
        remaining = {g: n for g, n in completed.items() if g not in set(groups)}
        if remaining != completed:
            self._write(remaining)

"""Scenario plans: timed network events in the fault-plan clause grammar.

A :class:`ScenarioPlan` is an ordered list of :class:`ScenarioEvent`
clauses, each naming a network event ``kind``, the ``key`` it applies to,
and *when* it happens.  Where :class:`repro.faults.plan.FaultPlan`
counts *attempts* of pipeline operations, a scenario plan measures
*simulation time*: every clause carries ``at=T`` (seconds from the
simulated origin) and transient kinds add ``for=S`` (duration).  Plans
travel as compact strings (the ``--scenario`` CLI flag)::

    link-down:2-7:at=1800:for=900      # AS2-AS7 adjacency fails for 15 min
    node-down:9:at=3600                # AS9 withdraws entirely (permanent)
    region-outage:na-west:at=600:for=600
    flap-storm:whatif-*->whatif-3:at=1200:for=1800
    depeer:4-11:at=2400                # adjacency removed permanently
    new-transit:1-13:at=2400           # AS1 becomes AS13's provider

Clause grammar: ``<kind>:<key>:at=T[:for=S]``, clauses joined with ``;``
— the same ``<kind>[:<key>][:opt=val]`` shape as fault plans, tokenized
by the shared :func:`repro.faults.plan.split_clause`.  A JSON array of
``{"kind", "key", "at_s", "for_s"}`` objects is also accepted.  The full
clause registry (what each kind does, key formats, duration rules) is
documented in ``docs/SCENARIOS.md``.

Times must be whole multiples of the congestion bucket
(:data:`repro.netsim.conditions.BUCKET_SECONDS`): the measurement
pipeline freezes congestion state per bucket, so a route change inside a
bucket would silently straddle cached views.  Misaligned clauses are
rejected at parse time (CLI exit 2), not at collection time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.faults.plan import clause_context, split_clause
from repro.netsim.conditions import BUCKET_SECONDS

#: Network-event clause kinds (see docs/SCENARIOS.md for the registry).
KIND_LINK_DOWN = "link-down"
KIND_NODE_DOWN = "node-down"
KIND_REGION_OUTAGE = "region-outage"
KIND_FLAP_STORM = "flap-storm"
KIND_DEPEER = "depeer"
KIND_NEW_TRANSIT = "new-transit"

SCENARIO_KINDS = (
    KIND_LINK_DOWN,
    KIND_NODE_DOWN,
    KIND_REGION_OUTAGE,
    KIND_FLAP_STORM,
    KIND_DEPEER,
    KIND_NEW_TRANSIT,
)

#: Kinds whose key names an AS adjacency as ``<asA>-<asB>``.
_PAIR_KINDS = (KIND_LINK_DOWN, KIND_DEPEER, KIND_NEW_TRANSIT)

#: Kinds that must carry a ``for=`` duration (transient by definition).
_DURATION_REQUIRED = (KIND_REGION_OUTAGE, KIND_FLAP_STORM)

#: Kinds that must NOT carry ``for=`` (their effect is permanent).
_DURATION_FORBIDDEN = (KIND_NODE_DOWN, KIND_DEPEER, KIND_NEW_TRANSIT)


class ScenarioPlanError(ValueError):
    """Raised for malformed scenario specs (CLI maps this to exit 2)."""


def _check_aligned(name: str, value: float) -> None:
    if value % BUCKET_SECONDS != 0.0:
        raise ScenarioPlanError(
            f"{name}={value:g} is not a multiple of the congestion bucket "
            f"({BUCKET_SECONDS:g} s); events must land on bucket boundaries"
        )


@dataclass(frozen=True, slots=True)
class ScenarioEvent:
    """One network event: a kind, a key, and its place on the timeline.

    Attributes:
        kind: One of :data:`SCENARIO_KINDS`.
        key: What the event applies to — an ``<asA>-<asB>`` adjacency for
            ``link-down``/``depeer``/``new-transit``, a single ASN for
            ``node-down``, a geographic region name for
            ``region-outage``, or an fnmatch glob over ``src->dst`` pair
            names for ``flap-storm``.
        at_s: Event start, seconds of simulation time; must be a whole
            multiple of :data:`~repro.netsim.conditions.BUCKET_SECONDS`.
        for_s: Duration for transient events, same alignment rule; None
            for permanent events.  Required for ``region-outage`` and
            ``flap-storm``, forbidden for ``node-down``, ``depeer`` and
            ``new-transit``, optional for ``link-down`` (a ``link-down``
            without a duration never comes back up).
    """

    kind: str
    key: str
    at_s: float
    for_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ScenarioPlanError(
                f"unknown scenario kind {self.kind!r}; "
                f"choose from {sorted(SCENARIO_KINDS)}"
            )
        if not self.key:
            raise ScenarioPlanError(f"{self.kind}: empty key")
        if self.at_s < 0:
            raise ScenarioPlanError(
                f"{self.kind}:{self.key}: at must be >= 0, got {self.at_s:g}"
            )
        _check_aligned("at", self.at_s)
        if self.kind in _DURATION_REQUIRED and self.for_s is None:
            raise ScenarioPlanError(
                f"{self.kind}:{self.key}: a 'for=' duration is required"
            )
        if self.kind in _DURATION_FORBIDDEN and self.for_s is not None:
            raise ScenarioPlanError(
                f"{self.kind}:{self.key}: permanent event takes no 'for='"
            )
        if self.for_s is not None:
            if self.for_s <= 0:
                raise ScenarioPlanError(
                    f"{self.kind}:{self.key}: for must be > 0, "
                    f"got {self.for_s:g}"
                )
            _check_aligned("for", self.for_s)
        if self.kind in _PAIR_KINDS:
            self.endpoints  # validates the <asA>-<asB> format
        if self.kind == KIND_NODE_DOWN:
            self.asn  # validates the single-ASN format

    @property
    def endpoints(self) -> tuple[int, int]:
        """The ``(asA, asB)`` adjacency named by a pair-kind key.

        Raises:
            ScenarioPlanError: for non-pair kinds or malformed keys.
        """
        if self.kind not in _PAIR_KINDS:
            raise ScenarioPlanError(f"{self.kind} has no AS-pair key")
        a, sep, b = self.key.partition("-")
        try:
            if not sep:
                raise ValueError
            asn_a, asn_b = int(a), int(b)
        except ValueError:
            raise ScenarioPlanError(
                f"{self.kind}: key must be '<asA>-<asB>' "
                f"(two ASNs), got {self.key!r}"
            ) from None
        if asn_a == asn_b:
            raise ScenarioPlanError(
                f"{self.kind}:{self.key}: an AS cannot link to itself"
            )
        return asn_a, asn_b

    @property
    def asn(self) -> int:
        """The ASN named by a ``node-down`` key.

        Raises:
            ScenarioPlanError: for other kinds or malformed keys.
        """
        if self.kind != KIND_NODE_DOWN:
            raise ScenarioPlanError(f"{self.kind} has no single-ASN key")
        try:
            return int(self.key)
        except ValueError:
            raise ScenarioPlanError(
                f"{self.kind}: key must be an ASN, got {self.key!r}"
            ) from None

    @property
    def end_s(self) -> float | None:
        """When a transient event reverts, or None for permanent ones."""
        return None if self.for_s is None else self.at_s + self.for_s

    def to_clause(self) -> str:
        """The canonical spec-string clause for this event."""
        parts = [self.kind, self.key, f"at={self.at_s:g}"]
        if self.for_s is not None:
            parts.append(f"for={self.for_s:g}")
        return ":".join(parts)


def _parse_clause(clause: str, position: int = 0) -> ScenarioEvent:
    ctx = clause_context(clause, position)
    kind, key, options = split_clause(
        clause, position, known_options=("at", "for"),
        error_cls=ScenarioPlanError,
    )
    if "at" not in options:
        raise ScenarioPlanError(f"{ctx}: every scenario clause needs at=T")
    try:
        at_s = float(options["at"])
    except ValueError:
        raise ScenarioPlanError(
            f"{ctx}: at must be a number, got {options['at']!r}"
        ) from None
    for_s: float | None = None
    if "for" in options:
        try:
            for_s = float(options["for"])
        except ValueError:
            raise ScenarioPlanError(
                f"{ctx}: for must be a number, got {options['for']!r}"
            ) from None
    try:
        return ScenarioEvent(
            kind=kind, key=key if key is not None else "",
            at_s=at_s, for_s=for_s,
        )
    except ScenarioPlanError as exc:
        # Event validation knows kind/key but not where the clause sat in
        # the plan string; re-raise with the full clause context.
        raise ScenarioPlanError(f"{ctx}: {exc}") from None


def _parse_json(text: str) -> tuple[ScenarioEvent, ...]:
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioPlanError(f"bad JSON scenario plan: {exc}") from exc
    if not isinstance(raw, list):
        raise ScenarioPlanError("JSON scenario plan must be an array of objects")
    events = []
    for entry in raw:
        if not isinstance(entry, dict) or "kind" not in entry:
            raise ScenarioPlanError(
                f"JSON scenario clause must be an object with a 'kind': {entry!r}"
            )
        unknown = set(entry) - {"kind", "key", "at_s", "for_s"}
        if unknown:
            raise ScenarioPlanError(
                f"JSON scenario clause has unknown fields {sorted(unknown)}"
            )
        try:
            events.append(ScenarioEvent(**entry))
        except TypeError as exc:
            raise ScenarioPlanError(
                f"bad JSON scenario clause {entry!r}: {exc}"
            ) from exc
    return tuple(events)


@dataclass(frozen=True, slots=True)
class ScenarioPlan:
    """An ordered collection of :class:`ScenarioEvent` clauses.

    Order matters only for error reporting and serialization; the
    timeline applies events strictly by ``(at_s, plan position)``.  An
    empty plan (from ``ScenarioPlan.parse("")``) is a valid no-op
    scenario.
    """

    events: tuple[ScenarioEvent, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "ScenarioPlan":
        """Parse a spec string (compact clause or JSON-array format).

        Raises:
            ScenarioPlanError: on any malformed clause, naming the
                offending clause text and its position.
        """
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("["):
            return cls(events=_parse_json(text))
        return cls(
            events=tuple(
                _parse_clause(clause, position)
                for position, clause in enumerate(text.split(";"))
                if clause.strip()
            )
        )

    def to_spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return ";".join(event.to_clause() for event in self.events)

    @property
    def last_transition_s(self) -> float:
        """Latest event start or revert time; 0.0 for an empty plan."""
        times = [e.at_s for e in self.events]
        times += [e.end_s for e in self.events if e.end_s is not None]
        return max(times, default=0.0)

    def storms(self) -> tuple[ScenarioEvent, ...]:
        """The flap-storm events, in plan order."""
        return tuple(e for e in self.events if e.kind == KIND_FLAP_STORM)

    def topology_events(self) -> tuple[ScenarioEvent, ...]:
        """Events that mutate the AS graph (everything but flap storms)."""
        return tuple(e for e in self.events if e.kind != KIND_FLAP_STORM)

    def __bool__(self) -> bool:
        return bool(self.events)

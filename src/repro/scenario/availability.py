"""Disjoint-path availability: who survives the worst single link failure.

The paper's alternate-path result (§4) is about *performance*: composed
host-to-host detours often beat the default route.  This module asks the
robustness version of the same question: when the most heavily shared AS
adjacency fails, which host pairs keep connectivity — and how fast?

Two recovery channels are compared per pair:

* **BGP reroute** — the network heals itself.  Reconvergence is not
  instant: BGP's MRAI timer paces advertisements, so time-to-repair is
  estimated as ``convergence_rounds(dest) * MRAI_S`` using the fixpoint
  oracle's round count (:meth:`repro.routing.bgp.BGPTable.convergence_rounds`).
* **Disjoint detour** — the overlay routes around the failure through
  another measurement host (:mod:`repro.core.altpath`).  A detour whose
  constituent hops avoid the failed adjacency fails over instantly (the
  endpoints notice and switch), but only an *AS-disjoint* alternate is
  guaranteed not to share the broken infrastructure.

The analyzer produces the paper-style availability table: "X% of pairs
retain connectivity via an AS-disjoint alternate during the worst
single-link failure".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.altpath import AlternatePathFinder
from repro.core.graph import Metric, build_graph
from repro.datasets.dataset import Dataset
from repro.obs import runtime as obs
from repro.routing.bgp import BGPTable
from repro.scenario.plan import ScenarioPlan
from repro.scenario.timeline import ScenarioTimeline
from repro.topology.network import Topology

#: BGP Minimum Route Advertisement Interval, seconds (RFC 4271 default).
#: One reconvergence "round" of the fixpoint oracle corresponds to every
#: AS re-advertising once, so rounds * MRAI_S estimates time-to-repair.
MRAI_S = 30.0


def _adjacencies(as_path: tuple[int, ...]) -> set[frozenset[int]]:
    """The inter-AS edges a path crosses, as unordered pairs."""
    return {
        frozenset(pair) for pair in zip(as_path, as_path[1:])
        if pair[0] != pair[1]
    }


@dataclass(frozen=True, slots=True)
class PairAvailability:
    """Availability verdict for one ordered host pair.

    Attributes:
        src: Source host name.
        dst: Destination host name.
        alternate_via: Intermediate hosts of the best alternate path, or
            None when the measurement graph offers no alternate.
        as_disjoint: Whether the alternate's intermediate ASes are
            disjoint from the default path's intermediate ASes.
        uses_worst_link: Whether the default path crosses the worst link.
        survives_bgp: Whether BGP still finds *some* route between the
            endpoint ASes with the worst link removed.
        survives_detour: Whether the best alternate's constituent hops
            all avoid the worst link.
        repair_s: Estimated BGP time-to-repair (rounds * MRAI) for pairs
            whose default path used the worst link and still have a
            route; 0.0 for unaffected pairs; None when BGP cannot
            reconnect the pair at all.
    """

    src: str
    dst: str
    alternate_via: tuple[str, ...] | None
    as_disjoint: bool
    uses_worst_link: bool
    survives_bgp: bool
    survives_detour: bool
    repair_s: float | None


@dataclass(frozen=True, slots=True)
class AvailabilityReport:
    """The availability table for one dataset + topology.

    Percentages are over :attr:`n_pairs` (the reachable, measured pairs).
    """

    worst_link: tuple[int, int]
    worst_link_share: int
    n_pairs: int
    n_with_alternate: int
    n_as_disjoint: int
    n_survive_bgp: int
    n_survive_detour: int
    n_survive_disjoint_detour: int
    mean_repair_s: float
    pairs: tuple[PairAvailability, ...]

    def _pct(self, n: int) -> float:
        return 100.0 * n / self.n_pairs if self.n_pairs else 0.0

    @property
    def headline(self) -> str:
        """The paper-style one-line availability claim."""
        return (
            f"{self._pct(self.n_survive_disjoint_detour):.1f}% of pairs "
            "retain connectivity via an AS-disjoint alternate during the "
            "worst single-link failure"
        )

    def render(self) -> str:
        """Plain-text availability table (report section body)."""
        a, b = self.worst_link
        reconnects = sum(
            1 for p in self.pairs if p.uses_worst_link and p.survives_bgp
        )
        repair = (
            f"   time-to-repair ~{self.mean_repair_s:.0f} s (MRAI {MRAI_S:g} s)"
            if reconnects
            else "   (no affected pair reconnects)"
        )
        lines = [
            "Disjoint-path availability under the worst single-link failure",
            f"  worst link: AS{a}-AS{b} "
            f"(on the default path of {self.worst_link_share} of "
            f"{self.n_pairs} pairs)",
            f"  {'pairs measured':44s}{self.n_pairs:6d}",
            f"  {'with any alternate path':44s}{self.n_with_alternate:6d}"
            f"  ({self._pct(self.n_with_alternate):5.1f}%)",
            f"  {'with an AS-disjoint alternate':44s}{self.n_as_disjoint:6d}"
            f"  ({self._pct(self.n_as_disjoint):5.1f}%)",
            f"  {'retain connectivity via BGP reroute':44s}"
            f"{self.n_survive_bgp:6d}  ({self._pct(self.n_survive_bgp):5.1f}%)"
            f"{repair}",
            f"  {'retain connectivity via instant detour':44s}"
            f"{self.n_survive_detour:6d}  ({self._pct(self.n_survive_detour):5.1f}%)"
            "   failover 0 s",
            f"  {'... via an AS-disjoint detour':44s}"
            f"{self.n_survive_disjoint_detour:6d}"
            f"  ({self._pct(self.n_survive_disjoint_detour):5.1f}%)",
            "",
            f"  => {self.headline}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly summary (per-pair detail omitted)."""
        return {
            "worst_link": list(self.worst_link),
            "worst_link_share": self.worst_link_share,
            "n_pairs": self.n_pairs,
            "n_with_alternate": self.n_with_alternate,
            "n_as_disjoint": self.n_as_disjoint,
            "n_survive_bgp": self.n_survive_bgp,
            "n_survive_detour": self.n_survive_detour,
            "n_survive_disjoint_detour": self.n_survive_disjoint_detour,
            "mean_repair_s": self.mean_repair_s,
            "headline": self.headline,
        }


def analyze_availability(
    dataset: Dataset,
    topo: Topology,
    *,
    min_samples: int = 1,
) -> AvailabilityReport:
    """Availability analysis of a traceroute dataset over its topology.

    The topology must be the *pristine* one the dataset's path_info was
    resolved against (a :class:`~repro.scenario.run.ScenarioRun` resets
    its timeline before calling this).  The worst single link is the AS
    adjacency crossed by the most default paths; its failure is applied
    through a one-event :class:`~repro.scenario.timeline.ScenarioTimeline`
    and reverted afterwards, leaving the topology unchanged.

    Raises:
        repro.core.graph.GraphError: if the dataset has no usable
            traceroute samples.
    """
    with obs.span("scenario.availability") as sp:
        report = _analyze(dataset, topo, min_samples)
        sp.set("n_pairs", report.n_pairs)
        sp.set("worst_link", f"{report.worst_link[0]}-{report.worst_link[1]}")
    return report


def _analyze(dataset: Dataset, topo: Topology, min_samples: int) -> AvailabilityReport:
    path_info = dataset.path_info
    graph = build_graph(dataset, Metric.RTT, min_samples=min_samples)
    alternates = AlternatePathFinder(graph).best_all()

    # The worst single link: the AS adjacency most default paths share.
    shared: Counter[frozenset[int]] = Counter()
    for info in path_info.values():
        for adj in _adjacencies(info.as_path):
            shared[adj] += 1
    if not shared:
        raise ValueError(
            "availability analysis needs at least one inter-AS default path"
        )
    # Deterministic argmax: highest count, then lowest (a, b).
    worst = min(shared, key=lambda adj: (-shared[adj], sorted(adj)))
    worst_pair = tuple(sorted(worst))

    # Fail it, reconverge, and test AS-level reachability + repair time.
    plan = ScenarioPlan.parse(f"link-down:{worst_pair[0]}-{worst_pair[1]}:at=0")
    timeline = ScenarioTimeline(topo, plan)
    timeline.advance_to(0.0)
    try:
        table = BGPTable(topo)
        endpoint_asns = {
            (src, dst): (topo.host(src).asn, topo.host(dst).asn)
            for (src, dst) in path_info
        }
        dests = sorted({asns[1] for asns in endpoint_asns.values()})
        table.converge_all(dests)
        reachable: dict[tuple[str, str], bool] = {}
        rounds: dict[int, int] = {}
        for pair, (src_asn, dst_asn) in endpoint_asns.items():
            reachable[pair] = (
                src_asn == dst_asn or table.route(src_asn, dst_asn) is not None
            )
        for dst_asn in dests:
            rounds[dst_asn] = table.convergence_rounds(dst_asn)
    finally:
        timeline.reset()

    pairs: list[PairAvailability] = []
    repair_times: list[float] = []
    for pair in sorted(path_info):
        info = path_info[pair]
        src_asn, dst_asn = endpoint_asns[pair]
        endpoint_set = {src_asn, dst_asn}
        default_intermediate = set(info.as_path) - endpoint_set
        uses_worst = worst in _adjacencies(info.as_path)
        alt = alternates.get(pair)
        alternate_via: tuple[str, ...] | None = None
        as_disjoint = False
        survives_detour = False
        if alt is not None:
            alternate_via = alt.via
            alt_ases: set[int] = set()
            alt_adjacencies: set[frozenset[int]] = set()
            for hop in alt.hops:
                hop_info = path_info.get(hop)
                if hop_info is None:
                    continue  # hop measured but unresolved; be conservative
                alt_ases |= set(hop_info.as_path)
                alt_adjacencies |= _adjacencies(hop_info.as_path)
            as_disjoint = not (alt_ases - endpoint_set) & default_intermediate
            survives_detour = worst not in alt_adjacencies
        survives_bgp = reachable[pair]
        repair_s: float | None
        if not uses_worst:
            repair_s = 0.0
        elif survives_bgp:
            repair_s = rounds[dst_asn] * MRAI_S
            repair_times.append(repair_s)
        else:
            repair_s = None
        pairs.append(
            PairAvailability(
                src=pair[0],
                dst=pair[1],
                alternate_via=alternate_via,
                as_disjoint=as_disjoint,
                uses_worst_link=uses_worst,
                survives_bgp=survives_bgp,
                survives_detour=survives_detour,
                repair_s=repair_s,
            )
        )

    return AvailabilityReport(
        worst_link=worst_pair,
        worst_link_share=sum(1 for p in pairs if p.uses_worst_link),
        n_pairs=len(pairs),
        n_with_alternate=sum(1 for p in pairs if p.alternate_via is not None),
        n_as_disjoint=sum(1 for p in pairs if p.as_disjoint),
        n_survive_bgp=sum(1 for p in pairs if p.survives_bgp),
        n_survive_detour=sum(1 for p in pairs if p.survives_detour),
        n_survive_disjoint_detour=sum(
            1 for p in pairs if p.survives_detour and p.as_disjoint
        ),
        mean_repair_s=(
            sum(repair_times) / len(repair_times) if repair_times else 0.0
        ),
        pairs=tuple(pairs),
    )

"""repro.scenario: deterministic network failure & what-if engine.

The scenario layer answers "what happens to the measured Internet when
the network itself changes": a :class:`~repro.scenario.plan.ScenarioPlan`
describes timed network events (link failures, AS outages, regional
exchange outages, flap storms, depeerings, new transit relationships), a
:class:`~repro.scenario.timeline.ScenarioTimeline` applies and reverts
them against a :class:`~repro.topology.network.Topology` at congestion
bucket boundaries, and a :class:`~repro.scenario.run.ScenarioRun` threads
the timeline through the measurement pipeline to produce a dataset plus a
disjoint-path availability report
(:mod:`repro.scenario.availability`).

Everything is a pure function of ``(plan, seed)``: replaying the same
scenario yields byte-identical datasets regardless of ``--routing-jobs``
(asserted in CI's ``whatif-replay`` step).  The clause grammar is shared
with :mod:`repro.faults.plan`; the clause registry lives in
``docs/SCENARIOS.md``.
"""

from repro.scenario.availability import (
    MRAI_S,
    AvailabilityReport,
    analyze_availability,
)
from repro.scenario.plan import (
    SCENARIO_KINDS,
    ScenarioEvent,
    ScenarioPlan,
    ScenarioPlanError,
)
from repro.scenario.run import ScenarioReport, ScenarioRun, StormFlapModel
from repro.scenario.timeline import ScenarioError, ScenarioTimeline

__all__ = [
    "MRAI_S",
    "AvailabilityReport",
    "SCENARIO_KINDS",
    "ScenarioError",
    "ScenarioEvent",
    "ScenarioPlan",
    "ScenarioPlanError",
    "ScenarioReport",
    "ScenarioRun",
    "ScenarioTimeline",
    "StormFlapModel",
    "analyze_availability",
]
